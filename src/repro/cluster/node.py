"""Cluster-side state of one service node: ownership + migration.

:class:`ClusterState` turns a plain :class:`~repro.service.server.
FilterService` into a cluster member.  Attached via :meth:`attach`, it

* enforces the **ownership contract**: every ADD / ADD_IDEM / QUERY /
  QUERY_MULTI batch is routed (one vectorised pass) and refused with
  :class:`~repro.errors.WrongOwnerError` if any element lands on a
  shard this node does not own under its installed
  :class:`~repro.cluster.shardmap.ShardMap` — a stale client is
  *refused, never misrouted*;
* answers the SHARD_MAP op: get returns the installed map, install
  accepts strictly newer epochs (idempotent ack for the identical
  current map, :class:`~repro.errors.StaleShardMapError` below it);
* drives the node's half of the MIGRATE protocol (see
  :mod:`repro.cluster.coordinator` for the whole dance): the source
  side journals writes from the moment of the ``BEGIN`` snapshot —
  reusing the service's replication write hook — and drains them as
  exact per-write batches; the target side installs the shipped blob
  with ``replace_shard`` and replays catch-up batches through the
  shard's own ``add_batch``, so item counts stay exact (no union
  double-count, no lost write).

The node hosts a **full-width** :class:`~repro.store.sharded.
ShardedFilterStore` (every global shard id present, unowned shards
empty).  That keeps every existing fleet primitive — ``replace_shard``,
``snapshot``, per-shard blobs — working with global shard ids, at the
cost of a few empty filters per node; the ownership check guarantees
the empty shards are never read or written.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import persistence
from repro.cluster.shardmap import ShardMap
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.errors import (
    ConfigurationError,
    StaleShardMapError,
    UnsupportedOperationError,
    WrongOwnerError,
)
from repro.service import protocol
from repro.store.sharded import ShardedFilterStore

__all__ = ["ClusterState"]

#: One journalled write: the flushed batch's elements and its counts
#: vector (or ``None``), filtered to a single migrating shard.
_JournalEntry = Tuple[List[bytes], Optional[List[int]]]


class ClusterState:
    """Shard-map awareness and migration state for one service node.

    Args:
        shard_map: the node's starting map (bootstrap file or a
            coordinator's publish).
        self_endpoint: this node's advertised ``"host:port"`` — the
            string the map names it by.  Owning zero shards is legal
            (a fresh node about to receive its first migration).
    """

    def __init__(self, shard_map: ShardMap, self_endpoint: str):
        self.map = shard_map
        self.self_endpoint = str(self_endpoint)
        self._owned_mask = self._mask_for(shard_map)
        self._journals: Dict[int, List[_JournalEntry]] = {}
        self._service = None
        self.counters = {
            "wrong_owner_rejections": 0,
            "maps_installed": 0,
            "migrations_begun": 0,
            "migrations_shipped": 0,
            "shards_installed": 0,
            "elements_caught_up": 0,
        }
        # Re-resolved against the hosting service's registry in
        # :meth:`attach`; null instruments until then.
        _null = MetricsRegistry(enabled=False)
        self._m_wrong_owner = _null.counter(metric_names.NODE_WRONG_OWNER)
        self._m_maps_installed = _null.counter(
            metric_names.NODE_MAPS_INSTALLED)

    def _mask_for(self, shard_map: ShardMap) -> np.ndarray:
        mask = np.zeros(shard_map.n_shards, dtype=bool)
        for shard_id in shard_map.shards_of(self.self_endpoint):
            mask[shard_id] = True
        return mask

    @property
    def owned_shards(self) -> Tuple[int, ...]:
        """The shard ids this node currently owns."""
        return tuple(int(i) for i in np.flatnonzero(self._owned_mask))

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, service) -> "ClusterState":
        """Bind to *service*: enforcement on, write journal hook chained.

        The hosted store must be a full-width sharded store routing
        exactly as the map prescribes — a geometry mismatch here would
        mean this node buckets elements differently from the rest of
        the fleet, the one unrecoverable cluster misconfiguration.
        """
        store = service.target
        if not isinstance(store, ShardedFilterStore):
            raise ConfigurationError(
                "a cluster node hosts a ShardedFilterStore, got %s"
                % type(store).__name__)
        if not store.router.is_compatible(self.map.make_router()):
            raise ConfigurationError(
                "store router %s disagrees with the shard map's routing "
                "spec (n_shards=%d seed=%d family=%s)"
                % (store.router.name, self.map.n_shards,
                   self.map.router_seed, self.map.router_family))
        self._service = service
        service.cluster = self
        self._m_wrong_owner = service.metrics.counter(
            metric_names.NODE_WRONG_OWNER)
        self._m_maps_installed = service.metrics.counter(
            metric_names.NODE_MAPS_INSTALLED)
        prior = service.on_write

        def hook(elements: Sequence[bytes],
                 counts: Optional[Sequence[int]]) -> None:
            if prior is not None:
                prior(elements, counts)
            self._journal_write(elements, counts)

        service.on_write = hook
        return self

    # ------------------------------------------------------------------
    # Ownership enforcement (the data-path hook)
    # ------------------------------------------------------------------
    def check_elements(self, elements: Sequence[bytes]) -> None:
        """Refuse the batch unless every element routes to an owned shard.

        One vectorised routing pass per request — the same family the
        store routes with, so the verdict is exact.  Raising here is
        the WRONG_OWNER signal: the error crosses the wire typed and
        tells the client to refresh its map and re-split.
        """
        if not elements:
            return
        routed = self._service.target.router.route_batch(elements)
        bad = ~self._owned_mask[routed]
        if bad.any():
            self.counters["wrong_owner_rejections"] += 1
            self._m_wrong_owner.inc()
            offending = sorted(set(int(s) for s in routed[bad]))
            raise WrongOwnerError(
                "node %s does not own shard(s) %s at map epoch %d; "
                "refresh the shard map and re-route"
                % (self.self_endpoint, offending, self.map.epoch))

    # ------------------------------------------------------------------
    # SHARD_MAP
    # ------------------------------------------------------------------
    def handle_shard_map(self, payload: bytes) -> bytes:
        """Serve one SHARD_MAP request (get or install)."""
        if not payload:
            return self.map.to_bytes()
        incoming = ShardMap.from_bytes(payload)
        if not self.map.same_cluster(incoming):
            raise ConfigurationError(
                "shard map install belongs to a different cluster "
                "(n_shards/router spec mismatch)")
        if incoming.epoch < self.map.epoch:
            raise StaleShardMapError(
                "refusing shard map epoch %d: node %s already at epoch %d"
                % (incoming.epoch, self.self_endpoint, self.map.epoch))
        if incoming.epoch == self.map.epoch:
            if incoming == self.map:
                return self.map.to_bytes()  # idempotent re-publish
            raise StaleShardMapError(
                "conflicting shard map at epoch %d: ownership differs "
                "from the installed map (split-brain publish?)"
                % incoming.epoch)
        self.map = incoming
        self._owned_mask = self._mask_for(incoming)
        self.counters["maps_installed"] += 1
        self._m_maps_installed.inc()
        return incoming.to_bytes()

    # ------------------------------------------------------------------
    # MIGRATE
    # ------------------------------------------------------------------
    def handle_migrate(self, payload: bytes) -> bytes:
        """Serve one MIGRATE request (either side of a shard move)."""
        action, shard_id, body = protocol.decode_migrate(payload)
        service = self._service
        store = service.target
        if not 0 <= shard_id < store.n_shards:
            raise ConfigurationError(
                "shard_id %d out of range for %d shards"
                % (shard_id, store.n_shards))

        if action == protocol.MIGRATE_BEGIN:
            if not self._owned_mask[shard_id]:
                raise WrongOwnerError(
                    "node %s cannot source a migration of shard %d it "
                    "does not own (map epoch %d)"
                    % (self.self_endpoint, shard_id, self.map.epoch))
            if shard_id in self._journals:
                raise ConfigurationError(
                    "shard %d is already migrating off this node"
                    % shard_id)
            # Journal-on and snapshot happen in one synchronous stretch
            # on the event loop: no write can land between them, so the
            # blob plus the journal is exactly the shard's write
            # history — the exactness anchor of the whole protocol.
            blob = persistence.dumps(store.shards[shard_id])
            self._journals[shard_id] = []
            self.counters["migrations_begun"] += 1
            return blob

        if action == protocol.MIGRATE_DELTA:
            journal = self._require_journal(shard_id)
            service.flush_pending()
            drained, self._journals[shard_id] = journal, []
            return protocol.encode_element_batches(drained)

        if action == protocol.MIGRATE_KEYS:
            return protocol.encode_idempotency_keys(
                service.idempotency.entries())

        if action == protocol.MIGRATE_END:
            self._require_journal(shard_id)
            # Flush both directions before retiring the local copy:
            # queued writes drain into the journal we are about to hand
            # over, and queued reads (admitted pre-flip) answer from
            # the still-complete copy.
            service.flush_pending()
            drained = self._journals.pop(shard_id)
            shard = store.shards[shard_id]
            empty_like = getattr(shard, "empty_like", None)
            if empty_like is None:
                raise UnsupportedOperationError(
                    "shard %d (%s) cannot be retired: no empty_like"
                    % (shard_id, type(shard).__name__))
            store.replace_shard(shard_id, empty_like())
            self.counters["migrations_shipped"] += 1
            return protocol.encode_element_batches(drained)

        if action == protocol.MIGRATE_INSTALL_REPLACE:
            incoming = persistence.loads(body)
            store.replace_shard(shard_id, incoming)
            self.counters["shards_installed"] += 1
            return protocol._U32.pack(
                int(getattr(incoming, "n_items", 0)))

        if action == protocol.MIGRATE_INSTALL_MERGE:
            shard = store.shards[shard_id]
            installed = 0
            for elements, counts in protocol.decode_element_batches(body):
                if not elements:
                    continue
                routed = store.router.route_batch(elements)
                if (routed != shard_id).any():
                    raise ConfigurationError(
                        "catch-up batch for shard %d contains elements "
                        "routing elsewhere; refusing a corrupting "
                        "install" % shard_id)
                if counts is None:
                    shard.add_batch(elements)
                else:
                    shard.add_batch(elements, counts)
                installed += len(elements)
            self.counters["elements_caught_up"] += installed
            return protocol._U32.pack(
                int(getattr(shard, "n_items", 0)))

        if action == protocol.MIGRATE_INSTALL_KEYS:
            service.idempotency.install(
                protocol.decode_idempotency_keys(body))
            return protocol._U32.pack(len(service.idempotency))

        raise ConfigurationError(
            "unhandled MIGRATE action %d" % action)  # pragma: no cover

    def _require_journal(self, shard_id: int) -> List[_JournalEntry]:
        journal = self._journals.get(shard_id)
        if journal is None:
            raise ConfigurationError(
                "shard %d has no active migration journal on this node "
                "(MIGRATE_BEGIN first)" % shard_id)
        return journal

    # ------------------------------------------------------------------
    # Write journal (chained behind FilterService.on_write)
    # ------------------------------------------------------------------
    def _journal_write(self, elements: Sequence[bytes],
                       counts: Optional[Sequence[int]]) -> None:
        """Record the slice of a flushed write touching migrating shards."""
        if not self._journals or not elements:
            return
        routed = self._service.target.router.route_batch(elements)
        for shard_id, journal in self._journals.items():
            hits = np.flatnonzero(routed == shard_id)
            if not hits.size:
                continue
            chunk = [elements[i] for i in hits]
            chunk_counts = (None if counts is None
                            else [counts[i] for i in hits])
            journal.append((chunk, chunk_counts))

    # ------------------------------------------------------------------
    # Observability (merged into STATS)
    # ------------------------------------------------------------------
    def stats_dict(self) -> dict:
        """The ``cluster`` object served under STATS."""
        return {
            "self": self.self_endpoint,
            "epoch": self.map.epoch,
            "n_shards": self.map.n_shards,
            "owned_shards": list(self.owned_shards),
            "migrating_shards": sorted(self._journals),
            "journalled_batches": sum(
                len(j) for j in self._journals.values()),
            "counters": dict(self.counters),
        }
