"""The migration drill: a live reshard proven exact under load.

The headline harness of the cluster layer.  A seeded drill boots a
cluster (in-process nodes on ephemeral ports, or external processes via
``endpoints``), drives a continuous read+write stream through a
:class:`~repro.cluster.client.ClusterClient`, migrates a hot shard
*while the stream runs*, and replays every applied write into a
fault-free single-node reference store built from the same routing spec
and filter geometry.  Because cluster and reference hash identically,
every verdict — false positives included — must match **bit for bit**;
any divergence is a real protocol bug, not noise.

Three invariants must hold for ``report["ok"]``:

* ``zero_wrong_verdicts`` — every read during the drill and a full
  post-drill sweep over the whole universe agree with the reference;
* ``zero_lost_or_duplicate_writes`` — after the move, the summed
  ``n_items`` across the fleet equals the reference count exactly (a
  lost delta batch shows up low, a double-applied one high);
* ``bounded_stall`` — no operation overlapping the migration window
  took longer than the stall budget: the ownership flip may slow
  clients (WRONG_OWNER → refresh → retry), never park them.

Run it from the CLI as ``python -m repro.cluster drill`` (in-process)
or ``--external`` against live nodes; CI's ``cluster-smoke`` job runs
the cross-process variant.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import fetch_live_map, migrate_shard
from repro.cluster.node import ClusterState
from repro.cluster.shardmap import ShardMap, bootstrap_map
from repro.core import ShiftingBloomFilter
from repro.errors import ConfigurationError
from repro.hashing.family import make_family
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.replication.failover import parse_endpoint
from repro.service.client import ServiceClient
from repro.service.server import CoalescerConfig, FilterService
from repro.store.router import DEFAULT_ROUTER_SEED
from repro.store.sharded import ShardedFilterStore
from repro.workloads.service import build_service_workload, chop_requests

__all__ = [
    "ClusterDrillConfig",
    "LocalCluster",
    "run_cluster_drill",
    "run_cluster_drill_async",
    "start_local_cluster",
]


@dataclass(frozen=True)
class ClusterDrillConfig:
    """Everything a drill run depends on, seeded and explicit.

    Attributes:
        n_nodes / n_shards: cluster geometry (ignored when external
            ``endpoints`` are given — the live map decides).
        m / k: per-shard ShBF_M geometry; the reference store reuses it.
        family: probe-hash family kind for the shard filters *and* the
            router (the map pins the router side).
        n_members: catalog size; half is preloaded, half written live.
        n_ops: request batches driven during the drill.
        per_request: elements per batch.
        write_fraction: probability an op is a write while unwritten
            catalog remains.
        migrate_after_ops: ops completed before the migration launches.
        stall_budget_s: bound on any op latency overlapping the window.
        seed: seeds the workload, the op schedule and retry jitter.
        endpoints: when set, drill these live nodes (cross-process
            mode) instead of booting an in-process cluster.
    """

    n_nodes: int = 3
    n_shards: int = 8
    m: int = 1 << 15
    k: int = 4
    family: str = "vector64"
    router_seed: int = DEFAULT_ROUTER_SEED
    n_members: int = 3000
    n_ops: int = 80
    per_request: int = 64
    write_fraction: float = 0.35
    migrate_after_ops: int = 20
    stall_budget_s: float = 5.0
    seed: int = 0
    endpoints: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.endpoints is None and self.n_nodes < 2:
            raise ConfigurationError(
                "a migration drill needs >= 2 nodes, got %d"
                % self.n_nodes)
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError(
                "write_fraction must be in [0, 1], got %r"
                % (self.write_fraction,))
        if self.stall_budget_s <= 0:
            raise ConfigurationError(
                "stall_budget_s must be > 0, got %r"
                % (self.stall_budget_s,))


@dataclass
class LocalCluster:
    """An in-process cluster: N services, their servers, and the map."""

    shard_map: ShardMap
    services: List[FilterService]
    servers: List[asyncio.AbstractServer]
    states: List[ClusterState] = field(default_factory=list)

    @property
    def endpoints(self) -> Tuple[str, ...]:
        return self.shard_map.nodes()

    async def close(self) -> None:
        for server in self.servers:
            server.close()
            await server.wait_closed()
        for service in self.services:
            service.abort_connections()


def _make_store(config: ClusterDrillConfig,
                shard_map: ShardMap) -> ShardedFilterStore:
    """A full-width store matching the drill geometry and map routing."""
    probe_family = make_family(config.family, seed=0)
    return ShardedFilterStore(
        lambda shard: ShiftingBloomFilter(
            m=config.m, k=config.k, family=probe_family),
        n_shards=shard_map.n_shards,
        router=shard_map.make_router(),
    )


async def start_local_cluster(
    config: ClusterDrillConfig,
    coalescer: Optional[CoalescerConfig] = None,
    trace_sink=None,
) -> LocalCluster:
    """Boot ``config.n_nodes`` services on ephemeral localhost ports.

    Every node hosts a full-width store (unowned shards empty) and gets
    a :class:`ClusterState` attached; the returned map is the epoch-1
    bootstrap over the actual bound ports.  With *trace_sink* (any
    :class:`~repro.obs.Tracer` sink) every node emits span records
    there, components named by endpoint.
    """
    # Ports are unknown until bind, so boot first, then map, then
    # attach cluster state (services refuse nothing until attached).
    services: List[FilterService] = []
    servers: List[asyncio.AbstractServer] = []
    endpoints: List[str] = []
    prototype = bootstrap_map(
        config.n_shards, ["127.0.0.1:1"],
        router_seed=config.router_seed, router_family=config.family)
    for _ in range(config.n_nodes):
        store = _make_store(config, prototype)
        service = FilterService(target=store, config=coalescer)
        server = await service.start("127.0.0.1", 0)
        services.append(service)
        servers.append(server)
        endpoint = "127.0.0.1:%d" % server.sockets[0].getsockname()[1]
        endpoints.append(endpoint)
        if trace_sink is not None:
            # The component name needs the bound port, so the tracer is
            # attached after start; the service reads it per request.
            service.tracer = Tracer(
                component="node:%s" % endpoint, sink=trace_sink)
    shard_map = bootstrap_map(
        config.n_shards, endpoints,
        router_seed=config.router_seed, router_family=config.family)
    states = [
        ClusterState(shard_map, endpoint).attach(service)
        for endpoint, service in zip(endpoints, services)
    ]
    return LocalCluster(shard_map=shard_map, services=services,
                        servers=servers, states=states)


async def _fetch_map(endpoints: Sequence[str]) -> ShardMap:
    """The live map from external nodes (newest epoch wins)."""
    last_error: Optional[Exception] = None
    for endpoint in endpoints:
        host, port = parse_endpoint(endpoint)
        try:
            conn = await ServiceClient.connect(host, port)
            try:
                fetched = ShardMap.from_bytes(await conn.shard_map())
            finally:
                await conn.close()
        except Exception as exc:
            last_error = exc
            continue
        # The first answer names the fleet; poll the rest for a newer
        # epoch so a drill after a reshard starts current.
        return await fetch_live_map(fetched)
    raise last_error if last_error is not None else ConfigurationError(
        "no external endpoints given")


def _pick_migration(shard_map: ShardMap,
                    members: Sequence[bytes]) -> Tuple[int, str]:
    """The hottest shard (by member load) and its destination node.

    Destination is the lightest-loaded *other* node — the move an
    operator resharding a hot spot would make.
    """
    router = shard_map.make_router()
    per_shard = np.bincount(router.route_batch(list(members)),
                            minlength=shard_map.n_shards)
    hot = int(per_shard.argmax())
    source = shard_map.owner(hot)
    candidates = [e for e in shard_map.nodes() if e != source]
    load = {e: sum(int(per_shard[s]) for s in shard_map.shards_of(e))
            for e in candidates}
    return hot, min(candidates, key=lambda e: load[e])


async def run_cluster_drill_async(
    config: ClusterDrillConfig,
    span_sink: Optional[List[dict]] = None,
) -> dict:
    """Run one seeded migration drill; returns the invariant report.

    With *span_sink* (a list), every span record of the drill — the
    client's, and in in-process mode every node's — is appended to it,
    so a caller can :func:`~repro.obs.reconstruct` any request's full
    client → node → coalescer path after the run.
    """
    spans: List[dict] = span_sink if span_sink is not None else []
    local: Optional[LocalCluster] = None
    if config.endpoints is None:
        local = await start_local_cluster(config, trace_sink=spans)
        shard_map = local.shard_map
        mode = "in-process"
    else:
        shard_map = await _fetch_map(config.endpoints)
        mode = "external"

    reference = _make_store(config, shard_map)
    workload = build_service_workload(config.n_members, seed=config.seed)
    members = list(workload.members)
    absent = list(workload.absent)
    rng = random.Random(config.seed)

    registry = MetricsRegistry()
    tracer = Tracer(component="client", sink=spans, seed=config.seed)
    client = ClusterClient(shard_map, seed=config.seed,
                           metrics=registry, tracer=tracer)
    migration_task: Optional[asyncio.Task] = None
    migration_window: List[float] = []  # [opened, closed]
    migration_report: Dict[str, object] = {}

    async def run_migration() -> None:
        shard_id, target = _pick_migration(client.shard_map, members)
        migration_window.append(time.monotonic())
        try:
            _, report = await migrate_shard(
                client.shard_map, shard_id, target, metrics=registry)
            migration_report.update(report)
        finally:
            migration_window.append(time.monotonic())

    wrong_verdicts = 0
    reads = writes = 0
    op_log: List[Tuple[float, float, str]] = []  # (start, end, kind)
    try:
        # Preload: half the catalog through the cluster AND the
        # reference — the drill's write stream is the other half.
        split = len(members) // 2
        for batch in chop_requests(members[:split], config.per_request):
            await client.add(batch)
            reference.add_batch(batch)
        write_queue = chop_requests(members[split:], config.per_request)
        written = members[:split]

        for op_index in range(config.n_ops):
            if (migration_task is None
                    and op_index >= config.migrate_after_ops):
                migration_task = asyncio.ensure_future(run_migration())
            do_write = bool(write_queue) and (
                rng.random() < config.write_fraction)
            start = time.monotonic()
            if do_write:
                batch = write_queue.pop(0)
                await client.add(batch)
                reference.add_batch(batch)
                written.extend(batch)
                writes += 1
                kind = "write"
            else:
                batch = [rng.choice(written) if rng.random() < 0.5
                         else rng.choice(absent)
                         for _ in range(config.per_request)]
                got = await client.query(batch)
                expected = reference.query_batch(batch)
                wrong_verdicts += int((got != expected).sum())
                reads += 1
                kind = "read"
            op_log.append((start, time.monotonic(), kind))
            # Yield so the migration task interleaves with the stream.
            await asyncio.sleep(0)

        if migration_task is None:  # n_ops < migrate_after_ops
            migration_task = asyncio.ensure_future(run_migration())
        await migration_task
        # Drain any catalog remainder post-move, then the full sweep.
        for batch in write_queue:
            await client.add(batch)
            reference.add_batch(batch)
            writes += 1
        sweep_wrong = 0
        universe = members + absent
        for batch in chop_requests(universe, 512):
            got = await client.query(batch)
            expected = reference.query_batch(batch)
            sweep_wrong += int((got != expected).sum())

        stats = await client.stats()
        cluster_items = sum(s["n_items"] for s in stats.values())
        epochs = {endpoint: s["cluster"]["epoch"]
                  for endpoint, s in stats.items()}
        final_map = client.shard_map
    finally:
        if migration_task is not None and not migration_task.done():
            migration_task.cancel()
        await client.close()
        if local is not None:
            await local.close()

    opened, closed = migration_window[0], migration_window[-1]
    overlapping = [end - start for start, end, _ in op_log
                   if end > opened and start < closed]
    max_stall = max(overlapping) if overlapping else 0.0
    max_latency = max((end - start for start, end, _ in op_log),
                      default=0.0)

    # The report's latency sections share the live METRICS histogram
    # format, so drill artifacts merge/compare with scrape tooling.
    op_latency = registry.histogram(
        metric_names.DRILL_OP_LATENCY, drill="cluster")
    for start, end, _ in op_log:
        op_latency.observe(end - start)
    stall_latency = registry.histogram(
        metric_names.DRILL_STALL, drill="cluster")
    for dur in overlapping:
        stall_latency.observe(dur)

    invariants = {
        "zero_wrong_verdicts": wrong_verdicts == 0 and sweep_wrong == 0,
        "zero_lost_or_duplicate_writes": (
            cluster_items == reference.n_items),
        "bounded_stall": max_stall <= config.stall_budget_s,
        "epoch_advanced": all(
            epoch >= shard_map.epoch + 1 for epoch in epochs.values()),
    }
    return {
        "ok": all(invariants.values()),
        "mode": mode,
        "invariants": invariants,
        "migration": migration_report,
        "ops": {
            "reads": reads,
            "writes": writes,
            "wrong_verdicts_live": wrong_verdicts,
            "wrong_verdicts_sweep": sweep_wrong,
            "max_op_latency_s": max_latency,
            "max_stall_op_latency_s": max_stall,
            "ops_overlapping_migration": len(overlapping),
        },
        "writes_accounting": {
            "cluster_n_items": cluster_items,
            "reference_n_items": int(reference.n_items),
        },
        "op_latency": op_latency.to_dict(),
        "stall_latency": stall_latency.to_dict(),
        "tracing": {
            "spans_recorded": len(spans),
            "traces": len({r.get("trace") for r in spans}),
        },
        "epochs": epochs,
        "final_epoch": final_map.epoch,
        "client_counters": dict(client.counters),
        "config": {
            "mode": mode,
            "n_nodes": (len(shard_map.nodes())),
            "n_shards": shard_map.n_shards,
            "m": config.m,
            "k": config.k,
            "family": config.family,
            "n_members": config.n_members,
            "n_ops": config.n_ops,
            "per_request": config.per_request,
            "write_fraction": config.write_fraction,
            "stall_budget_s": config.stall_budget_s,
            "seed": config.seed,
        },
    }


def run_cluster_drill(config: Optional[ClusterDrillConfig] = None) -> dict:
    """Synchronous wrapper: one fresh event loop per drill."""
    return asyncio.run(run_cluster_drill_async(
        config if config is not None else ClusterDrillConfig()))
