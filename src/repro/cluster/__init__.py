"""Multi-node cluster: versioned shard map, routing client, live reshard.

The scale-out layer over the sharded filter service.  A cluster is N
nodes (each a :class:`~repro.service.server.FilterService` hosting a
full-width :class:`~repro.store.sharded.ShardedFilterStore`) whose
shard ownership is pinned by an epoch-stamped
:class:`~repro.cluster.shardmap.ShardMap`.  The
:class:`~repro.cluster.client.ClusterClient` splits batches per owner
and fans out; :mod:`~repro.cluster.coordinator` moves shards live with
an exactness-preserving snapshot + journal-catch-up + epoch-flip
protocol; :mod:`~repro.cluster.drill` proves the whole dance wrong-
verdict-free against a single-store reference replay.  Operate it via
``python -m repro.cluster``.
"""

from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import (
    cluster_status,
    install_map,
    migrate_shard,
)
from repro.cluster.drill import (
    ClusterDrillConfig,
    run_cluster_drill,
    run_cluster_drill_async,
    start_local_cluster,
)
from repro.cluster.node import ClusterState
from repro.cluster.shardmap import ShardMap, bootstrap_map

__all__ = [
    "ClusterClient",
    "ClusterDrillConfig",
    "ClusterState",
    "ShardMap",
    "bootstrap_map",
    "cluster_status",
    "install_map",
    "migrate_shard",
    "run_cluster_drill",
    "run_cluster_drill_async",
    "start_local_cluster",
]
