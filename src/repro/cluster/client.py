"""The shard-map-aware cluster client.

:class:`ClusterClient` makes N nodes look like one filter service: a
batch is routed client-side with the map's own
:class:`~repro.store.router.ShardRouter` (one vectorised pass), split
into per-owner sub-batches via the router's grouping, fanned out
concurrently over pipelined per-node connections, and the answers are
scattered back into request order — coalescing, framing and pipelining
all reuse :class:`~repro.service.client.ServiceClient` per node.

Staleness is handled by contract, not by luck: a node refuses any batch
touching shards it does not own (:class:`~repro.errors.
WrongOwnerError`), so a client holding a predecessor map can never be
silently served wrong verdicts.  On that error the client refreshes its
map (highest epoch any reachable node publishes), **re-splits the
refused sub-batch** under the new ownership — after a migration the
sub-batch may now span several owners — and retries with seeded
backoff, bounding the client-visible stall of an ownership flip to the
flip window itself.

Writes go through ADD_IDEM with a per-client ``(client_id, write_id)``
key per sub-batch.  A WRONG_OWNER refusal happens *before* application,
so the re-dispatched sub-batch takes fresh keys; the keys exist to make
user-level retries after lost responses safe, and they survive
migration because the coordinator ships the source's dedup window to
the target before the flip.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import ElementLike, to_bytes
from repro.cluster.shardmap import ShardMap
from repro.core.association_types import AssociationAnswer
from repro.errors import WrongOwnerError
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.replication.failover import parse_endpoint
from repro.retry import BackoffPolicy
from repro.service.client import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_OP_TIMEOUT,
    ServiceClient,
)

__all__ = ["ClusterClient"]

#: Distinct default client ids per process, so two default-constructed
#: clients never collide on ADD_IDEM keys.
_next_client_id = itertools.count(1)


class ClusterClient:
    """One logical connection to a whole shard-mapped cluster.

    Args:
        shard_map: the starting map (bootstrap file content or a
            node's SHARD_MAP answer); refreshed automatically on
            WRONG_OWNER.
        client_id: ADD_IDEM client identity; defaults to a
            process-unique counter value.
        connect_timeout / op_timeout: per-node connection bounds,
            passed through to every :class:`ServiceClient`.
        max_map_refreshes: retry budget per sub-batch across ownership
            flips (each retry refreshes the map first).
        backoff: delay policy between those retries.
        seed: seeds the backoff jitter for replayable retry timing.
        metrics: a :class:`~repro.obs.MetricsRegistry` to count requests,
            retries and map refreshes in (``None`` = don't measure; the
            plain ``counters`` dict is always maintained).
        tracer: a :class:`~repro.obs.Tracer`; when set, every public
            call mints a trace id, stamps it into each sub-request's
            wire frames and emits ``client.request`` /
            ``client.sub_request`` spans, so the whole fan-out is
            reconstructable from span logs.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        client_id: Optional[int] = None,
        connect_timeout: Optional[float] = DEFAULT_CONNECT_TIMEOUT,
        op_timeout: Optional[float] = DEFAULT_OP_TIMEOUT,
        max_map_refreshes: int = 8,
        backoff: Optional[BackoffPolicy] = None,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._map = shard_map
        self._router = shard_map.make_router()
        self._client_id = (client_id if client_id is not None
                           else next(_next_client_id))
        self._connect_timeout = connect_timeout
        self._op_timeout = op_timeout
        self._max_map_refreshes = max_map_refreshes
        self._backoff = backoff if backoff is not None else BackoffPolicy(
            base=0.02, cap=0.5, max_attempts=max(1, max_map_refreshes))
        self._rng = random.Random(seed)
        self._conns: Dict[str, ServiceClient] = {}
        self._write_seq = itertools.count(1)
        self._refresh_lock = asyncio.Lock()
        self.counters = {
            "wrong_owner_retries": 0,
            "map_refreshes": 0,
            "sub_requests": 0,
        }
        registry = metrics if metrics is not None else MetricsRegistry(
            enabled=False)
        self.metrics = registry
        self.tracer = tracer
        self._m_reads = registry.counter(
            metric_names.CLIENT_REQUESTS, kind="read")
        self._m_writes = registry.counter(
            metric_names.CLIENT_REQUESTS, kind="write")
        self._m_subs = registry.counter(
            metric_names.CLIENT_REQUESTS, kind="sub_request")
        self._m_wrong_owner = registry.counter(
            metric_names.CLIENT_RETRIES, reason="wrong_owner")
        self._m_map_refreshes = registry.counter(
            metric_names.CLIENT_MAP_REFRESHES)

    # ------------------------------------------------------------------
    # Map and connections
    # ------------------------------------------------------------------
    @property
    def shard_map(self) -> ShardMap:
        """The map currently routing this client."""
        return self._map

    async def _conn(self, endpoint: str) -> ServiceClient:
        client = self._conns.get(endpoint)
        if client is not None:
            return client
        host, port = parse_endpoint(endpoint)
        client = await ServiceClient.connect(
            host, port, connect_timeout=self._connect_timeout,
            op_timeout=self._op_timeout)
        # Pipelined requests can race here; keep the first connection
        # and retire the duplicate instead of leaking its read loop.
        existing = self._conns.get(endpoint)
        if existing is not None:
            await client.close()
            return existing
        self._conns[endpoint] = client
        return client

    async def _drop_conn(self, endpoint: str) -> None:
        client = self._conns.pop(endpoint, None)
        if client is not None:
            await client.close()

    async def refresh_map(self) -> ShardMap:
        """Adopt the highest-epoch map any reachable node publishes.

        Serialised under a lock so concurrent sub-batches refused in the
        same flip trigger one fetch wave, not a stampede.
        """
        async with self._refresh_lock:
            best = self._map
            last_error: Optional[Exception] = None
            reached = 0
            for endpoint in self._map.nodes():
                try:
                    conn = await self._conn(endpoint)
                    fetched = ShardMap.from_bytes(await conn.shard_map())
                except Exception as exc:
                    last_error = exc
                    await self._drop_conn(endpoint)
                    continue
                reached += 1
                if (fetched.epoch > best.epoch
                        and best.same_cluster(fetched)):
                    best = fetched
            if not reached:
                raise last_error if last_error is not None else (
                    ConnectionError("no cluster node reachable"))
            self.counters["map_refreshes"] += 1
            self._m_map_refreshes.inc()
            self._map = best
            return best

    # ------------------------------------------------------------------
    # Telemetry helpers
    # ------------------------------------------------------------------
    def _new_trace(self) -> Optional[int]:
        """A trace id for one public call (``None`` when untraced)."""
        if self.tracer is None:
            return None
        return self.tracer.new_trace_id()

    def _span(self, name: str, trace_id: Optional[int], **fields):
        if self.tracer is not None and trace_id is not None:
            return self.tracer.span(name, trace_id, **fields)
        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    # Fan-out core
    # ------------------------------------------------------------------
    def _group_by_owner(
        self, pairs: Sequence[Tuple[int, bytes]],
    ) -> Dict[str, List[Tuple[int, bytes]]]:
        """Split ``(slot, element)`` pairs per owning endpoint."""
        routed = self._router.route_batch([e for _, e in pairs])
        groups: Dict[str, List[Tuple[int, bytes]]] = {}
        assignments = self._map.assignments
        for pair, shard_id in zip(pairs, routed):
            groups.setdefault(assignments[shard_id], []).append(pair)
        return groups

    async def _scatter(self, pairs, submit, out, attempt: int = 0,
                       trace_id: Optional[int] = None) -> None:
        """Fan ``pairs`` out per owner; re-split and retry on staleness.

        *submit(conn, elements, trace_id)* returns one result per
        element; results land in ``out`` at each pair's slot, so the
        caller reassembles request order for free.  A WRONG_OWNER
        refusal of a sub-batch refreshes the map and recurses on just
        that sub-batch — other owners' work is never repeated.
        """
        groups = self._group_by_owner(pairs)

        async def run(owner: str, group) -> None:
            self.counters["sub_requests"] += 1
            self._m_subs.inc()
            try:
                with self._span("client.sub_request", trace_id,
                                owner=owner, n_elements=len(group),
                                attempt=attempt):
                    conn = await self._conn(owner)
                    results = await submit(
                        conn, [e for _, e in group], trace_id)
            except WrongOwnerError:
                if attempt >= self._max_map_refreshes:
                    raise
                self.counters["wrong_owner_retries"] += 1
                self._m_wrong_owner.inc()
                await asyncio.sleep(
                    self._backoff.delay(attempt, self._rng))
                await self.refresh_map()
                await self._scatter(group, submit, out, attempt + 1,
                                    trace_id)
                return
            for (slot, _), value in zip(group, results):
                out[slot] = value

        await asyncio.gather(
            *(run(owner, group) for owner, group in groups.items()))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    async def query(self, elements: Sequence[ElementLike]) -> np.ndarray:
        """Batch verdicts across the fleet, in request order."""
        data = [to_bytes(e) for e in elements]
        if not data:
            return np.zeros(0, dtype=bool)
        out: List[object] = [None] * len(data)

        async def submit(conn: ServiceClient, chunk, trace_id):
            return list(await conn.query(chunk, trace_id=trace_id))

        self._m_reads.inc()
        trace_id = self._new_trace()
        with self._span("client.request", trace_id, kind="query",
                        n_elements=len(data)):
            await self._scatter(list(enumerate(data)), submit, out,
                                trace_id=trace_id)
        first = out[0]
        if isinstance(first, (bool, np.bool_)):
            return np.asarray(out, dtype=bool)
        return np.asarray(out, dtype=np.int64)

    async def query_multi(
        self, elements: Sequence[ElementLike],
    ) -> List[AssociationAnswer]:
        """ShBF_A association answers across the fleet, request order."""
        data = [to_bytes(e) for e in elements]
        out: List[object] = [None] * len(data)

        async def submit(conn: ServiceClient, chunk, trace_id):
            return await conn.query_multi(chunk, trace_id=trace_id)

        self._m_reads.inc()
        trace_id = self._new_trace()
        with self._span("client.request", trace_id, kind="query_multi",
                        n_elements=len(data)):
            await self._scatter(list(enumerate(data)), submit, out,
                                trace_id=trace_id)
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    async def add(self, elements: Sequence[ElementLike],
                  counts: Optional[Sequence[int]] = None) -> int:
        """Insert a batch across its owners; returns elements applied.

        Each per-owner sub-batch is one ADD_IDEM with its own write id.
        A WRONG_OWNER refusal re-splits under the refreshed map and
        retries with fresh keys — safe because refusal precedes
        application, always.
        """
        data = [to_bytes(e) for e in elements]
        if not data:
            return 0
        count_by_slot = None if counts is None else dict(
            zip(range(len(data)), counts))
        applied: List[object] = [None] * len(data)
        self._m_writes.inc()
        trace_id = self._new_trace()
        # Writes need per-sub-batch idempotency keys and count slices,
        # so they use a dedicated scatter instead of `_scatter`.
        with self._span("client.request", trace_id, kind="add",
                        n_elements=len(data)):
            await self._scatter_write(
                list(enumerate(data)), count_by_slot, applied, 0,
                trace_id)
        return sum(1 for v in applied if v is not None)

    async def _scatter_write(self, pairs, count_by_slot, applied,
                             attempt: int,
                             trace_id: Optional[int] = None) -> None:
        groups = self._group_by_owner(pairs)

        async def run(owner: str, group) -> None:
            self.counters["sub_requests"] += 1
            self._m_subs.inc()
            chunk = [e for _, e in group]
            chunk_counts = None if count_by_slot is None else [
                count_by_slot[slot] for slot, _ in group]
            write_id = next(self._write_seq)
            try:
                with self._span("client.sub_request", trace_id,
                                owner=owner, n_elements=len(group),
                                attempt=attempt):
                    conn = await self._conn(owner)
                    await conn.add_idem(
                        self._client_id, write_id, chunk, chunk_counts,
                        trace_id=trace_id)
            except WrongOwnerError:
                if attempt >= self._max_map_refreshes:
                    raise
                self.counters["wrong_owner_retries"] += 1
                self._m_wrong_owner.inc()
                await asyncio.sleep(
                    self._backoff.delay(attempt, self._rng))
                await self.refresh_map()
                await self._scatter_write(
                    group, count_by_slot, applied, attempt + 1, trace_id)
                return
            for slot, _ in group:
                applied[slot] = True

        await asyncio.gather(
            *(run(owner, group) for owner, group in groups.items()))

    # ------------------------------------------------------------------
    # Observability and lifecycle
    # ------------------------------------------------------------------
    async def stats(self) -> Dict[str, dict]:
        """Per-node STATS, keyed by endpoint (unreachable nodes omitted)."""
        out: Dict[str, dict] = {}
        for endpoint in self._map.nodes():
            try:
                conn = await self._conn(endpoint)
                out[endpoint] = await conn.stats()
            except (ConnectionError, OSError):
                await self._drop_conn(endpoint)
        return out

    async def close(self) -> None:
        """Close every per-node connection."""
        conns, self._conns = list(self._conns.values()), {}
        await asyncio.gather(
            *(c.close() for c in conns), return_exceptions=True)

    async def __aenter__(self) -> "ClusterClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
