"""Packed fixed-width counter arrays.

Counting filters (CBF, CShBF_M/A/x, Spectral BF, DCF) replace each bit
with a small counter.  :class:`CounterArray` packs ``bits_per_counter``-bit
counters densely into a byte buffer — the physical layout the paper assumes
when it derives the counting-variant offset bound
``w_bar <= floor((w - 7) / z)`` (§3.3), where ``z`` is the counter width.

Overflow behaviour is a policy because the literature differs: classic
4-bit counting Bloom filters saturate (and then refuse to decrement a
saturated counter, making deletes conservative), while analytical work
often prefers failing loudly.  Underflow — decrementing a zero counter —
always raises, because it means deleting an element that is not present,
which no counting filter supports.
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence

import numpy as np

from repro._util import require_positive
from repro._vector import as_batch_int64
from repro.bitarray.memory import MemoryModel
from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)

__all__ = ["CounterArray", "OverflowPolicy"]


class OverflowPolicy(enum.Enum):
    """What to do when an increment exceeds the counter's maximum value."""

    #: Clamp at the maximum value; a saturated counter is never decremented
    #: (the classic conservative CBF rule — it may leak, never false-negate).
    SATURATE = "saturate"
    #: Raise :class:`~repro.errors.CounterOverflowError`.
    RAISE = "raise"


class CounterArray:
    """A dense array of ``size`` counters, each ``bits_per_counter`` wide.

    Args:
        size: number of counters.
        bits_per_counter: width ``z`` of each counter in bits (1..64).
            The classic CBF uses 4; Spectral BF experiments in the paper
            use 6.
        memory: optional access-cost model (defaults to a private DRAM-tier
            model, since counting arrays live off-chip in the paper's
            deployments).
        overflow: what to do on overflow (saturate by default).

    Example:
        >>> counters = CounterArray(8, bits_per_counter=4)
        >>> counters.increment(3); counters.increment(3)
        >>> counters.get(3)
        2
        >>> counters.decrement(3)
        >>> counters.get(3)
        1
    """

    __slots__ = ("_size", "_bits", "_max", "_buf", "_nonzero",
                 "memory", "overflow")

    def __init__(
        self,
        size: int,
        bits_per_counter: int = 4,
        memory: Optional[MemoryModel] = None,
        overflow: OverflowPolicy = OverflowPolicy.SATURATE,
    ):
        require_positive("size", size)
        require_positive("bits_per_counter", bits_per_counter)
        if bits_per_counter > 64:
            raise ConfigurationError(
                "bits_per_counter must be <= 64, got %d" % bits_per_counter
            )
        self._size = size
        self._bits = bits_per_counter
        self._max = (1 << bits_per_counter) - 1
        self._buf = bytearray((size * bits_per_counter + 7) // 8)
        self._nonzero = 0
        self.memory = memory if memory is not None else MemoryModel(
            tier="dram")
        self.overflow = overflow

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        """Number of counters."""
        return self._size

    @property
    def bits_per_counter(self) -> int:
        """Width ``z`` of each counter in bits."""
        return self._bits

    @property
    def max_value(self) -> int:
        """Largest representable counter value, ``2**z - 1``."""
        return self._max

    @property
    def total_bits(self) -> int:
        """Memory footprint in bits (``size * z``)."""
        return self._size * self._bits

    def nonzero_count(self) -> int:
        """Number of counters currently greater than zero.

        Maintained incrementally so synchronising a counting array with its
        query-side bit array (§3.3) stays cheap.
        """
        return self._nonzero

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._size:
            raise IndexError(
                "counter index %d out of range for %d counters"
                % (i, self._size)
            )

    # ------------------------------------------------------------------
    # Raw packed access
    # ------------------------------------------------------------------
    def _read_raw(self, i: int) -> int:
        start = i * self._bits
        end = start + self._bits
        first = start >> 3
        last = (end - 1) >> 3
        chunk = int.from_bytes(self._buf[first : last + 1], "little")
        return (chunk >> (start & 7)) & self._max

    def _write_raw(self, i: int, value: int) -> None:
        start = i * self._bits
        end = start + self._bits
        first = start >> 3
        last = (end - 1) >> 3
        width = last - first + 1
        chunk = int.from_bytes(self._buf[first : last + 1], "little")
        shift = start & 7
        chunk &= ~(self._max << shift)
        chunk |= value << shift
        self._buf[first : last + 1] = chunk.to_bytes(width, "little")

    # ------------------------------------------------------------------
    # Public counter operations
    # ------------------------------------------------------------------
    def get(self, i: int, record: bool = True) -> int:
        """Return the value of counter *i* (one recorded read)."""
        self._check_index(i)
        if record:
            self.memory.record_read(i * self._bits, self._bits)
        return self._read_raw(i)

    def peek(self, i: int) -> int:
        """Return counter *i* without touching access statistics."""
        self._check_index(i)
        return self._read_raw(i)

    def __getitem__(self, i: int) -> int:
        return self.peek(i)

    def set(self, i: int, value: int, record: bool = True) -> None:
        """Overwrite counter *i* with *value* (one recorded write)."""
        self._check_index(i)
        if not 0 <= value <= self._max:
            raise ConfigurationError(
                "value %d does not fit in a %d-bit counter"
                % (value, self._bits)
            )
        if record:
            self.memory.record_write(i * self._bits, self._bits)
        old = self._read_raw(i)
        self._write_raw(i, value)
        self._nonzero += (value > 0) - (old > 0)

    def increment(self, i: int, by: int = 1, record: bool = True) -> int:
        """Add *by* to counter *i*; return the new value.

        On overflow, behaviour follows :attr:`overflow`: saturating arrays
        clamp to :attr:`max_value`, raising arrays raise
        :class:`~repro.errors.CounterOverflowError`.
        """
        self._check_index(i)
        require_positive("by", by)
        if record:
            self.memory.record_write(i * self._bits, self._bits)
        old = self._read_raw(i)
        new = old + by
        if new > self._max:
            if self.overflow is OverflowPolicy.RAISE:
                raise CounterOverflowError(
                    "counter %d overflowed %d-bit width (%d + %d)"
                    % (i, self._bits, old, by)
                )
            new = self._max
        self._write_raw(i, new)
        if old == 0 and new > 0:
            self._nonzero += 1
        return new

    def decrement(self, i: int, by: int = 1, record: bool = True) -> int:
        """Subtract *by* from counter *i*; return the new value.

        A saturated counter (under :attr:`OverflowPolicy.SATURATE`) is left
        untouched — the classic conservative rule, since its true value is
        unknown.  Decrementing below zero raises
        :class:`~repro.errors.CounterUnderflowError`.
        """
        self._check_index(i)
        require_positive("by", by)
        if record:
            self.memory.record_write(i * self._bits, self._bits)
        old = self._read_raw(i)
        if old == self._max and self.overflow is OverflowPolicy.SATURATE:
            return old
        if old < by:
            raise CounterUnderflowError(
                "counter %d would underflow (%d - %d)" % (i, old, by)
            )
        new = old - by
        self._write_raw(i, new)
        if old > 0 and new == 0:
            self._nonzero -= 1
        return new

    # ------------------------------------------------------------------
    # Windowed (shifted-pair) operations
    # ------------------------------------------------------------------
    def get_offsets(
        self, base: int, offsets: Sequence[int], record: bool = True
    ) -> tuple[int, ...]:
        """Read counters ``base + o`` for each offset as one logical access.

        The counting shifting filters rely on the bound
        ``w_bar <= (w - 7) / z`` so a counter pair shares one word fetch;
        the recorded span reflects that.
        """
        if not offsets:
            return ()
        for o in offsets:
            self._check_index(base + o)
        if record:
            span_bits = (max(offsets) + 1) * self._bits
            self.memory.record_read(base * self._bits, span_bits)
        return tuple(self._read_raw(base + o) for o in offsets)

    def increment_offsets(
        self, base: int, offsets: Iterable[int], by: int = 1,
        record: bool = True,
    ) -> None:
        """Increment counters ``base + o`` for each offset as one access."""
        offsets = tuple(offsets)
        if not offsets:
            return
        for o in offsets:
            self._check_index(base + o)
        if record:
            span_bits = (max(offsets) + 1) * self._bits
            self.memory.record_write(base * self._bits, span_bits)
        for o in offsets:
            self.increment(base + o, by=by, record=False)

    def decrement_offsets(
        self, base: int, offsets: Iterable[int], by: int = 1,
        record: bool = True,
    ) -> None:
        """Decrement counters ``base + o`` for each offset as one access."""
        offsets = tuple(offsets)
        if not offsets:
            return
        for o in offsets:
            self._check_index(base + o)
        if record:
            span_bits = (max(offsets) + 1) * self._bits
            self.memory.record_write(base * self._bits, span_bits)
        for o in offsets:
            self.decrement(base + o, by=by, record=False)

    # ------------------------------------------------------------------
    # Batch operations
    # ------------------------------------------------------------------
    # Counter updates are inherently sequential (saturation and underflow
    # depend on the running value, and duplicate positions within a batch
    # must accumulate), so the inner loop stays in Python over the packed
    # buffer — but billing is aggregated into one call per batch and the
    # span arithmetic is vectorised, matching the scalar accounting.

    def _apply_offsets_batch(self, bases, offsets, op, by: int,
                             record: bool) -> None:
        """Shared body of the batch offset updates.

        *op* is the scalar per-position update (:meth:`increment` or
        :meth:`decrement`, called with ``record=False``).  On success
        the whole batch's writes are billed in one aggregate call; if a
        row's update raises (overflow/underflow), only the rows the
        scalar loop would have billed — every completed row plus the
        failing one — are recorded before the exception propagates, so
        accounting matches the scalar path on exception paths too.
        """
        bases = as_batch_int64(bases)
        offsets = np.atleast_2d(as_batch_int64(offsets))
        if bases.size == 0:
            return
        positions = bases[:, None] + offsets
        if (int(bases.min()) < 0 or int(bases.max()) >= self._size
                or int(positions.min()) < 0
                or int(positions.max()) >= self._size):
            raise IndexError(
                "counter index out of range for %d counters" % self._size)
        spans = np.broadcast_to(offsets.max(axis=-1) + 1, bases.shape)
        row_costs = self.memory.read_cost_batch(
            bases * self._bits, spans * self._bits)
        row = 0
        try:
            for row, row_positions in enumerate(positions.tolist()):
                for position in row_positions:
                    op(position, by=by, record=False)
        except Exception:
            if record:
                self.memory.record_writes(
                    row + 1, int(row_costs[: row + 1].sum()))
            raise
        if record:
            self.memory.record_writes(bases.size, int(row_costs.sum()))

    def increment_offsets_batch(self, bases, offsets, by: int = 1,
                                record: bool = True) -> None:
        """Batch :meth:`increment_offsets`: one write billed per base row.

        ``bases`` has shape ``(n,)``; ``offsets`` is ``(n, g)`` or
        ``(g,)``.  State and accounting are identical to ``n`` scalar
        ``increment_offsets`` calls.
        """
        self._apply_offsets_batch(bases, offsets, self.increment, by, record)

    def decrement_offsets_batch(self, bases, offsets, by: int = 1,
                                record: bool = True) -> None:
        """Batch :meth:`decrement_offsets`: one write billed per base row."""
        self._apply_offsets_batch(bases, offsets, self.decrement, by, record)

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def clear_all(self) -> None:
        """Reset every counter to zero (does not touch access statistics)."""
        self._buf[:] = bytes(len(self._buf))
        self._nonzero = 0

    def to_list(self) -> list[int]:
        """Return all counter values (for tests and serialisation)."""
        return [self._read_raw(i) for i in range(self._size)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CounterArray(size=%d, bits=%d, nonzero=%d)" % (
            self._size, self._bits, self._nonzero)
