"""Dense bit vector with windowed reads and access accounting.

:class:`BitArray` is the storage primitive under every filter in this
library.  Besides the usual single-bit operations it offers *windowed*
reads and writes — fetch ``nbits`` consecutive bits as one integer, or set
several bits at fixed offsets from a base position — which is exactly the
access pattern the shifting framework is built around: one byte-aligned
word fetch yields both the existence bit and the auxiliary (shifted) bit.

Each operation can be routed through a :class:`~repro.bitarray.memory.
MemoryModel` so experiment harnesses can count word-granular traffic the
same way the paper does.  Accounting reflects *logical* accesses: a windowed
read is billed as one operation whose word cost depends on its span, while
two separate :meth:`BitArray.test` calls are billed as two operations.

The backing store is a ``bytearray`` addressed LSB-first (bit ``i`` lives
in byte ``i // 8`` at in-byte position ``i % 8``), which matches the
little-endian byte-addressable model in §3.1 of the paper and keeps
windowed extraction a shift-and-mask on an ``int``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro._util import require_positive
from repro.bitarray.memory import MemoryModel
from repro.errors import ConfigurationError

__all__ = ["BitArray"]

_BYTE_POPCOUNT = bytes(bin(i).count("1") for i in range(256))


class BitArray:
    """A fixed-size array of bits supporting windowed access.

    Args:
        nbits: number of addressable bits.  Filters typically allocate
            ``m + slack`` bits where ``slack`` absorbs the maximum offset so
            shifted positions never wrap (§3.1 extends the array to
            ``m + w_bar`` bits for this reason).
        memory: optional access-cost model.  When provided, every recorded
            operation updates ``memory.stats``; when omitted, a private
            model is created so accounting is always available.

    Example:
        >>> bits = BitArray(128)
        >>> bits.set(3); bits.set(10)
        >>> bits.test(3), bits.test(4)
        (True, False)
        >>> bin(bits.read_window(3, 8))  # bits 3..10 as an int, LSB first
        '0b10000001'
    """

    __slots__ = ("_nbits", "_buf", "memory")

    def __init__(self, nbits: int, memory: Optional[MemoryModel] = None):
        require_positive("nbits", nbits)
        self._nbits = nbits
        self._buf = bytearray((nbits + 7) // 8)
        self.memory = memory if memory is not None else MemoryModel()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._nbits

    @property
    def nbits(self) -> int:
        """Number of addressable bits."""
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Size of the backing buffer in bytes."""
        return len(self._buf)

    def count(self) -> int:
        """Number of set bits (population count)."""
        table = _BYTE_POPCOUNT
        return sum(table[b] for b in self._buf)

    def fill_ratio(self) -> float:
        """Fraction of bits set, in ``[0, 1]``."""
        return self.count() / self._nbits

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._nbits:
            raise IndexError(
                "bit index %d out of range for BitArray of %d bits"
                % (i, self._nbits)
            )

    # ------------------------------------------------------------------
    # Single-bit operations
    # ------------------------------------------------------------------
    def set(self, i: int, record: bool = True) -> None:
        """Set bit *i* to 1 (one recorded write)."""
        self._check_index(i)
        if record:
            self.memory.record_write(i, 1)
        self._buf[i >> 3] |= 1 << (i & 7)

    def clear(self, i: int, record: bool = True) -> None:
        """Set bit *i* to 0 (one recorded write)."""
        self._check_index(i)
        if record:
            self.memory.record_write(i, 1)
        self._buf[i >> 3] &= ~(1 << (i & 7)) & 0xFF

    def test(self, i: int, record: bool = True) -> bool:
        """Return whether bit *i* is set (one recorded read)."""
        self._check_index(i)
        if record:
            self.memory.record_read(i, 1)
        return bool(self._buf[i >> 3] >> (i & 7) & 1)

    def peek(self, i: int) -> bool:
        """Return bit *i* without touching the access statistics.

        Tests and invariants use this to observe state without perturbing
        the traffic counters that experiments measure.
        """
        self._check_index(i)
        return bool(self._buf[i >> 3] >> (i & 7) & 1)

    def __getitem__(self, i: int) -> bool:
        return self.peek(i)

    # ------------------------------------------------------------------
    # Windowed operations — the shifting framework's primitive
    # ------------------------------------------------------------------
    def read_window(self, start: int, nbits: int, record: bool = True) -> int:
        """Read ``nbits`` consecutive bits starting at *start* as an int.

        Bit ``j`` of the result equals bit ``start + j`` of the array.
        Billed as one logical read whose word cost is
        ``memory.read_cost(start, nbits)`` — one fetch when the span fits a
        byte-aligned word, which is what the offset bound guarantees for
        shifted pairs.
        """
        self._check_index(start)
        require_positive("nbits", nbits)
        end = start + nbits
        if end > self._nbits:
            raise IndexError(
                "window [%d, %d) exceeds BitArray of %d bits"
                % (start, end, self._nbits)
            )
        if record:
            self.memory.record_read(start, nbits)
        first = start >> 3
        last = (end - 1) >> 3
        chunk = int.from_bytes(self._buf[first : last + 1], "little")
        return (chunk >> (start & 7)) & ((1 << nbits) - 1)

    def test_offsets(
        self, start: int, offsets: Sequence[int], record: bool = True
    ) -> tuple[bool, ...]:
        """Test the bits at ``start + o`` for each offset, as one read.

        This is the query-side primitive of the shifting framework: ShBF_M
        checks ``(h_i(e), h_i(e) + o(e))`` and ShBF_A checks
        ``(h_i(e), h_i(e) + o1(e), h_i(e) + o2(e))`` with a single windowed
        fetch each.
        """
        if not offsets:
            return ()
        span = max(offsets) + 1
        end = start + span
        self._check_index(start)
        if end > self._nbits:
            raise IndexError(
                "window [%d, %d) exceeds BitArray of %d bits"
                % (start, end, self._nbits)
            )
        if record:
            # Billed as ONE read of the whole span — the word fetch the
            # modelled hardware performs; the byte-indexed extraction
            # below is just the fastest CPython way to pick bits out of
            # that (conceptually fetched) word.
            self.memory.record_read(start, span)
        buf = self._buf
        return tuple(
            bool(buf[(start + o) >> 3] >> ((start + o) & 7) & 1)
            for o in offsets
        )

    def test_pair(self, start: int, offset: int, record: bool = True) -> bool:
        """Whether bits ``start`` and ``start + offset`` are both set.

        The ShBF_M inner loop, specialised: one billed read covering the
        pair's span, two direct byte probes.  Equivalent to
        ``all(test_offsets(start, (0, offset)))`` but cheap enough that
        wall-clock speed experiments measure the modelled costs rather
        than Python tuple plumbing.
        """
        end = start + offset
        if start < 0 or end >= self._nbits or offset < 0:
            self._check_index(start)
            self._check_index(end)
        if record:
            self.memory.record_read(start, offset + 1)
        buf = self._buf
        return bool(
            buf[start >> 3] >> (start & 7)
            & buf[end >> 3] >> (end & 7) & 1
        )

    def test_triple(
        self, start: int, o1: int, o2: int, record: bool = True
    ) -> tuple:
        """Bits at ``start``, ``start + o1``, ``start + o2`` as bools.

        The ShBF_A inner loop, specialised like :meth:`test_pair`
        (``0 < o1 < o2`` by the offset policy's construction).
        """
        end = start + o2
        if start < 0 or end >= self._nbits or not 0 < o1 < o2:
            self._check_index(start)
            self._check_index(end)
            if not 0 < o1 < o2:
                raise IndexError("offsets must satisfy 0 < o1 < o2")
        if record:
            self.memory.record_read(start, o2 + 1)
        buf = self._buf
        mid = start + o1
        return (
            bool(buf[start >> 3] >> (start & 7) & 1),
            bool(buf[mid >> 3] >> (mid & 7) & 1),
            bool(buf[end >> 3] >> (end & 7) & 1),
        )

    def set_offsets(
        self, start: int, offsets: Iterable[int], record: bool = True
    ) -> None:
        """Set the bits at ``start + o`` for each offset, as one write.

        Mirrors :meth:`test_offsets` for the construction phase: the member
        and shifted bits land in one word, so the paper bills the pair as a
        single write access.
        """
        offsets = tuple(offsets)
        if not offsets:
            return
        span = max(offsets) + 1
        end = start + span
        self._check_index(start)
        if end > self._nbits:
            raise IndexError(
                "window [%d, %d) exceeds BitArray of %d bits"
                % (start, end, self._nbits)
            )
        if record:
            self.memory.record_write(start, span)
        buf = self._buf
        for o in offsets:
            i = start + o
            buf[i >> 3] |= 1 << (i & 7)

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def clear_all(self) -> None:
        """Reset every bit to 0 (does not touch access statistics)."""
        for i in range(len(self._buf)):
            self._buf[i] = 0

    def copy(self) -> "BitArray":
        """Return a deep copy sharing no state (fresh access statistics)."""
        clone = BitArray(self._nbits, memory=MemoryModel(
            word_bits=self.memory.word_bits, tier=self.memory.tier))
        clone._buf[:] = self._buf
        return clone

    def to_bytes(self) -> bytes:
        """Serialise the raw bit buffer (LSB-first within each byte)."""
        return bytes(self._buf)

    @classmethod
    def from_bytes(
        cls, data: bytes, nbits: int, memory: Optional[MemoryModel] = None
    ) -> "BitArray":
        """Rebuild a :class:`BitArray` from :meth:`to_bytes` output."""
        arr = cls(nbits, memory=memory)
        if len(data) != len(arr._buf):
            raise ConfigurationError(
                "buffer of %d bytes does not match %d bits"
                % (len(data), nbits)
            )
        arr._buf[:] = data
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BitArray(nbits=%d, set=%d)" % (self._nbits, self.count())
