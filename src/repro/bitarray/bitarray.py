"""Dense bit vector with windowed reads and access accounting.

:class:`BitArray` is the storage primitive under every filter in this
library.  Besides the usual single-bit operations it offers *windowed*
reads and writes — fetch ``nbits`` consecutive bits as one integer, or set
several bits at fixed offsets from a base position — which is exactly the
access pattern the shifting framework is built around: one byte-aligned
word fetch yields both the existence bit and the auxiliary (shifted) bit.

Each operation can be routed through a :class:`~repro.bitarray.memory.
MemoryModel` so experiment harnesses can count word-granular traffic the
same way the paper does.  Accounting reflects *logical* accesses: a windowed
read is billed as one operation whose word cost depends on its span, while
two separate :meth:`BitArray.test` calls are billed as two operations.

The backing store is a ``bytearray`` addressed LSB-first (bit ``i`` lives
in byte ``i // 8`` at in-byte position ``i % 8``), which matches the
little-endian byte-addressable model in §3.1 of the paper and keeps
windowed extraction a shift-and-mask on an ``int``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro._util import require_positive
from repro._vector import as_batch_int64
from repro.bitarray.memory import MemoryModel
from repro.errors import ConfigurationError

__all__ = ["BitArray"]


class BitArray:
    """A fixed-size array of bits supporting windowed access.

    Args:
        nbits: number of addressable bits.  Filters typically allocate
            ``m + slack`` bits where ``slack`` absorbs the maximum offset so
            shifted positions never wrap (§3.1 extends the array to
            ``m + w_bar`` bits for this reason).
        memory: optional access-cost model.  When provided, every recorded
            operation updates ``memory.stats``; when omitted, a private
            model is created so accounting is always available.

    Example:
        >>> bits = BitArray(128)
        >>> bits.set(3); bits.set(10)
        >>> bits.test(3), bits.test(4)
        (True, False)
        >>> bin(bits.read_window(3, 8))  # bits 3..10 as an int, LSB first
        '0b10000001'
    """

    __slots__ = ("_nbits", "_buf", "memory")

    def __init__(self, nbits: int, memory: Optional[MemoryModel] = None):
        require_positive("nbits", nbits)
        self._nbits = nbits
        self._buf = bytearray((nbits + 7) // 8)
        self.memory = memory if memory is not None else MemoryModel()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._nbits

    @property
    def nbits(self) -> int:
        """Number of addressable bits."""
        return self._nbits

    @property
    def nbytes(self) -> int:
        """Size of the backing buffer in bytes."""
        return len(self._buf)

    def count(self) -> int:
        """Number of set bits (population count)."""
        return int.from_bytes(self._buf, "little").bit_count()

    def fill_ratio(self) -> float:
        """Fraction of bits set, in ``[0, 1]``."""
        return self.count() / self._nbits

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._nbits:
            raise IndexError(
                "bit index %d out of range for BitArray of %d bits"
                % (i, self._nbits)
            )

    # ------------------------------------------------------------------
    # Single-bit operations
    # ------------------------------------------------------------------
    def set(self, i: int, record: bool = True) -> None:
        """Set bit *i* to 1 (one recorded write)."""
        self._check_index(i)
        if record:
            self.memory.record_write(i, 1)
        self._buf[i >> 3] |= 1 << (i & 7)

    def clear(self, i: int, record: bool = True) -> None:
        """Set bit *i* to 0 (one recorded write)."""
        self._check_index(i)
        if record:
            self.memory.record_write(i, 1)
        self._buf[i >> 3] &= ~(1 << (i & 7)) & 0xFF

    def test(self, i: int, record: bool = True) -> bool:
        """Return whether bit *i* is set (one recorded read)."""
        self._check_index(i)
        if record:
            self.memory.record_read(i, 1)
        return bool(self._buf[i >> 3] >> (i & 7) & 1)

    def peek(self, i: int) -> bool:
        """Return bit *i* without touching the access statistics.

        Tests and invariants use this to observe state without perturbing
        the traffic counters that experiments measure.
        """
        self._check_index(i)
        return bool(self._buf[i >> 3] >> (i & 7) & 1)

    def __getitem__(self, i: int) -> bool:
        return self.peek(i)

    # ------------------------------------------------------------------
    # Windowed operations — the shifting framework's primitive
    # ------------------------------------------------------------------
    def read_window(self, start: int, nbits: int, record: bool = True) -> int:
        """Read ``nbits`` consecutive bits starting at *start* as an int.

        Bit ``j`` of the result equals bit ``start + j`` of the array.
        Billed as one logical read whose word cost is
        ``memory.read_cost(start, nbits)`` — one fetch when the span fits a
        byte-aligned word, which is what the offset bound guarantees for
        shifted pairs.
        """
        self._check_index(start)
        require_positive("nbits", nbits)
        end = start + nbits
        if end > self._nbits:
            raise IndexError(
                "window [%d, %d) exceeds BitArray of %d bits"
                % (start, end, self._nbits)
            )
        if record:
            self.memory.record_read(start, nbits)
        first = start >> 3
        last = (end - 1) >> 3
        chunk = int.from_bytes(self._buf[first : last + 1], "little")
        return (chunk >> (start & 7)) & ((1 << nbits) - 1)

    def test_offsets(
        self, start: int, offsets: Sequence[int], record: bool = True
    ) -> tuple[bool, ...]:
        """Test the bits at ``start + o`` for each offset, as one read.

        This is the query-side primitive of the shifting framework: ShBF_M
        checks ``(h_i(e), h_i(e) + o(e))`` and ShBF_A checks
        ``(h_i(e), h_i(e) + o1(e), h_i(e) + o2(e))`` with a single windowed
        fetch each.
        """
        if not offsets:
            return ()
        span = max(offsets) + 1
        end = start + span
        self._check_index(start)
        if end > self._nbits:
            raise IndexError(
                "window [%d, %d) exceeds BitArray of %d bits"
                % (start, end, self._nbits)
            )
        if record:
            # Billed as ONE read of the whole span — the word fetch the
            # modelled hardware performs; the byte-indexed extraction
            # below is just the fastest CPython way to pick bits out of
            # that (conceptually fetched) word.
            self.memory.record_read(start, span)
        buf = self._buf
        return tuple(
            bool(buf[(start + o) >> 3] >> ((start + o) & 7) & 1)
            for o in offsets
        )

    def test_pair(self, start: int, offset: int, record: bool = True) -> bool:
        """Whether bits ``start`` and ``start + offset`` are both set.

        The ShBF_M inner loop, specialised: one billed read covering the
        pair's span, two direct byte probes.  Equivalent to
        ``all(test_offsets(start, (0, offset)))`` but cheap enough that
        wall-clock speed experiments measure the modelled costs rather
        than Python tuple plumbing.
        """
        end = start + offset
        if start < 0 or end >= self._nbits or offset < 0:
            self._check_index(start)
            self._check_index(end)
        if record:
            self.memory.record_read(start, offset + 1)
        buf = self._buf
        return bool(
            buf[start >> 3] >> (start & 7)
            & buf[end >> 3] >> (end & 7) & 1
        )

    def test_triple(
        self, start: int, o1: int, o2: int, record: bool = True
    ) -> tuple:
        """Bits at ``start``, ``start + o1``, ``start + o2`` as bools.

        The ShBF_A inner loop, specialised like :meth:`test_pair`
        (``0 < o1 < o2`` by the offset policy's construction).
        """
        end = start + o2
        if start < 0 or end >= self._nbits or not 0 < o1 < o2:
            self._check_index(start)
            self._check_index(end)
            if not 0 < o1 < o2:
                raise IndexError("offsets must satisfy 0 < o1 < o2")
        if record:
            self.memory.record_read(start, o2 + 1)
        buf = self._buf
        mid = start + o1
        return (
            bool(buf[start >> 3] >> (start & 7) & 1),
            bool(buf[mid >> 3] >> (mid & 7) & 1),
            bool(buf[end >> 3] >> (end & 7) & 1),
        )

    def set_offsets(
        self, start: int, offsets: Iterable[int], record: bool = True
    ) -> None:
        """Set the bits at ``start + o`` for each offset, as one write.

        Mirrors :meth:`test_offsets` for the construction phase: the member
        and shifted bits land in one word, so the paper bills the pair as a
        single write access.
        """
        offsets = tuple(offsets)
        if not offsets:
            return
        span = max(offsets) + 1
        end = start + span
        self._check_index(start)
        if end > self._nbits:
            raise IndexError(
                "window [%d, %d) exceeds BitArray of %d bits"
                % (start, end, self._nbits)
            )
        if record:
            self.memory.record_write(start, span)
        buf = self._buf
        for o in offsets:
            i = start + o
            buf[i >> 3] |= 1 << (i & 7)

    # ------------------------------------------------------------------
    # Batch kernels — NumPy bulk operations over the same buffer
    # ------------------------------------------------------------------
    # Each kernel is the vectorised twin of a scalar operation above:
    # same bits touched, and (when ``record`` is true) the same logical
    # accounting — n probes bill n ops whose word costs are computed per
    # access with ``memory.read_cost_batch`` and recorded in one call.
    # Query paths that need the scalar loops' *early-exit* billing call
    # the kernels with ``record=False`` and bill the prefix themselves.

    def as_numpy(self) -> np.ndarray:
        """Zero-copy ``uint8`` view of the backing buffer.

        The backing store is a ``bytearray`` (or, for an array built by
        :meth:`attach_readonly`, a read-only ``memoryview`` over an
        external buffer); the view's writeable flag tracks the backing
        buffer.  Do not rely on that flag alone to police writes —
        ``np.ufunc.at`` ignores it — the batch write kernels guard with
        :meth:`_check_writable` instead.
        """
        return np.frombuffer(self._buf, dtype=np.uint8)

    def _check_batch(self, positions: np.ndarray) -> None:
        if positions.size == 0:
            return
        lo = int(positions.min())
        hi = int(positions.max())
        if lo < 0 or hi >= self._nbits:
            bad = lo if lo < 0 else hi
            raise IndexError(
                "bit index %d out of range for BitArray of %d bits"
                % (bad, self._nbits)
            )

    def test_bits_batch(self, positions, record: bool = True) -> np.ndarray:
        """Vectorised :meth:`test`: a boolean per position.

        When recording, bills one single-bit read per position — exactly
        a scalar ``test`` loop without early exit.
        """
        positions = as_batch_int64(positions)
        self._check_batch(positions)
        if record and positions.size:
            costs = self.memory.read_cost_batch(positions, 1)
            self.memory.record_reads(positions.size, int(costs.sum()))
        view = self.as_numpy()
        return ((view[positions >> 3] >> (positions & 7)) & 1).astype(bool)

    def test_pairs_batch(self, bases, offsets,
                         record: bool = True) -> np.ndarray:
        """Vectorised :meth:`test_pair`: both bits of each pair set?

        ``bases`` and ``offsets`` broadcast together; each pair is billed
        (when recording) as one read spanning ``offset + 1`` bits from
        its base, matching the scalar pair billing.
        """
        bases = as_batch_int64(bases)
        offsets = as_batch_int64(offsets)
        bases, offsets = np.broadcast_arrays(bases, offsets)
        ends = bases + offsets
        if offsets.size and int(offsets.min()) < 0:
            raise IndexError("pair offsets must be non-negative")
        self._check_batch(bases)
        self._check_batch(ends)
        if record and bases.size:
            costs = self.memory.read_cost_batch(bases, offsets + 1)
            self.memory.record_reads(bases.size, int(costs.sum()))
        view = self.as_numpy()
        first = view[bases >> 3] >> (bases & 7)
        second = view[ends >> 3] >> (ends & 7)
        return ((first & second) & 1).astype(bool)

    def test_offsets_batch(self, bases, offsets,
                           record: bool = True) -> np.ndarray:
        """Vectorised :meth:`test_offsets`: bits at ``base + o`` per row.

        ``bases`` has shape ``(n,)`` and ``offsets`` ``(n, g)`` or
        ``(g,)``; returns an ``(n, g)`` boolean matrix.  Each row is
        billed as one read spanning its largest offset, like the scalar
        windowed fetch.
        """
        bases = as_batch_int64(bases)
        offsets = np.atleast_2d(as_batch_int64(offsets))
        positions = bases[:, None] + offsets
        self._check_batch(bases)
        self._check_batch(positions)
        if record and bases.size:
            spans = offsets.max(axis=-1) + 1
            costs = self.memory.read_cost_batch(
                bases, np.broadcast_to(spans, bases.shape))
            self.memory.record_reads(bases.size, int(costs.sum()))
        view = self.as_numpy()
        return ((view[positions >> 3] >> (positions & 7)) & 1).astype(bool)

    def _check_writable(self) -> None:
        # ``np.ufunc.at`` ignores the writeable flag (observed on numpy
        # 2.4: it happily scribbles on a read-only view), so the batch
        # write kernels cannot rely on NumPy to police an attached
        # shared segment the way the scalar ops rely on memoryview.
        if self.readonly:
            raise TypeError(
                "BitArray is read-only (attached to an external "
                "buffer); writes must go to the owning writer")

    def set_bits_batch(self, positions, record: bool = True) -> None:
        """Vectorised :meth:`set`: one recorded write per position."""
        self._check_writable()
        positions = as_batch_int64(positions).ravel()
        self._check_batch(positions)
        if positions.size == 0:
            return
        if record:
            costs = self.memory.read_cost_batch(positions, 1)
            self.memory.record_writes(positions.size, int(costs.sum()))
        view = self.as_numpy()
        np.bitwise_or.at(
            view, positions >> 3,
            (np.uint8(1) << (positions & 7).astype(np.uint8)))

    def set_offsets_batch(self, bases, offsets,
                          record: bool = True) -> None:
        """Vectorised :meth:`set_offsets` over ``(n,)`` bases.

        ``offsets`` is ``(n, g)`` or ``(g,)``; sets the bits
        ``base + o`` for every offset of the row, billing one write per
        base spanning the row's largest offset — the construction-phase
        accounting of the shifting framework.
        """
        self._check_writable()
        bases = as_batch_int64(bases)
        offsets = np.atleast_2d(as_batch_int64(offsets))
        if bases.size == 0:
            return
        positions = (bases[:, None] + offsets).ravel()
        self._check_batch(bases)
        self._check_batch(positions)
        if record:
            spans = np.broadcast_to(offsets.max(axis=-1) + 1, bases.shape)
            costs = self.memory.read_cost_batch(bases, spans)
            self.memory.record_writes(bases.size, int(costs.sum()))
        view = self.as_numpy()
        np.bitwise_or.at(
            view, positions >> 3,
            (np.uint8(1) << (positions & 7).astype(np.uint8)))

    def read_windows_batch(self, starts, nbits: int,
                           record: bool = True) -> np.ndarray:
        """Vectorised :meth:`read_window`: one ``uint64`` per start.

        The fast path gathers eight consecutive bytes per window, which
        covers every span with ``(start % 8) + nbits <= 64`` — all the
        configurations the paper's offset bounds permit.  Wider windows
        fall back to per-element :meth:`read_window` calls (identical
        values, still one Python call for the batch).
        """
        starts = as_batch_int64(starts)
        require_positive("nbits", nbits)
        self._check_batch(starts)
        if starts.size and int(starts.max()) + nbits > self._nbits:
            raise IndexError(
                "window of %d bits exceeds BitArray of %d bits"
                % (nbits, self._nbits)
            )
        if record and starts.size:
            costs = self.memory.read_cost_batch(starts, nbits)
            self.memory.record_reads(starts.size, int(costs.sum()))
        if starts.size == 0:
            return np.empty(0, dtype=np.uint64)
        misalign = starts & 7
        if nbits + int(misalign.max()) > 64:
            return np.array(
                [self.read_window(int(s), nbits, record=False)
                 for s in starts],
                dtype=object if nbits > 64 else np.uint64,
            )
        view = self.as_numpy()
        # Gather 8 bytes per window, clamping indices at the buffer end:
        # the window itself is bounds-checked, so clamped (duplicated)
        # bytes only ever occupy the bits shifted/masked away below.
        idx = (starts >> 3)[:, None] + np.arange(8)
        np.minimum(idx, len(self._buf) - 1, out=idx)
        chunk = view[idx]
        values = np.ascontiguousarray(chunk).view("<u8").ravel()
        values >>= misalign.astype(np.uint64)
        if nbits < 64:
            values &= np.uint64((1 << nbits) - 1)
        return values

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def clear_all(self) -> None:
        """Reset every bit to 0 (does not touch access statistics)."""
        self._buf[:] = bytes(len(self._buf))

    def copy(self) -> "BitArray":
        """Return a deep copy sharing no state (fresh access statistics)."""
        clone = BitArray(self._nbits, memory=MemoryModel(
            word_bits=self.memory.word_bits, tier=self.memory.tier))
        clone._buf[:] = self._buf
        return clone

    def to_bytes(self) -> bytes:
        """Serialise the raw bit buffer (LSB-first within each byte)."""
        return bytes(self._buf)

    @property
    def readonly(self) -> bool:
        """Whether the backing buffer refuses writes.

        ``False`` for ordinary (``bytearray``-backed) arrays; ``True``
        for arrays built by :meth:`attach_readonly`.  Write entry
        points are not pre-checked — a write against a read-only array
        raises at the buffer layer (``TypeError`` from the memoryview
        for scalar ops, ``ValueError`` from NumPy for batch kernels),
        which keeps the hot paths branch-free.
        """
        buf = self._buf
        return isinstance(buf, memoryview) and buf.readonly

    def export_readonly(self) -> memoryview:
        """Read-only zero-copy ``memoryview`` of the backing buffer.

        This is the publish-side half of shared-memory serving: the
        writer copies exactly these bytes into a shared segment, and
        readers re-wrap them with :meth:`attach_readonly`.  The view
        is contiguous ``uint8`` — the buffer is a flat ``bytearray``,
        *not* a ``uint64`` array (a widened dtype would impose
        8-byte-multiple buffer lengths the bit math never needs).
        """
        view = memoryview(self._buf)
        return view if view.readonly else view.toreadonly()

    @classmethod
    def attach_readonly(
        cls, buffer, nbits: int, memory: Optional[MemoryModel] = None
    ) -> "BitArray":
        """Wrap an external buffer as a read-only array — zero copy.

        *buffer* is any object exposing a C-contiguous byte buffer of
        exactly ``(nbits + 7) // 8`` bytes — typically a slice of a
        ``multiprocessing.shared_memory`` segment holding a published
        filter generation.  The returned array shares that memory: no
        bytes are copied, and every read (scalar, windowed, or batch)
        behaves exactly like the ``bytearray``-backed original.  Writes
        raise at the buffer layer (see :attr:`readonly`).

        :meth:`copy` on an attached array yields an ordinary writable
        deep copy, which is how a restarted writer warms up from the
        last published generation.
        """
        require_positive("nbits", nbits)
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        if not view.readonly:
            view = view.toreadonly()
        if len(view) != (nbits + 7) // 8:
            raise ConfigurationError(
                "buffer of %d bytes does not match %d bits"
                % (len(view), nbits)
            )
        arr = cls.__new__(cls)
        arr._nbits = nbits
        arr._buf = view
        arr.memory = memory if memory is not None else MemoryModel()
        return arr

    @classmethod
    def from_bytes(
        cls, data: bytes, nbits: int, memory: Optional[MemoryModel] = None
    ) -> "BitArray":
        """Rebuild a :class:`BitArray` from :meth:`to_bytes` output."""
        arr = cls(nbits, memory=memory)
        if len(data) != len(arr._buf):
            raise ConfigurationError(
                "buffer of %d bytes does not match %d bits"
                % (len(data), nbits)
            )
        arr._buf[:] = data
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BitArray(nbits=%d, set=%d)" % (self._nbits, self.count())
