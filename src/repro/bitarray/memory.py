"""Byte-aligned, word-granular memory access cost model.

The paper's performance claims are expressed in *memory accesses per
query*: one access fetches one machine word of ``w`` bits, and — on x86 —
a fetch may start at any **byte** boundary, not only at word boundaries
(§3.1).  Reading the single bit ``B[i]`` therefore always costs one access,
and reading the bit pair ``B[i]`` and ``B[i + o]`` costs one access iff
both bits fit inside some ``w``-bit window that starts at the byte
containing ``B[i]`` — which is what the paper's offset bound
``o <= w - 7`` guarantees.

:class:`MemoryModel` turns that accounting rule into code.  Filters route
every read/write through a model instance; experiment harnesses read the
accumulated :class:`AccessStats` to reproduce Figures 8, 10(b) and 11(b).

The model is deliberately *not* a cache simulator: the paper counts raw
word fetches against a structure assumed to live entirely in one memory
tier (SRAM for query-side arrays, DRAM for update-side counters), so we
count the same quantity and tag each model with its tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import require_positive
from repro.errors import ConfigurationError

__all__ = ["AccessStats", "MemoryModel"]

#: Word sizes the paper discusses; any positive multiple of 8 is accepted.
_COMMON_WORD_BITS = (32, 64)


@dataclass
class AccessStats:
    """Mutable tally of memory traffic, in word-fetch units.

    Attributes:
        read_words: total number of ``w``-bit word fetches performed by
            read operations.  This is the quantity plotted on the y-axis of
            the paper's "# memory accesses" figures.
        write_words: total number of word fetches performed by writes
            (a read-modify-write of one word counts as one write fetch,
            matching the paper's accounting for construction).
        read_ops: number of logical read operations (a multi-word windowed
            read counts once here but several times in ``read_words``).
        write_ops: number of logical write operations.
    """

    read_words: int = 0
    write_words: int = 0
    read_ops: int = 0
    write_ops: int = 0

    def reset(self) -> None:
        """Zero all counters in place."""
        self.read_words = 0
        self.write_words = 0
        self.read_ops = 0
        self.write_ops = 0

    def snapshot(self) -> "AccessStats":
        """Return an independent copy of the current tallies."""
        return AccessStats(
            read_words=self.read_words,
            write_words=self.write_words,
            read_ops=self.read_ops,
            write_ops=self.write_ops,
        )

    def diff(self, earlier: "AccessStats") -> "AccessStats":
        """Return the traffic accumulated since *earlier* was snapshotted."""
        return AccessStats(
            read_words=self.read_words - earlier.read_words,
            write_words=self.write_words - earlier.write_words,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
        )

    @property
    def total_words(self) -> int:
        """Total word fetches, reads plus writes."""
        return self.read_words + self.write_words


@dataclass
class MemoryModel:
    """Counts word-granular accesses under byte-aligned addressing.

    Args:
        word_bits: machine word size ``w`` in bits (64 by default, matching
            the paper's primary target; 32 is also supported).
        tier: free-form label for reporting, e.g. ``"sram"`` for the
            query-side bit array or ``"dram"`` for the update-side counter
            array (§3.3's tiered deployment).

    Example:
        >>> model = MemoryModel(word_bits=64)
        >>> model.read_cost(start_bit=7, nbits=57)   # bit 7 + 56 more bits
        1
        >>> model.read_cost(start_bit=7, nbits=58)   # one bit too wide
        2
    """

    word_bits: int = 64
    tier: str = "sram"
    stats: AccessStats = field(default_factory=AccessStats)

    def __post_init__(self) -> None:
        require_positive("word_bits", self.word_bits)
        if self.word_bits % 8 != 0:
            raise ConfigurationError(
                "word_bits must be a multiple of 8, got %d" % self.word_bits
            )

    # ------------------------------------------------------------------
    # Pure cost queries (no recording)
    # ------------------------------------------------------------------
    def read_cost(self, start_bit: int, nbits: int = 1) -> int:
        """Word fetches needed to read bits ``[start_bit, start_bit+nbits)``.

        The fetch must start at the byte containing *start_bit* (x86 allows
        byte-aligned, not bit-aligned, loads), so the billable span includes
        the ``start_bit % 8`` bits preceding it — exactly the ``j - 1``
        extra bits in the paper's derivation of ``o <= w - 7``.
        """
        if nbits <= 0:
            return 0
        span = (start_bit % 8) + nbits
        return -(-span // self.word_bits)  # ceil division

    def read_cost_batch(self, start_bits, nbits) -> np.ndarray:
        """Vectorised :meth:`read_cost` over arrays of spans.

        ``start_bits`` and ``nbits`` may be arrays or scalars and are
        broadcast together; the result is an int64 array of per-span word
        costs, elementwise equal to ``read_cost(start, n)``.  The batch
        kernels use this to bill *aggregate* traffic that matches the
        scalar path access for access.
        """
        start_bits = np.asarray(start_bits, dtype=np.int64)
        span = (start_bits % 8) + np.asarray(nbits, dtype=np.int64)
        return -(-span // self.word_bits)

    def max_single_read_offset(self) -> int:
        """Largest offset ``o`` such that bits ``i`` and ``i+o`` always share
        one word fetch.

        In the worst case the first bit is the 8th bit of its byte
        (``j = 8`` in the paper's derivation), so the fetch spends ``7``
        bits reaching it and can cover offsets up to ``w - 8`` beyond it:
        ``(j - 1) + (o + 1) <= w``.
        """
        return self.word_bits - 8

    def w_bar(self) -> int:
        """The paper's offset-range parameter ``w_bar = w - 7`` (§3.1).

        Offset values are drawn as ``h % (w_bar - 1) + 1``, i.e. from
        ``[1, w_bar - 1] = [1, w - 8]``, so the widest pair read spans
        ``w_bar`` bits starting at the probe position — exactly
        :meth:`max_single_read_offset` plus the probe bit itself.
        """
        return self.word_bits - 7

    # ------------------------------------------------------------------
    # Recording accessors
    # ------------------------------------------------------------------
    def record_read(self, start_bit: int, nbits: int = 1) -> int:
        """Record a read of the given bit span; return its word cost."""
        cost = self.read_cost(start_bit, nbits)
        self.stats.read_words += cost
        self.stats.read_ops += 1
        return cost

    def record_write(self, start_bit: int, nbits: int = 1) -> int:
        """Record a write touching the given bit span; return its cost."""
        cost = self.read_cost(start_bit, nbits)
        self.stats.write_words += cost
        self.stats.write_ops += 1
        return cost

    def record_reads(self, n_ops: int, words: int) -> None:
        """Record *n_ops* logical reads totalling *words* word fetches.

        The batch kernels pre-compute the per-access costs with
        :meth:`read_cost_batch` (honouring early exits) and bill them in
        one call, so a batch of ``n`` probes updates the counters exactly
        as ``n`` scalar :meth:`record_read` calls would — without ``n``
        rounds of Python attribute churn.
        """
        self.stats.read_words += words
        self.stats.read_ops += n_ops

    def record_writes(self, n_ops: int, words: int) -> None:
        """Record *n_ops* logical writes totalling *words* word fetches."""
        self.stats.write_words += words
        self.stats.write_ops += n_ops

    def reset(self) -> None:
        """Zero the accumulated statistics."""
        self.stats.reset()

    def snapshot(self) -> AccessStats:
        """Snapshot the current statistics (for per-query deltas)."""
        return self.stats.snapshot()
