"""Bit/counter array substrate with a word-granular memory cost model.

This subpackage provides the storage layer every filter in the library is
built on:

* :class:`~repro.bitarray.bitarray.BitArray` — a dense bit vector backed by
  a ``bytearray`` (LSB-first within each byte) with windowed (multi-bit)
  reads and NumPy-vectorised batch kernels that operate on a zero-copy
  ``uint8`` view of the same buffer,
* :class:`~repro.bitarray.counters.CounterArray` — packed fixed-width
  counters with selectable overflow policies and batched updates,
* :class:`~repro.bitarray.memory.MemoryModel` — the byte-aligned,
  word-granular access cost model from §3.1 of the paper, used to reproduce
  the "number of memory accesses" figures (Fig. 8, 10(b), 11(b)).
"""

from repro.bitarray.bitarray import BitArray
from repro.bitarray.counters import CounterArray, OverflowPolicy
from repro.bitarray.memory import AccessStats, MemoryModel

__all__ = [
    "AccessStats",
    "BitArray",
    "CounterArray",
    "MemoryModel",
    "OverflowPolicy",
]
