"""Exception hierarchy for the ShBF reproduction library.

Every error raised by this package derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing configuration mistakes from runtime capacity
problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A structure was configured with invalid parameters.

    Raised eagerly at construction time — for example a Bloom filter with
    ``m <= 0``, a shifting filter whose maximum offset exceeds what a single
    word read can cover, or a hash family asked for more independent
    functions than it can provide.
    """


class UnsupportedSnapshotError(ConfigurationError):
    """A structure was handed to :mod:`repro.persistence` that cannot
    round-trip through a snapshot.

    The main case is the counting variants (``CShBF_*``,
    ``CountingBloomFilter``): their DRAM-tier counter state belongs to
    the updater process, not to query-side snapshots, so serialising the
    bit array alone would silently produce a filter that can no longer
    honour deletions.  Snapshot the query-side bit filter instead, or
    rebuild from the catalog.
    """


class CapacityError(ReproError, RuntimeError):
    """A bounded structure ran out of room.

    Raised by structures with hard capacity limits, e.g. a cuckoo filter
    whose insertion displacement chain exceeded ``max_kicks`` or a packed
    counter configured to raise on overflow.
    """


class CounterOverflowError(CapacityError):
    """A packed counter exceeded its maximum representable value."""


class CounterUnderflowError(ReproError, RuntimeError):
    """A counter was decremented below zero.

    This signals deletion of an element that was never inserted (or was
    already deleted), which standard counting filters cannot support.
    """


class UnsupportedOperationError(ReproError, RuntimeError):
    """The operation is not supported by this variant of the structure.

    For example, deleting from a plain (non-counting) Bloom filter, or
    updating a minimum-increase Spectral Bloom filter, which the paper
    notes trades away update support for accuracy.
    """


class ProtocolError(ReproError, ValueError):
    """A service wire frame or payload could not be understood.

    Raised by :mod:`repro.service.protocol` on bad magic, truncated or
    oversized frames, unknown opcodes, and payloads whose declared
    lengths disagree with the bytes on the wire — a damaged request
    never reaches a filter, and a damaged response never yields a
    silently-wrong verdict.
    """


class ServiceOverloadedError(ReproError, RuntimeError):
    """The service shed a request because its in-flight bound was hit.

    The server admits at most ``max_inflight`` concurrent requests
    (queued coalescer work included); beyond that it fails fast rather
    than queueing unboundedly, so clients see explicit backpressure they
    can retry against instead of silently growing latency.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """An operation missed its deadline (op timeout or connect timeout).

    Subclasses the builtin :class:`TimeoutError` so generic transport
    handlers (``except OSError``) and asyncio-aware callers both catch
    it, while ``except ReproError`` still works.  Raised by the service
    clients when a response frame does not arrive within ``op_timeout``
    or a TCP connect does not complete within ``connect_timeout`` — the
    timed-out request's future is removed from the in-flight table, so
    a stalled server cannot leak client memory.
    """


class RetryBudgetExceededError(ReproError, RuntimeError):
    """A retry loop ran out of retry budget.

    Raised by :mod:`repro.retry` when the token-bucket budget that
    bounds retry amplification is empty: the caller has already retried
    as much as the budget allows, so failing fast beats adding load to
    an already-struggling service (retry storms).
    """


class ReplicationError(ReproError, RuntimeError):
    """The primary→standby replication pipeline hit an unrecoverable gap.

    Raised when a standby receives a delta it cannot apply safely — an
    epoch gap (deltas arrived out of sequence, so intermediate writes
    are missing), a shard-level delta against a non-sharded target, or a
    DELTA sent to a server that never subscribed.  The primary reacts by
    falling back to a full snapshot resync rather than leaving the
    standby silently divergent.
    """


class StandbyReadOnlyError(ReplicationError):
    """A write operation (ADD/RESTORE) was sent to a following standby.

    A standby's state is owned by its primary's replication stream;
    accepting independent writes would make its verdicts diverge from
    the primary's, defeating the bit-identical failover guarantee.
    Promote the standby (PROMOTE) before writing to it.
    """


class FailoverExhaustedError(ReplicationError):
    """Every configured endpoint failed the attempted operation.

    Raised by :class:`repro.replication.FailoverClient` when a read
    found no live endpoint, or a write found no endpoint in the primary
    role (all standbys refuse writes; promote one first).
    """


class ClusterError(ReproError, RuntimeError):
    """A multi-node cluster operation failed.

    Base class for the cluster layer (:mod:`repro.cluster`): shard-map
    versioning violations, misdirected requests and migration protocol
    errors all derive from here so callers can fence off "the fleet
    disagrees about ownership" from single-node serving failures.
    """


class WrongOwnerError(ClusterError):
    """A request touched a shard this node does not own.

    The cluster's correctness contract is *refuse, never misroute*: a
    node checks every ADD/ADD_IDEM/QUERY/QUERY_MULTI batch against its
    installed shard map and rejects batches containing elements it does
    not own — silently serving them would answer from an empty shard
    (wrong verdicts) or strand writes on a non-owner (lost writes).  A
    client seeing this error holds a stale shard map: it should refresh
    the map (SHARD_MAP), re-split the batch per the new ownership and
    retry.  The message carries the node's current map epoch.
    """


class StaleShardMapError(ClusterError):
    """A SHARD_MAP install carried an epoch at or below the current one.

    Shard-map epochs only move forward: accepting an older map would
    resurrect retired ownership and route writes to nodes that already
    shipped their shards away.  Installs of the *identical* current map
    are acknowledged idempotently; anything older is refused with this
    error so a lagging coordinator learns it lost the race.
    """


class WriterUnavailableError(ReproError, RuntimeError):
    """A read worker could not forward a write to the mpserve writer.

    Read workers own no mutable state: ADD/ADD_IDEM arriving on a
    worker connection are relayed to the single writer process.  When
    that relay fails (writer crashed and the supervisor is still
    restarting it), the worker answers with this error instead of
    faking an ack — the write was *not* applied.  Clients should retry
    with ADD_IDEM semantics; the restarted writer's idempotency window
    deduplicates any relay that did land before the crash.
    """


def remote_error(name: str, message: str) -> ReproError:
    """Materialise a server-reported error as a local exception.

    The service protocol ships errors as ``(type name, message)`` pairs.
    Known :class:`ReproError` subclasses defined in this module are
    re-raised as themselves so callers can ``except ConfigurationError``
    across the wire exactly as they would locally; anything else —
    including a malicious name like ``SystemExit`` — degrades to a
    :class:`ProtocolError` carrying the original text.

    Errors built here are stamped with ``remote = True`` so transport
    machinery can tell "the peer answered with an error" (it is alive
    and rejected the request deterministically) from "the transport
    died" — the failover client only retries the latter elsewhere.
    """
    cls = globals().get(name)
    if (isinstance(cls, type) and issubclass(cls, ReproError)
            and cls is not ReproError):
        error = cls(message)
    else:
        error = ProtocolError("server error %s: %s" % (name, message))
    error.remote = True
    return error
