"""The hash-family interface shared by every filter.

A *hash family* is an indexed collection ``h_0, h_1, h_2, ...`` of hash
functions over byte strings, each returning a uniformly distributed
non-negative integer of :attr:`HashFamily.output_bits` bits.  Filters ask
for the first ``k`` values of an element and reduce them modulo their
array size; shifting filters additionally use dedicated indices for the
offset hashes (e.g. ShBF_M uses ``h_{k/2+1}`` for its offset, §3.1).

Keeping the family abstract lets the ablation benches swap BLAKE2,
murmur3, FNV-1a, xxhash and Kirsch–Mitzenmacher double hashing under
identical filter code — mirroring the paper's methodology of vetting many
candidate hash functions and using the ones that pass a randomness test.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro._util import ElementLike, require_non_negative, to_bytes

__all__ = ["HashFamily", "default_family"]


class HashFamily(abc.ABC):
    """An indexed family of uniform hash functions over bytes.

    Subclasses implement :meth:`hash_bytes`; the public entry points
    canonicalise arbitrary elements (str/int/bytes) first so equal logical
    elements always collide.
    """

    #: Number of uniformly distributed output bits; positions are derived
    #: by reduction modulo the array size, so this should comfortably
    #: exceed ``log2(m)`` (all built-in families emit 64 bits except
    #: murmur3-32, which emits 32 and documents the reduced range).
    output_bits: int = 64

    @property
    def output_range(self) -> int:
        """Exclusive upper bound of hash values (``2**output_bits``)."""
        return 1 << self.output_bits

    @abc.abstractmethod
    def hash_bytes(self, index: int, data: bytes) -> int:
        """Return the *index*-th hash of *data* as a non-negative int."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in reports and benchmark labels."""

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def hash(self, index: int, element: ElementLike) -> int:
        """Return the *index*-th hash of an arbitrary element."""
        require_non_negative("index", index)
        return self.hash_bytes(index, to_bytes(element))

    def values(
        self, element: ElementLike, count: int, start: int = 0
    ) -> List[int]:
        """Return hashes ``start .. start+count-1`` of *element*.

        Subclasses with batch-friendly internals (e.g. the BLAKE2 lane
        family) override this to amortise digest computations.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        data = to_bytes(element)
        return [self.hash_bytes(start + i, data) for i in range(count)]

    def iter_values(self, element: ElementLike, count: int, start: int = 0):
        """Yield hashes ``start .. start+count-1`` lazily.

        Query paths use this so an early exit (first zero bit) also stops
        *hash computation* — the paper's query procedures compute and
        probe one hash at a time (§3.2), and the speed experiments depend
        on that cost structure.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        data = to_bytes(element)
        for i in range(count):
            yield self.hash_bytes(start + i, data)

    def positions(
        self, element: ElementLike, count: int, m: int, start: int = 0
    ) -> List[int]:
        """Return ``count`` probe positions in ``[0, m)`` for *element*."""
        return [v % m for v in self.values(element, count, start=start)]

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------
    def values_batch(
        self, elements: Sequence[ElementLike], count: int, start: int = 0
    ) -> np.ndarray:
        """Hashes ``start .. start+count-1`` of every element at once.

        Returns a ``uint64`` array of shape ``(len(elements), count)``
        whose row ``i`` equals ``values(elements[i], count, start)`` bit
        for bit.  The base implementation simply loops over
        :meth:`values`, so every family gets a correct batch path for
        free; families with digest-amortising internals (BLAKE2 lanes,
        Kirsch–Mitzenmacher) override this to cut per-element overhead.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        elements = list(elements)
        out = np.empty((len(elements), count), dtype=np.uint64)
        for row, element in enumerate(elements):
            out[row] = np.fromiter(
                self.values(element, count, start=start),
                dtype=np.uint64, count=count,
            )
        return out

    def positions_batch(
        self, elements: Sequence[ElementLike], count: int, m: int,
        start: int = 0,
    ) -> np.ndarray:
        """Probe positions in ``[0, m)`` for every element at once.

        ``int64`` array of shape ``(len(elements), count)``; row ``i``
        equals ``positions(elements[i], count, m, start)``.
        """
        require_non_negative("count", count)
        return (self.values_batch(elements, count, start=start) % m).astype(
            np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(name=%r)" % (type(self).__name__, self.name)


def default_family(seed: int = 0) -> HashFamily:
    """Return the library's default hash family (seeded BLAKE2b lanes).

    BLAKE2b is the default because (a) :mod:`hashlib` executes it in C, so
    it is the fastest *trustworthy* option available without compiled
    extensions, and (b) its output passes the paper's per-bit randomness
    test by a wide margin for every index, so experiments measure filter
    behaviour rather than hash artefacts.
    """
    from repro.hashing.blake import Blake2Family

    return Blake2Family(seed=seed)
