"""The hash-family interface shared by every filter.

A *hash family* is an indexed collection ``h_0, h_1, h_2, ...`` of hash
functions over byte strings, each returning a uniformly distributed
non-negative integer of :attr:`HashFamily.output_bits` bits.  Filters ask
for the first ``k`` values of an element and reduce them modulo their
array size; shifting filters additionally use dedicated indices for the
offset hashes (e.g. ShBF_M uses ``h_{k/2+1}`` for its offset, §3.1).

Keeping the family abstract lets the ablation benches swap BLAKE2,
murmur3, FNV-1a, xxhash and Kirsch–Mitzenmacher double hashing under
identical filter code — mirroring the paper's methodology of vetting many
candidate hash functions and using the ones that pass a randomness test.
"""

from __future__ import annotations

import abc
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import ElementLike, require_non_negative, to_bytes
from repro.errors import ConfigurationError

__all__ = [
    "FAMILY_KINDS",
    "HashFamily",
    "default_family",
    "family_spec",
    "make_family",
]


class HashFamily(abc.ABC):
    """An indexed family of uniform hash functions over bytes.

    Subclasses implement :meth:`hash_bytes`; the public entry points
    canonicalise arbitrary elements (str/int/bytes) first so equal logical
    elements always collide.
    """

    #: Number of uniformly distributed output bits; positions are derived
    #: by reduction modulo the array size, so this should comfortably
    #: exceed ``log2(m)`` (all built-in families emit 64 bits except
    #: murmur3-32, which emits 32 and documents the reduced range).
    output_bits: int = 64

    @property
    def output_range(self) -> int:
        """Exclusive upper bound of hash values (``2**output_bits``)."""
        return 1 << self.output_bits

    @abc.abstractmethod
    def hash_bytes(self, index: int, data: bytes) -> int:
        """Return the *index*-th hash of *data* as a non-negative int."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short identifier used in reports and benchmark labels."""

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def hash(self, index: int, element: ElementLike) -> int:
        """Return the *index*-th hash of an arbitrary element."""
        require_non_negative("index", index)
        return self.hash_bytes(index, to_bytes(element))

    def values(
        self, element: ElementLike, count: int, start: int = 0
    ) -> List[int]:
        """Return hashes ``start .. start+count-1`` of *element*.

        Subclasses with batch-friendly internals (e.g. the BLAKE2 lane
        family) override this to amortise digest computations.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        data = to_bytes(element)
        return [self.hash_bytes(start + i, data) for i in range(count)]

    def iter_values(self, element: ElementLike, count: int, start: int = 0):
        """Yield hashes ``start .. start+count-1`` lazily.

        Query paths use this so an early exit (first zero bit) also stops
        *hash computation* — the paper's query procedures compute and
        probe one hash at a time (§3.2), and the speed experiments depend
        on that cost structure.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        data = to_bytes(element)
        for i in range(count):
            yield self.hash_bytes(start + i, data)

    def positions(
        self, element: ElementLike, count: int, m: int, start: int = 0
    ) -> List[int]:
        """Return ``count`` probe positions in ``[0, m)`` for *element*."""
        return [v % m for v in self.values(element, count, start=start)]

    # ------------------------------------------------------------------
    # Batch entry points
    # ------------------------------------------------------------------
    def values_batch(
        self, elements: Sequence[ElementLike], count: int, start: int = 0
    ) -> np.ndarray:
        """Hashes ``start .. start+count-1`` of every element at once.

        Returns a ``uint64`` array of shape ``(len(elements), count)``
        whose row ``i`` equals ``values(elements[i], count, start)`` bit
        for bit.  The base implementation simply loops over
        :meth:`values`, so every family gets a correct batch path for
        free; families with digest-amortising internals (BLAKE2 lanes,
        Kirsch–Mitzenmacher) override this to cut per-element overhead.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        elements = list(elements)
        out = np.empty((len(elements), count), dtype=np.uint64)
        for row, element in enumerate(elements):
            out[row] = np.fromiter(
                self.values(element, count, start=start),
                dtype=np.uint64, count=count,
            )
        return out

    def positions_batch(
        self, elements: Sequence[ElementLike], count: int, m: int,
        start: int = 0,
    ) -> np.ndarray:
        """Probe positions in ``[0, m)`` for every element at once.

        ``int64`` array of shape ``(len(elements), count)``; row ``i``
        equals ``positions(elements[i], count, m, start)``.
        """
        require_non_negative("count", count)
        return (self.values_batch(elements, count, start=start) % m).astype(
            np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(name=%r)" % (type(self).__name__, self.name)


# ----------------------------------------------------------------------
# The family registry: every seed-reconstructible family has a *kind*
# ----------------------------------------------------------------------
#: Registered family kinds, in registry order.  A ``(kind, seed)`` pair
#: fully reconstructs a family, which is what snapshots persist and
#: what ``--family`` CLI flags select.
FAMILY_KINDS = (
    "blake2b",
    "blake2b-per-index",
    "vector64",
    "km-double",
    "murmur3-32",
    "fnv1a-64",
    "xxh64",
)


def _builders():
    """kind -> constructor(seed); imported lazily to avoid cycles."""
    from repro.hashing.blake import Blake2Family
    from repro.hashing.double_hashing import DoubleHashingFamily
    from repro.hashing.mixers import (
        FNV1aFamily,
        Murmur3Family,
        XXHash64Family,
    )
    from repro.hashing.vectorized import VectorizedFamily

    return {
        "blake2b": lambda seed: Blake2Family(seed=seed),
        "blake2b-per-index": lambda seed: Blake2Family(
            seed=seed, batch_lanes=False),
        "vector64": lambda seed: VectorizedFamily(seed=seed),
        "km-double": lambda seed: DoubleHashingFamily(seed=seed),
        "murmur3-32": lambda seed: Murmur3Family(seed=seed),
        "fnv1a-64": lambda seed: FNV1aFamily(seed=seed),
        "xxh64": lambda seed: XXHash64Family(seed=seed),
    }


def make_family(kind: str, seed: int = 0) -> HashFamily:
    """Construct a registered family from its ``(kind, seed)`` spec.

    This is the single choke point for family selection: snapshots,
    the shard router, the service CLI and the benches all resolve their
    family through it, so a deployment can swap the whole stack onto a
    different (vetted) family with one knob.

    Raises:
        ConfigurationError: for an unregistered *kind* — restoring a
            snapshot with the wrong family would silently mis-hash
            every query, so unknown kinds fail loudly.
    """
    builders = _builders()
    try:
        builder = builders[kind]
    except KeyError:
        raise ConfigurationError(
            "unknown hash family kind %r (registered kinds: %s)"
            % (kind, ", ".join(FAMILY_KINDS))
        ) from None
    return builder(seed)


def family_spec(family: HashFamily) -> Tuple[str, int]:
    """Return the ``(kind, seed)`` spec that reconstructs *family*.

    The inverse of :func:`make_family` for registry-built instances:
    ``make_family(*family_spec(f))`` hashes identically to ``f``.

    Raises:
        ConfigurationError: if *family* is not seed-reconstructible
            (an unregistered type, or a composite like
            ``DoubleHashingFamily`` over a custom base family).
    """
    from repro.hashing.blake import Blake2Family
    from repro.hashing.double_hashing import DoubleHashingFamily
    from repro.hashing.mixers import (
        FNV1aFamily,
        Murmur3Family,
        XXHash64Family,
    )
    from repro.hashing.vectorized import VectorizedFamily

    if type(family) is VectorizedFamily:
        return "vector64", family.seed
    if type(family) is DoubleHashingFamily:
        base = family.base
        if type(base) is Blake2Family and base.batch_lanes:
            return "km-double", base.seed
        raise ConfigurationError(
            "DoubleHashingFamily over base %s is not seed-"
            "reconstructible; only the default BLAKE2b-lane base is"
            % getattr(base, "name", type(base).__name__)
        )
    if type(family) is Blake2Family:
        kind = "blake2b" if family.batch_lanes else "blake2b-per-index"
        return kind, family.seed
    if type(family) is Murmur3Family:
        return "murmur3-32", family.seed
    if type(family) is FNV1aFamily:
        return "fnv1a-64", family.seed
    if type(family) is XXHash64Family:
        return "xxh64", family.seed
    raise ConfigurationError(
        "hash family %s is not in the registry and cannot be "
        "reconstructed from a seed"
        % getattr(family, "name", type(family).__name__)
    )


def default_family(seed: int = 0, kind: Optional[str] = None) -> HashFamily:
    """Return the library's default hash family.

    The default *kind* is seeded BLAKE2b lanes because (a) :mod:`hashlib`
    executes it in C, so it is the fastest *trustworthy* option available
    without compiled extensions, and (b) its output passes the paper's
    per-bit randomness test by a wide margin for every index, so
    experiments measure filter behaviour rather than hash artefacts.
    Deployments that have re-run the vetting harness can flip the whole
    stack onto another registered family (e.g. the vectorised
    ``"vector64"`` mixers) via the *kind* argument or the
    ``REPRO_HASH_FAMILY`` environment variable.
    """
    if kind is None:
        kind = os.environ.get("REPRO_HASH_FAMILY", "blake2b")
    return make_family(kind, seed)
