"""Hash families with uniformly distributed outputs.

Every structure in the paper assumes ``k`` independent hash functions with
uniformly distributed outputs (§1.1).  This subpackage provides:

* :class:`~repro.hashing.family.HashFamily` — the common interface: an
  indexed family of 64-bit hash functions over ``bytes``, with scalar
  and whole-batch (``values_batch``/``positions_batch``) entry points
  that are bit-identical by contract,
* :class:`~repro.hashing.blake.Blake2Family` — the default family, built
  from seeded BLAKE2b digests split into 64-bit lanes (cryptographic
  mixing, C-speed via :mod:`hashlib`),
* :class:`~repro.hashing.vectorized.VectorizedFamily` — the batch-path
  speed option: splitmix64-style avalanche mixers whose batch entry
  points run entirely inside NumPy ``uint64`` kernels,
* :class:`~repro.hashing.mixers.Murmur3Family`,
  :class:`~repro.hashing.mixers.FNV1aFamily` and
  :class:`~repro.hashing.mixers.XXHash64Family` — reference ports of the
  classic non-cryptographic hashes the paper's authors drew from [1]
  (scalar implementations, kept as vetting baselines and test vectors),
* :class:`~repro.hashing.double_hashing.DoubleHashingFamily` — the
  Kirsch–Mitzenmacher ``h1 + i*h2`` construction (related work §2.1),
* :func:`~repro.hashing.family.make_family` /
  :func:`~repro.hashing.family.family_spec` — the family registry:
  every seed-reconstructible family has a ``(kind, seed)`` spec that
  snapshots persist and CLIs select by name,
* :mod:`~repro.hashing.randomness` — the statistical vetting harness
  grown from the authors' per-bit balance test (§6.1): balance,
  chi-square position uniformity, pairwise independence and avalanche,
  which every non-cryptographic family must pass before carrying the
  hot path.
"""

from repro.hashing.blake import Blake2Family
from repro.hashing.double_hashing import DoubleHashingFamily
from repro.hashing.family import (
    FAMILY_KINDS,
    HashFamily,
    default_family,
    family_spec,
    make_family,
)
from repro.hashing.mixers import (
    FNV1aFamily,
    Murmur3Family,
    XXHash64Family,
    fnv1a_64,
    murmur3_32,
    splitmix64,
    xxh64,
)
from repro.hashing.randomness import (
    AvalancheReport,
    BitBalanceReport,
    FamilyVettingReport,
    IndependenceReport,
    UniformityReport,
    avalanche_report,
    bit_balance_report,
    independence_report,
    position_uniformity_report,
    vet_family,
)
from repro.hashing.vectorized import VectorizedFamily

__all__ = [
    "AvalancheReport",
    "BitBalanceReport",
    "Blake2Family",
    "DoubleHashingFamily",
    "FAMILY_KINDS",
    "FNV1aFamily",
    "FamilyVettingReport",
    "HashFamily",
    "IndependenceReport",
    "Murmur3Family",
    "UniformityReport",
    "VectorizedFamily",
    "XXHash64Family",
    "avalanche_report",
    "bit_balance_report",
    "default_family",
    "family_spec",
    "fnv1a_64",
    "independence_report",
    "make_family",
    "murmur3_32",
    "position_uniformity_report",
    "splitmix64",
    "vet_family",
    "xxh64",
]
