"""Hash families with uniformly distributed outputs.

Every structure in the paper assumes ``k`` independent hash functions with
uniformly distributed outputs (§1.1).  This subpackage provides:

* :class:`~repro.hashing.family.HashFamily` — the common interface: an
  indexed family of 64-bit hash functions over ``bytes``,
* :class:`~repro.hashing.blake.Blake2Family` — the default family, built
  from seeded BLAKE2b digests split into 64-bit lanes (cryptographic
  mixing, C-speed via :mod:`hashlib`),
* :class:`~repro.hashing.mixers.Murmur3Family`,
  :class:`~repro.hashing.mixers.FNV1aFamily` and
  :class:`~repro.hashing.mixers.XXHash64Family` — pure-Python ports of the
  classic non-cryptographic hashes the paper's authors drew from [1],
* :class:`~repro.hashing.double_hashing.DoubleHashingFamily` — the
  Kirsch–Mitzenmacher ``h1 + i*h2`` construction (related work §2.1),
* :mod:`~repro.hashing.randomness` — the per-bit balance test the authors
  used to vet their 18 hash functions (§6.1).
"""

from repro.hashing.blake import Blake2Family
from repro.hashing.double_hashing import DoubleHashingFamily
from repro.hashing.family import HashFamily, default_family
from repro.hashing.mixers import (
    FNV1aFamily,
    Murmur3Family,
    XXHash64Family,
    fnv1a_64,
    murmur3_32,
    splitmix64,
    xxh64,
)
from repro.hashing.randomness import (
    BitBalanceReport,
    bit_balance_report,
    vet_family,
)

__all__ = [
    "BitBalanceReport",
    "Blake2Family",
    "DoubleHashingFamily",
    "FNV1aFamily",
    "HashFamily",
    "Murmur3Family",
    "XXHash64Family",
    "bit_balance_report",
    "default_family",
    "fnv1a_64",
    "murmur3_32",
    "splitmix64",
    "vet_family",
    "xxh64",
]
