"""NumPy-native vectorised hash family for the batch hot path.

The batch pipeline removed the per-element Python overhead from every
filter, leaving ~90 % of batch wall-clock inside BLAKE2b digests (see
the README throughput table).  :class:`VectorizedFamily` removes that
last constant factor: it is a splitmix64/xxhash-style avalanche mixer
family whose ``values_batch``/``positions_batch`` run the *whole batch*
through ``uint64`` NumPy kernels — zero per-element Python on the short
-key fast path — while the scalar entry points execute the identical
arithmetic on Python ints, so scalar and batch values are bit-identical
by construction.

Pipeline per element (both paths):

1. **ingest** — canonical bytes fold into one 64-bit base value.  Short
   keys (≤ 32 bytes, which covers 5-tuple flow IDs, ``host:port``
   strings and integer keys) are zero-padded to four little-endian
   ``uint64`` words and folded with one finaliser round per word, with
   the byte length folded into the initial state so ``b"a"`` and
   ``b"a\\x00"`` decorrelate.  Longer keys fall back to one seeded
   BLAKE2b-64 digest (rare on filter workloads, and still only *one*
   digest instead of one per lane group).
2. **lane derivation** — member ``i`` of the family mixes the base with
   a per-index seed drawn from a splitmix64 stream over the family
   seed: ``h_i(x) = mix64(base(x) + lane(i))``.  Distinct seeds give
   decorrelated families, matching the :class:`Blake2Family` contract.

``mix64`` is the splitmix64 finaliser (Stafford's mix13 constants) — a
well-studied full-avalanche bijection.  The family is *not*
cryptographic; its fitness for the paper's experiments is established
empirically by the §6.1 vetting harness
(:mod:`repro.hashing.randomness`), which gates it with per-bit balance,
chi-square position uniformity, pairwise independence and avalanche
tests (``tests/hashing/test_vetting.py``).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from repro._util import ElementLike, require_non_negative, to_bytes
from repro.hashing.family import HashFamily

__all__ = ["VectorizedFamily"]

_M64 = 0xFFFFFFFFFFFFFFFF
#: Keys longer than this fold through one seeded BLAKE2b-64 digest.
_SHORT_MAX = 32
_WORDS = _SHORT_MAX // 8

_GOLDEN = 0x9E3779B97F4A7C15
_LEN_MULT = 0xFF51AFD7ED558CCD  # murmur3 fmix64 constant, odd
_MIX_1 = 0xBF58476D1CE4E5B9
_MIX_2 = 0x94D049BB133111EB

_NP_GOLDEN = np.uint64(_GOLDEN)
_NP_LEN_MULT = np.uint64(_LEN_MULT)
_NP_MIX_1 = np.uint64(_MIX_1)
_NP_MIX_2 = np.uint64(_MIX_2)
_NP_30 = np.uint64(30)
_NP_27 = np.uint64(27)
_NP_31 = np.uint64(31)


def _mix64(z: int) -> int:
    """The splitmix64 finaliser on a Python int (64-bit wraparound)."""
    z &= _M64
    z = ((z ^ (z >> 30)) * _MIX_1) & _M64
    z = ((z ^ (z >> 27)) * _MIX_2) & _M64
    return z ^ (z >> 31)


def _mix64_np(z: np.ndarray) -> np.ndarray:
    """The same finaliser on a ``uint64`` ndarray (wraps like the ints)."""
    z = z ^ (z >> _NP_30)
    z = z * _NP_MIX_1
    z ^= z >> _NP_27
    z *= _NP_MIX_2
    z ^= z >> _NP_31
    return z


class VectorizedFamily(HashFamily):
    """Indexed 64-bit hashes from vectorised avalanche mixers.

    Drop-in for :class:`~repro.hashing.blake.Blake2Family` anywhere the
    :class:`~repro.hashing.family.HashFamily` interface is accepted —
    filters, the sharded store, snapshots (kind ``"vector64"`` in the
    family registry) — trading cryptographic mixing for a batch path
    that runs entirely inside NumPy kernels.

    Args:
        seed: family seed; families with different seeds are
            decorrelated through a splitmix64-scrambled lane stream.
    """

    output_bits = 64

    def __init__(self, seed: int = 0):
        require_non_negative("seed", seed)
        self._seed = seed
        # splitmix64(seed): every derived quantity hangs off this.
        self._seed_mixed = _mix64((seed + _GOLDEN) & _M64)
        self._long_key = seed.to_bytes(8, "little") + b"vector64-long"

    @property
    def seed(self) -> int:
        """The family seed."""
        return self._seed

    @property
    def name(self) -> str:
        return "vector64[seed=%d]" % self._seed

    # ------------------------------------------------------------------
    # Scalar path (Python ints, bit-identical to the NumPy kernels)
    # ------------------------------------------------------------------
    def _lane(self, index: int) -> int:
        """Per-index lane seed: a splitmix64 stream over the family seed."""
        return _mix64((self._seed_mixed + (index + 1) * _GOLDEN) & _M64)

    def _ingest(self, data: bytes) -> int:
        """Fold canonical bytes into the element's 64-bit base value."""
        length = len(data)
        if length > _SHORT_MAX:
            digest = hashlib.blake2b(
                data, digest_size=8, key=self._long_key).digest()
            return int.from_bytes(digest, "little")
        h = (self._seed_mixed + length * _LEN_MULT) & _M64
        padded = data.ljust(_SHORT_MAX, b"\x00")
        for j in range(_WORDS):
            word = int.from_bytes(padded[8 * j : 8 * j + 8], "little")
            h = _mix64(h ^ word)
        return h

    def hash_bytes(self, index: int, data: bytes) -> int:
        return _mix64((self._ingest(data) + self._lane(index)) & _M64)

    def values(
        self, element: ElementLike, count: int, start: int = 0
    ) -> List[int]:
        """Scalar batch: the ingest fold is paid once, one mix per lane."""
        require_non_negative("count", count)
        require_non_negative("start", start)
        if count == 0:
            return []
        base = self._ingest(to_bytes(element))
        return [
            _mix64((base + self._lane(start + i)) & _M64)
            for i in range(count)
        ]

    def iter_values(self, element: ElementLike, count: int, start: int = 0):
        """Lazy hashes; the ingest fold is paid on the first value."""
        require_non_negative("count", count)
        require_non_negative("start", start)
        if count == 0:
            return
        base = self._ingest(to_bytes(element))
        for i in range(count):
            yield _mix64((base + self._lane(start + i)) & _M64)

    # ------------------------------------------------------------------
    # Batch path (whole-batch NumPy kernels)
    # ------------------------------------------------------------------
    def _lane_array(self, start: int, count: int) -> np.ndarray:
        indices = np.arange(start + 1, start + count + 1, dtype=np.uint64)
        return _mix64_np(np.uint64(self._seed_mixed) + indices * _NP_GOLDEN)

    def _ingest_batch(self, elements: Sequence[ElementLike]) -> np.ndarray:
        """Vectorised ingest: one ``uint64`` base value per element.

        All-bytes batches (the serving path after
        :func:`repro._util.to_bytes` canonicalisation on the wire) are
        joined into one buffer and scattered into a zero-padded
        ``(n, 32)`` byte matrix with pure NumPy indexing — no
        per-element Python.  Long keys (> 32 bytes) take the seeded
        BLAKE2b fallback individually, exactly like the scalar path.
        """
        n = len(elements)
        try:
            # Fast path: all elements already bytes-like — one C-level
            # join, no per-element Python.  The length cross-check
            # catches bytes-likes whose len() is not their byte count
            # (e.g. a cast memoryview), which must take the canonical
            # slow path to match the scalar entry points.
            blob = b"".join(elements)
            lengths = np.fromiter(map(len, elements), dtype=np.int64,
                                  count=n)
            if len(blob) != int(lengths.sum()):
                raise TypeError
            datas = elements
        except TypeError:
            datas = [to_bytes(e) for e in elements]
            blob = b"".join(datas)
            lengths = np.fromiter(map(len, datas), dtype=np.int64,
                                  count=n)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        short = lengths <= _SHORT_MAX

        # Short keys: scatter into a (n, 32) zero-padded byte matrix,
        # view as little-endian words, fold — all array ops.
        short_lengths = np.where(short, lengths, 0)
        buf = np.zeros((n, _SHORT_MAX), dtype=np.uint8)
        total_short = int(short_lengths.sum())
        if total_short:
            flat = np.frombuffer(blob, dtype=np.uint8)
            width = int(lengths[0])
            if short_lengths[0] and (lengths == width).all():
                # Uniform-width keys (flow IDs, fixed-format records):
                # the join is already a dense (n, width) matrix.
                buf[:, :width] = flat.reshape(n, width)
            else:
                row = np.repeat(np.arange(n), short_lengths)
                cum = np.cumsum(short_lengths) - short_lengths
                col = np.arange(total_short) - np.repeat(cum, short_lengths)
                buf[row, col] = flat[np.repeat(starts, short_lengths) + col]
        words = buf.view("<u8")
        base = np.uint64(self._seed_mixed) \
            + lengths.astype(np.uint64) * _NP_LEN_MULT
        for j in range(_WORDS):
            base = _mix64_np(base ^ words[:, j])

        # Long keys: one seeded digest each (rare on filter workloads).
        for i in np.nonzero(~short)[0]:
            digest = hashlib.blake2b(
                datas[i], digest_size=8, key=self._long_key).digest()
            base[i] = int.from_bytes(digest, "little")
        return base

    def values_batch(
        self, elements: Sequence[ElementLike], count: int, start: int = 0
    ) -> np.ndarray:
        """Whole-batch hashing as one ``(n, count)`` NumPy kernel.

        Values are bit-identical to :meth:`values` row for row; the
        only per-element Python on the fast path is the type check and
        the C-level ``bytes.join``.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        elements = list(elements)
        n = len(elements)
        if count == 0 or n == 0:
            return np.empty((n, count), dtype=np.uint64)
        base = self._ingest_batch(elements)
        lanes = self._lane_array(start, count)
        return _mix64_np(base[:, None] + lanes[None, :])
