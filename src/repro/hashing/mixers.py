"""Pure-Python ports of classic non-cryptographic hash functions.

The paper's authors collected candidate hash functions from Bob Jenkins'
evaluation page [1] and kept the 18 that passed a per-bit randomness test
(§6.1).  This module ports the best-known members of that lineage —
murmur3 (x86, 32-bit), FNV-1a (64-bit) and xxHash64 — plus the splitmix64
finaliser used throughout the library for integer seed scrambling.  Each
comes with a :class:`~repro.hashing.family.HashFamily` wrapper so the
ablation benches can swap them under identical filter code.

All reference test vectors in ``tests/hashing/test_mixers.py`` were checked
against the canonical C implementations.

[1] http://burtleburtle.net/bob/hash/evahash.html
"""

from __future__ import annotations

from repro._util import require_non_negative
from repro.hashing.family import HashFamily

__all__ = [
    "FNV1aFamily",
    "Murmur3Family",
    "XXHash64Family",
    "fnv1a_64",
    "murmur3_32",
    "splitmix64",
    "xxh64",
]

_M32 = 0xFFFFFFFF
_M64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """One step of the splitmix64 generator/finaliser.

    A fast, well-studied 64-bit bijective mixer; used here to derive
    per-index seeds so family members decorrelate.
    """
    x = (x + 0x9E3779B97F4A7C15) & _M64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


# ----------------------------------------------------------------------
# murmur3 x86 32-bit
# ----------------------------------------------------------------------
def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _M32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _M32
    h ^= h >> 16
    return h


def murmur3_32(data: bytes, seed: int = 0) -> int:
    """MurmurHash3 (x86 variant, 32-bit output) of *data* under *seed*."""
    c1 = 0xCC9E2D51
    c2 = 0x1B873593
    h = seed & _M32
    length = len(data)
    rounded = length & ~3
    for i in range(0, rounded, 4):
        k = int.from_bytes(data[i : i + 4], "little")
        k = (k * c1) & _M32
        k = ((k << 15) | (k >> 17)) & _M32
        k = (k * c2) & _M32
        h ^= k
        h = ((h << 13) | (h >> 19)) & _M32
        h = (h * 5 + 0xE6546B64) & _M32
    k = 0
    tail = length & 3
    if tail >= 3:
        k ^= data[rounded + 2] << 16
    if tail >= 2:
        k ^= data[rounded + 1] << 8
    if tail >= 1:
        k ^= data[rounded]
        k = (k * c1) & _M32
        k = ((k << 15) | (k >> 17)) & _M32
        k = (k * c2) & _M32
        h ^= k
    h ^= length
    return _fmix32(h)


# ----------------------------------------------------------------------
# FNV-1a 64-bit
# ----------------------------------------------------------------------
_FNV_OFFSET_BASIS = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """FNV-1a (64-bit) of *data*, with the basis perturbed by *seed*.

    Seeding FNV is non-standard; we fold a splitmix64-scrambled seed into
    the offset basis, which preserves the avalanche of the byte loop while
    decorrelating family members.
    """
    h = _FNV_OFFSET_BASIS
    if seed:
        h ^= splitmix64(seed)
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _M64
    return h


# ----------------------------------------------------------------------
# xxHash64
# ----------------------------------------------------------------------
_XXP1 = 0x9E3779B185EBCA87
_XXP2 = 0xC2B2AE3D27D4EB4F
_XXP3 = 0x165667B19E3779F9
_XXP4 = 0x85EBCA77C2B2AE63
_XXP5 = 0x27D4EB2F165667C5


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _M64


def _xx_round(acc: int, lane: int) -> int:
    acc = (acc + lane * _XXP2) & _M64
    acc = _rotl64(acc, 31)
    return (acc * _XXP1) & _M64


def _xx_merge_round(acc: int, val: int) -> int:
    acc ^= _xx_round(0, val)
    return (acc * _XXP1 + _XXP4) & _M64


def xxh64(data: bytes, seed: int = 0) -> int:
    """xxHash64 of *data* under *seed* (bit-exact port of the reference)."""
    seed &= _M64
    length = len(data)
    pos = 0
    if length >= 32:
        v1 = (seed + _XXP1 + _XXP2) & _M64
        v2 = (seed + _XXP2) & _M64
        v3 = seed
        v4 = (seed - _XXP1) & _M64
        limit = length - 32
        while pos <= limit:
            v1 = _xx_round(v1, int.from_bytes(data[pos : pos + 8], "little"))
            v2 = _xx_round(
                v2, int.from_bytes(data[pos + 8 : pos + 16], "little"))
            v3 = _xx_round(
                v3, int.from_bytes(data[pos + 16 : pos + 24], "little"))
            v4 = _xx_round(
                v4, int.from_bytes(data[pos + 24 : pos + 32], "little"))
            pos += 32
        h = (
            _rotl64(v1, 1) + _rotl64(v2, 7) + _rotl64(v3, 12)
            + _rotl64(v4, 18)
        ) & _M64
        h = _xx_merge_round(h, v1)
        h = _xx_merge_round(h, v2)
        h = _xx_merge_round(h, v3)
        h = _xx_merge_round(h, v4)
    else:
        h = (seed + _XXP5) & _M64
    h = (h + length) & _M64
    while pos + 8 <= length:
        lane = int.from_bytes(data[pos : pos + 8], "little")
        h ^= _xx_round(0, lane)
        h = (_rotl64(h, 27) * _XXP1 + _XXP4) & _M64
        pos += 8
    if pos + 4 <= length:
        lane = int.from_bytes(data[pos : pos + 4], "little")
        h ^= (lane * _XXP1) & _M64
        h = (_rotl64(h, 23) * _XXP2 + _XXP3) & _M64
        pos += 4
    while pos < length:
        h ^= (data[pos] * _XXP5) & _M64
        h = (_rotl64(h, 11) * _XXP1) & _M64
        pos += 1
    h ^= h >> 33
    h = (h * _XXP2) & _M64
    h ^= h >> 29
    h = (h * _XXP3) & _M64
    h ^= h >> 32
    return h


# ----------------------------------------------------------------------
# Family wrappers
# ----------------------------------------------------------------------
class Murmur3Family(HashFamily):
    """Indexed murmur3 (x86, 32-bit) hashes; seed per index.

    Emits only 32 bits, which is ample for the paper's array sizes
    (``m`` up to a few hundred thousand bits) but callers sizing arrays
    beyond a few hundred million bits should prefer a 64-bit family.
    """

    output_bits = 32

    def __init__(self, seed: int = 0):
        require_non_negative("seed", seed)
        self._seed = seed

    @property
    def seed(self) -> int:
        """The family seed."""
        return self._seed

    @property
    def name(self) -> str:
        return "murmur3-32[seed=%d]" % self._seed

    def hash_bytes(self, index: int, data: bytes) -> int:
        return murmur3_32(data, seed=splitmix64(self._seed * 31 + index)
                          & 0xFFFFFFFF)


class FNV1aFamily(HashFamily):
    """Indexed FNV-1a (64-bit) hashes; basis perturbed per index."""

    output_bits = 64

    def __init__(self, seed: int = 0):
        require_non_negative("seed", seed)
        self._seed = seed

    @property
    def seed(self) -> int:
        """The family seed."""
        return self._seed

    @property
    def name(self) -> str:
        return "fnv1a-64[seed=%d]" % self._seed

    def hash_bytes(self, index: int, data: bytes) -> int:
        return fnv1a_64(data, seed=self._seed * 1000003 + index + 1)


class XXHash64Family(HashFamily):
    """Indexed xxHash64 hashes; seed per index."""

    output_bits = 64

    def __init__(self, seed: int = 0):
        require_non_negative("seed", seed)
        self._seed = seed

    @property
    def seed(self) -> int:
        """The family seed."""
        return self._seed

    @property
    def name(self) -> str:
        return "xxh64[seed=%d]" % self._seed

    def hash_bytes(self, index: int, data: bytes) -> int:
        return xxh64(data, seed=splitmix64(self._seed * 31 + index))
