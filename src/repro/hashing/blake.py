"""BLAKE2b-based hash family (the library default).

One seeded BLAKE2b digest of 64 bytes yields eight independent 64-bit
lanes, so a family request for ``k`` hash values costs only ``ceil(k/8)``
digest computations — all inside :mod:`hashlib`'s C implementation.  This
is the closest pure-stdlib analogue to the paper's setup of many vetted
independent hash functions, and it passes the §6.1 per-bit randomness test
for every lane.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from repro._util import ElementLike, require_non_negative, to_bytes
from repro.hashing.family import HashFamily

__all__ = ["Blake2Family"]

_LANES_PER_DIGEST = 8
_LANE_BYTES = 8


class Blake2Family(HashFamily):
    """Indexed 64-bit hash functions derived from seeded BLAKE2b lanes.

    Hash ``index`` maps to lane ``index % 8`` of the digest keyed by
    ``(seed, index // 8)``.  Distinct seeds give statistically independent
    families, which the experiment harness uses for repeated trials.

    Args:
        seed: family seed; families with different seeds are independent.
        batch_lanes: when True (default), one digest serves eight indices
            — the fast mode for applications.  When False, every index
            computes its own digest, so wall-clock cost scales with the
            number of hash functions.  The paper's speed experiments
            assume exactly that cost structure ("the speed of hash
            computation will be slower than memory accesses", §6.2.3);
            the Fig. 9 / 10(c) / 11(c) drivers therefore use
            ``batch_lanes=False``, otherwise a k-hash filter and a
            k/2-hash filter would pay identical hashing bills and the
            measured ratios would be meaningless.
    """

    output_bits = 64

    def __init__(self, seed: int = 0, batch_lanes: bool = True):
        require_non_negative("seed", seed)
        self._seed = seed
        self._batch_lanes = batch_lanes
        # ``key`` is the cheapest way to domain-separate blake2b; 16 bytes
        # cover the (seed, group) pair without padding overhead.
        self._key_prefix = seed.to_bytes(8, "little")
        self._key_cache: dict = {}

    def _key(self, group: int) -> bytes:
        key = self._key_cache.get(group)
        if key is None:
            key = self._key_prefix + group.to_bytes(8, "little")
            self._key_cache[group] = key
        return key

    @property
    def seed(self) -> int:
        """The family seed."""
        return self._seed

    @property
    def batch_lanes(self) -> bool:
        """Whether one digest serves eight indices (the fast mode)."""
        return self._batch_lanes

    @property
    def name(self) -> str:
        mode = "" if self._batch_lanes else ",per-index"
        return "blake2b[seed=%d%s]" % (self._seed, mode)

    def _digest(self, group: int, data: bytes) -> bytes:
        return hashlib.blake2b(
            data, digest_size=64, key=self._key(group)).digest()

    def _digest_single(self, index: int, data: bytes) -> int:
        """One dedicated 8-byte digest per index (batch_lanes=False)."""
        key = self._key_prefix + index.to_bytes(8, "little")
        digest = hashlib.blake2b(data, digest_size=8, key=key).digest()
        return int.from_bytes(digest, "little")

    def hash_bytes(self, index: int, data: bytes) -> int:
        if not self._batch_lanes:
            return self._digest_single(index, data)
        group, lane = divmod(index, _LANES_PER_DIGEST)
        digest = self._digest(group, data)
        offset = lane * _LANE_BYTES
        return int.from_bytes(digest[offset : offset + _LANE_BYTES], "little")

    def iter_values(self, element: ElementLike, count: int, start: int = 0):
        """Lazy hashes: one digest per index (per-index mode) or per
        group of eight lanes (batch mode), computed only when consumed."""
        require_non_negative("count", count)
        require_non_negative("start", start)
        data = to_bytes(element)
        if not self._batch_lanes:
            for i in range(count):
                yield self._digest_single(start + i, data)
            return
        digest = b""
        current_group = -1
        for index in range(start, start + count):
            group, lane = divmod(index, _LANES_PER_DIGEST)
            if group != current_group:
                digest = self._digest(group, data)
                current_group = group
            offset = lane * _LANE_BYTES
            yield int.from_bytes(
                digest[offset : offset + _LANE_BYTES], "little")

    def values(
        self, element: ElementLike, count: int, start: int = 0
    ) -> List[int]:
        """Batch hashes ``start .. start+count-1`` with amortised digests."""
        require_non_negative("count", count)
        require_non_negative("start", start)
        if count == 0:
            return []
        data = to_bytes(element)
        if not self._batch_lanes:
            return [
                self._digest_single(start + i, data) for i in range(count)
            ]
        first_group = start // _LANES_PER_DIGEST
        last_group = (start + count - 1) // _LANES_PER_DIGEST
        out: List[int] = []
        index = start
        end = start + count
        for group in range(first_group, last_group + 1):
            digest = self._digest(group, data)
            lane = index - group * _LANES_PER_DIGEST
            while lane < _LANES_PER_DIGEST and index < end:
                offset = lane * _LANE_BYTES
                out.append(
                    int.from_bytes(
                        digest[offset : offset + _LANE_BYTES], "little"
                    )
                )
                lane += 1
                index += 1
        return out

    def values_batch(
        self, elements: Sequence[ElementLike], count: int, start: int = 0
    ) -> np.ndarray:
        """Whole-batch hashing: one tight digest loop, one lane parse.

        The per-element digests are concatenated and decoded as one
        little-endian ``uint64`` matrix, so the Python-level work per
        element is a single ``blake2b`` call per lane group (or per index
        in ``batch_lanes=False`` mode) — the hashing half of the batch
        fast path.  Values are bit-identical to :meth:`values`.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        elements = list(elements)
        n = len(elements)
        if count == 0 or n == 0:
            return np.empty((n, count), dtype=np.uint64)
        blake2b = hashlib.blake2b
        blob = bytearray()
        if self._batch_lanes:
            first_group = start // _LANES_PER_DIGEST
            last_group = (start + count - 1) // _LANES_PER_DIGEST
            keys = [self._key(g)
                    for g in range(first_group, last_group + 1)]
            if len(keys) == 1:
                key = keys[0]
                blob = b"".join([
                    blake2b(to_bytes(element), digest_size=64,
                            key=key).digest()
                    for element in elements
                ])
            else:
                for element in elements:
                    data = to_bytes(element)
                    for key in keys:
                        blob += blake2b(
                            data, digest_size=64, key=key).digest()
            lanes = np.frombuffer(blob, dtype="<u8").reshape(
                n, len(keys) * _LANES_PER_DIGEST)
            lo = start - first_group * _LANES_PER_DIGEST
            return np.ascontiguousarray(lanes[:, lo : lo + count])
        keys = [self._key_prefix + (start + i).to_bytes(8, "little")
                for i in range(count)]
        for element in elements:
            data = to_bytes(element)
            for key in keys:
                blob += blake2b(data, digest_size=8, key=key).digest()
        return np.frombuffer(blob, dtype="<u8").reshape(n, count)
