"""Statistical vetting harness for hash families (§6.1 of the paper).

The authors vetted 18 candidate hash functions by hashing their 8 million
distinct flow IDs and checking that every output bit position is 1 with
empirical probability ≈ 0.5.  This module reproduces that gate and
extends it into the full harness a *non-cryptographic* family must clear
before it may carry the hot path:

* **per-bit balance** (:func:`bit_balance_report`) — the paper's test
  verbatim: each output bit is 1 for about half the sample, within a
  binomial confidence bound;
* **position uniformity** (:func:`position_uniformity_report`) —
  chi-square of hash values reduced modulo a filter-sized bucket count,
  i.e. uniformity of the *positions filters actually probe*, not just of
  individual bits (a family can pass per-bit balance with badly
  correlated bits; the bucket histogram catches that);
* **pairwise independence** (:func:`independence_report`) — the
  collision rate between two family members, ``P(h_i(e) ≡ h_j(e) mod
  B)``, against its binomial expectation ``n/B`` (the paper assumes *k
  independent* functions; this is the empirical check);
* **avalanche** (:func:`avalanche_report`) — flipping one input bit
  flips each output bit with probability ≈ 0.5 (full diffusion; the
  property that separates real mixers from byte-serial folds).

:func:`vet_family` runs the selected checks over several family members
at once and returns one :class:`FamilyVettingReport`; a family is fit
for experiments when ``report.passed`` is true.  All bounds are
expressed in standard deviations (``sigmas``) of the relevant null
distribution, with the chi-square quantile approximated by
Wilson–Hilferty so the harness needs no SciPy.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._util import ElementLike, require_positive, to_bytes
from repro.hashing.family import HashFamily

__all__ = [
    "AvalancheReport",
    "BitBalanceReport",
    "FamilyVettingReport",
    "IndependenceReport",
    "UniformityReport",
    "avalanche_report",
    "bit_balance_report",
    "independence_report",
    "position_uniformity_report",
    "vet_family",
]

#: Checks :func:`vet_family` runs by default, in execution order.
ALL_CHECKS = ("balance", "uniformity", "independence", "avalanche")


@dataclass(frozen=True)
class BitBalanceReport:
    """Result of the per-bit balance test for one hash index.

    Attributes:
        index: which member of the family was tested.
        samples: number of elements hashed.
        frequencies: per-bit empirical probability of observing a 1, from
            bit 0 (LSB) to bit ``output_bits - 1``.
        max_deviation: largest ``|freq - 0.5|`` across bit positions.
        threshold: deviation bound used for the pass/fail verdict.
        passed: whether every bit position stayed within the bound.
    """

    index: int
    samples: int
    frequencies: tuple
    max_deviation: float
    threshold: float
    passed: bool

    @property
    def worst_bit(self) -> int:
        """Bit position with the largest deviation from 0.5."""
        deviations = [abs(f - 0.5) for f in self.frequencies]
        return deviations.index(max(deviations))


@dataclass(frozen=True)
class UniformityReport:
    """Chi-square of positions ``h_index(e) mod n_buckets`` vs uniform.

    Attributes:
        index: which member of the family was tested.
        samples: number of elements hashed.
        n_buckets: bucket count (choose it filter-sized: the ``m`` scale
            the family will be reduced by in deployment).
        statistic: the chi-square statistic over the bucket histogram.
        dof: degrees of freedom (``n_buckets - 1``).
        critical: rejection threshold (Wilson–Hilferty quantile at the
            harness's sigma level).
        passed: ``statistic <= critical``.
    """

    index: int
    samples: int
    n_buckets: int
    statistic: float
    dof: int
    critical: float
    passed: bool


@dataclass(frozen=True)
class IndependenceReport:
    """Pairwise collision rate of two family members vs Binomial(n, 1/B).

    Attributes:
        index_a: first family member.
        index_b: second family member.
        samples: number of elements hashed.
        n_buckets: reduction modulus for the collision test.
        collisions: observed ``h_a(e) ≡ h_b(e) (mod n_buckets)`` count.
        expected: binomial expectation ``samples / n_buckets``.
        bound: allowed absolute deviation (``sigmas`` binomial std devs).
        passed: ``|collisions - expected| <= bound``.
    """

    index_a: int
    index_b: int
    samples: int
    n_buckets: int
    collisions: int
    expected: float
    bound: float
    passed: bool


@dataclass(frozen=True)
class AvalancheReport:
    """Single-input-bit avalanche behaviour of one family member.

    Attributes:
        index: which member of the family was tested.
        trials: number of (element, flipped input bit) pairs measured.
        mean_flip_rate: average fraction of output bits flipped per
            trial (ideal: 0.5).
        max_bit_deviation: worst ``|flip frequency - 0.5|`` over output
            bit positions.
        threshold: per-output-bit deviation bound.
        passed: mean and every per-bit frequency within the bound.
    """

    index: int
    trials: int
    mean_flip_rate: float
    max_bit_deviation: float
    threshold: float
    passed: bool


@dataclass(frozen=True)
class FamilyVettingReport:
    """Aggregate verdict of every enabled check over a family.

    Iterating (or indexing) the report yields the per-index
    :class:`BitBalanceReport` entries, preserving the original
    ``vet_family`` return shape for balance-only callers.
    """

    family: str
    balance: Tuple[BitBalanceReport, ...]
    uniformity: Tuple[UniformityReport, ...]
    independence: Tuple[IndependenceReport, ...]
    avalanche: Tuple[AvalancheReport, ...]

    def __iter__(self):
        return iter(self.balance)

    def __len__(self) -> int:
        return len(self.balance)

    def __getitem__(self, item):
        return self.balance[item]

    @property
    def passed(self) -> bool:
        """Whether every report of every enabled check passed."""
        return not self.failures

    @property
    def failures(self) -> List[str]:
        """Human-readable list of failed checks (empty when clean)."""
        problems = []
        for report in self.balance:
            if not report.passed:
                problems.append(
                    "balance: index %d bit %d deviates %.4f (bound %.4f)"
                    % (report.index, report.worst_bit,
                       report.max_deviation, report.threshold))
        for report in self.uniformity:
            if not report.passed:
                problems.append(
                    "uniformity: index %d chi2 %.1f > %.1f (%d buckets)"
                    % (report.index, report.statistic, report.critical,
                       report.n_buckets))
        for report in self.independence:
            if not report.passed:
                problems.append(
                    "independence: (%d, %d) collisions %d vs %.1f "
                    "(bound %.1f)"
                    % (report.index_a, report.index_b, report.collisions,
                       report.expected, report.bound))
        for report in self.avalanche:
            if not report.passed:
                problems.append(
                    "avalanche: index %d mean flip %.3f, worst bit "
                    "deviation %.3f (bound %.3f)"
                    % (report.index, report.mean_flip_rate,
                       report.max_bit_deviation, report.threshold))
        return problems


def _chi_square_critical(dof: int, sigmas: float) -> float:
    """Wilson–Hilferty approximation of the chi-square quantile.

    ``(X/df)^(1/3)`` is approximately normal with mean ``1 - 2/(9 df)``
    and variance ``2/(9 df)``; inverting at ``sigmas`` standard
    deviations gives the rejection threshold without SciPy.  Accurate to
    a fraction of a percent for the df range the harness uses (> 50).
    """
    t = 2.0 / (9.0 * dof)
    return dof * (1.0 - t + sigmas * math.sqrt(t)) ** 3


def _values_matrix(
    family: HashFamily, elements: Sequence[ElementLike], count: int
) -> np.ndarray:
    """Hash values for all elements and indices ``0..count-1`` at once."""
    return family.values_batch(elements, count)


def _balance_from_column(
    column: np.ndarray, index: int, bits: int, sigmas: float
) -> BitBalanceReport:
    n = len(column)
    ones = [
        int(((column >> np.uint64(b)) & np.uint64(1)).sum())
        for b in range(bits)
    ]
    freqs = tuple(count / n for count in ones)
    threshold = 0.5 * sigmas / math.sqrt(n)
    max_dev = max(abs(f - 0.5) for f in freqs)
    return BitBalanceReport(
        index=index,
        samples=n,
        frequencies=freqs,
        max_deviation=max_dev,
        threshold=threshold,
        passed=max_dev <= threshold,
    )


def bit_balance_report(
    family: HashFamily,
    elements: Sequence[ElementLike],
    index: int = 0,
    sigmas: float = 4.5,
) -> BitBalanceReport:
    """Run the paper's per-bit balance test on one family member.

    Each of the ``output_bits`` positions of ``family.hash(index, e)``
    should be 1 for about half the *elements*.  Under the null hypothesis
    the count of 1s is Binomial(n, 0.5), so we flag a bit whose frequency
    deviates from 0.5 by more than ``sigmas`` standard deviations
    (``0.5 * sigmas / sqrt(n)``).  The default 4.5σ keeps the familywise
    false-alarm probability below ~1e-3 even for 64 bits × many indices.

    Args:
        family: the hash family under test.
        elements: distinct sample elements (the paper used its 8M distinct
            flow IDs; a few tens of thousands give a sharp test already).
        index: which member of the family to test.
        sigmas: binomial deviation bound in standard deviations.

    Returns:
        A :class:`BitBalanceReport` with per-bit frequencies and a verdict.
    """
    elements = list(elements)
    n = len(elements)
    require_positive("len(elements)", n)
    # Sourced through the scalar ``hash`` entry point on purpose: this
    # is the primitive test, usable on families whose batch path is the
    # inherited fallback or is itself under suspicion.  ``vet_family``
    # sources the same values through ``values_batch`` instead (the two
    # are bit-identical per the family contract).
    column = np.fromiter(
        (family.hash(index, e) for e in elements), dtype=np.uint64,
        count=n)
    return _balance_from_column(column, index, family.output_bits, sigmas)


def position_uniformity_report(
    family: HashFamily,
    elements: Sequence[ElementLike],
    index: int = 0,
    n_buckets: int = 256,
    sigmas: float = 4.5,
) -> UniformityReport:
    """Chi-square uniformity of ``h_index(e) mod n_buckets``.

    Pick *n_buckets* so the expected count per bucket
    (``len(elements) / n_buckets``) stays ≥ ~5, the usual chi-square
    validity rule of thumb.
    """
    elements = list(elements)
    require_positive("len(elements)", len(elements))
    require_positive("n_buckets", n_buckets)
    column = family.values_batch(elements, 1, start=index)[:, 0]
    return _uniformity_from_column(
        column, index, len(elements), n_buckets, sigmas)


def _uniformity_from_column(
    column: np.ndarray, index: int, n: int, n_buckets: int, sigmas: float
) -> UniformityReport:
    buckets = (column % np.uint64(n_buckets)).astype(np.int64)
    counts = np.bincount(buckets, minlength=n_buckets)
    expected = n / n_buckets
    statistic = float(((counts - expected) ** 2 / expected).sum())
    dof = n_buckets - 1
    critical = _chi_square_critical(dof, sigmas)
    return UniformityReport(
        index=index,
        samples=n,
        n_buckets=n_buckets,
        statistic=statistic,
        dof=dof,
        critical=critical,
        passed=statistic <= critical,
    )


def independence_report(
    family: HashFamily,
    elements: Sequence[ElementLike],
    index_a: int,
    index_b: int,
    n_buckets: int = 256,
    sigmas: float = 4.5,
) -> IndependenceReport:
    """Collision rate of two family members vs the binomial expectation.

    For independent uniform functions, ``h_a(e) ≡ h_b(e) (mod B)``
    occurs with probability ``1/B`` per element; correlated members
    (e.g. a family that ignores its index) collide vastly more often.
    """
    elements = list(elements)
    require_positive("len(elements)", len(elements))
    count = max(index_a, index_b) + 1
    values = family.values_batch(elements, count)
    return _independence_from_columns(
        values[:, index_a], values[:, index_b], index_a, index_b,
        len(elements), n_buckets, sigmas)


def _independence_from_columns(
    col_a: np.ndarray, col_b: np.ndarray, index_a: int, index_b: int,
    n: int, n_buckets: int, sigmas: float,
) -> IndependenceReport:
    modulus = np.uint64(n_buckets)
    collisions = int((col_a % modulus == col_b % modulus).sum())
    p = 1.0 / n_buckets
    expected = n * p
    bound = sigmas * math.sqrt(n * p * (1.0 - p))
    return IndependenceReport(
        index_a=index_a,
        index_b=index_b,
        samples=n,
        n_buckets=n_buckets,
        collisions=collisions,
        expected=expected,
        bound=bound,
        passed=abs(collisions - expected) <= bound,
    )


def _spread_bit_positions(total_bits: int, max_bits: int) -> List[int]:
    """Up to *max_bits* input-bit positions spread evenly over the key."""
    if total_bits <= max_bits:
        return list(range(total_bits))
    step = total_bits / max_bits
    positions = sorted({int(j * step) for j in range(max_bits)})
    return positions


def avalanche_report(
    family: HashFamily,
    elements: Sequence[ElementLike],
    index: int = 0,
    sigmas: float = 4.5,
    max_elements: int = 128,
    max_input_bits: int = 32,
) -> AvalancheReport:
    """Single-bit avalanche test of one family member.

    For a sample of elements and a spread of input-bit positions, the
    element is re-hashed with that one bit flipped and the XOR of the
    two outputs is accumulated per output bit.  A full-diffusion mixer
    flips every output bit with probability 0.5 per trial; the bound is
    ``sigmas`` binomial standard deviations around that.

    Zero-length elements are skipped (no input bit to flip); the sample
    must contain at least one non-empty element.
    """
    datas = [to_bytes(e) for e in elements][:max_elements]
    bits_out = family.output_bits
    deltas: List[int] = []
    for data in datas:
        total_bits = 8 * len(data)
        if total_bits == 0:
            continue
        reference = family.hash_bytes(index, data)
        for position in _spread_bit_positions(total_bits, max_input_bits):
            mutated = bytearray(data)
            mutated[position // 8] ^= 1 << (position % 8)
            deltas.append(
                reference ^ family.hash_bytes(index, bytes(mutated)))
    trials = len(deltas)
    require_positive("avalanche trials", trials)
    delta_arr = np.array(deltas, dtype=np.uint64)
    flips = [
        int(((delta_arr >> np.uint64(b)) & np.uint64(1)).sum())
        for b in range(bits_out)
    ]
    threshold = 0.5 * sigmas / math.sqrt(trials)
    frequencies = [count / trials for count in flips]
    max_dev = max(abs(f - 0.5) for f in frequencies)
    mean_rate = sum(flips) / (trials * bits_out)
    passed = max_dev <= threshold and abs(mean_rate - 0.5) <= threshold
    return AvalancheReport(
        index=index,
        trials=trials,
        mean_flip_rate=mean_rate,
        max_bit_deviation=max_dev,
        threshold=threshold,
        passed=passed,
    )


def vet_family(
    family: HashFamily,
    elements: Sequence[ElementLike],
    indices: Optional[Sequence[int]] = None,
    sigmas: float = 4.5,
    checks: Sequence[str] = ALL_CHECKS,
    n_buckets: int = 256,
) -> FamilyVettingReport:
    """Run the vetting harness over several members of a family.

    Mirrors (and extends) the paper's procedure of testing each
    candidate hash function independently: per-bit balance for every
    index, chi-square position uniformity for every index, pairwise
    independence for every index pair, and avalanche for every index.
    A family is fit for experiments when ``report.passed`` is true.

    The hash values for balance/uniformity/independence are computed
    once for the whole sample via the family's own ``values_batch`` —
    the harness therefore also exercises the batch path it is vetting.

    Args:
        family: the hash family under test.
        elements: distinct sample elements.
        indices: which members to test (default: the first eight).
        sigmas: confidence bound for every check, in standard
            deviations of the respective null distribution.
        checks: subset of ``("balance", "uniformity", "independence",
            "avalanche")`` to run.
        n_buckets: filter-sized reduction modulus for the uniformity
            and independence checks.

    Returns:
        A :class:`FamilyVettingReport`; iterating it yields the per-
        index :class:`BitBalanceReport` entries (the historical shape).
    """
    elements = list(elements)
    require_positive("len(elements)", len(elements))
    if indices is None:
        indices = range(8)
    indices = list(indices)
    unknown = set(checks) - set(ALL_CHECKS)
    if unknown:
        raise ValueError(
            "unknown vetting checks %r (known: %s)"
            % (sorted(unknown), ", ".join(ALL_CHECKS)))
    n = len(elements)
    bits = family.output_bits

    values = None
    if set(checks) & {"balance", "uniformity", "independence"}:
        values = _values_matrix(family, elements, max(indices) + 1)

    balance: Tuple[BitBalanceReport, ...] = ()
    if "balance" in checks:
        balance = tuple(
            _balance_from_column(values[:, i], i, bits, sigmas)
            for i in indices
        )
    uniformity: Tuple[UniformityReport, ...] = ()
    if "uniformity" in checks:
        uniformity = tuple(
            _uniformity_from_column(values[:, i], i, n, n_buckets, sigmas)
            for i in indices
        )
    independence: Tuple[IndependenceReport, ...] = ()
    if "independence" in checks:
        independence = tuple(
            _independence_from_columns(
                values[:, a], values[:, b], a, b, n, n_buckets, sigmas)
            for a, b in itertools.combinations(indices, 2)
        )
    avalanche: Tuple[AvalancheReport, ...] = ()
    if "avalanche" in checks:
        avalanche = tuple(
            avalanche_report(family, elements, index=i, sigmas=sigmas)
            for i in indices
        )
    return FamilyVettingReport(
        family=family.name,
        balance=balance,
        uniformity=uniformity,
        independence=independence,
        avalanche=avalanche,
    )
