"""Per-bit randomness vetting for hash families (§6.1 of the paper).

The authors tested candidate hash functions by hashing their 8 million
distinct flow IDs and checking that every output bit position is 1 with
empirical probability ≈ 0.5; 18 functions passed and were used in the
evaluation.  :func:`bit_balance_report` reproduces that test for any
:class:`~repro.hashing.family.HashFamily`, and :func:`vet_family` turns it
into a pass/fail decision with a configurable binomial confidence bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro._util import ElementLike, require_positive
from repro.hashing.family import HashFamily

__all__ = ["BitBalanceReport", "bit_balance_report", "vet_family"]


@dataclass(frozen=True)
class BitBalanceReport:
    """Result of the per-bit balance test for one hash index.

    Attributes:
        index: which member of the family was tested.
        samples: number of elements hashed.
        frequencies: per-bit empirical probability of observing a 1, from
            bit 0 (LSB) to bit ``output_bits - 1``.
        max_deviation: largest ``|freq - 0.5|`` across bit positions.
        threshold: deviation bound used for the pass/fail verdict.
        passed: whether every bit position stayed within the bound.
    """

    index: int
    samples: int
    frequencies: tuple
    max_deviation: float
    threshold: float
    passed: bool

    @property
    def worst_bit(self) -> int:
        """Bit position with the largest deviation from 0.5."""
        deviations = [abs(f - 0.5) for f in self.frequencies]
        return deviations.index(max(deviations))


def bit_balance_report(
    family: HashFamily,
    elements: Sequence[ElementLike],
    index: int = 0,
    sigmas: float = 4.5,
) -> BitBalanceReport:
    """Run the paper's per-bit balance test on one family member.

    Each of the ``output_bits`` positions of ``family.hash(index, e)``
    should be 1 for about half the *elements*.  Under the null hypothesis
    the count of 1s is Binomial(n, 0.5), so we flag a bit whose frequency
    deviates from 0.5 by more than ``sigmas`` standard deviations
    (``0.5 * sigmas / sqrt(n)``).  The default 4.5σ keeps the familywise
    false-alarm probability below ~1e-3 even for 64 bits × many indices.

    Args:
        family: the hash family under test.
        elements: distinct sample elements (the paper used its 8M distinct
            flow IDs; a few tens of thousands give a sharp test already).
        index: which member of the family to test.
        sigmas: binomial deviation bound in standard deviations.

    Returns:
        A :class:`BitBalanceReport` with per-bit frequencies and a verdict.
    """
    n = len(elements)
    require_positive("len(elements)", n)
    bits = family.output_bits
    ones = [0] * bits
    for element in elements:
        value = family.hash(index, element)
        for b in range(bits):
            ones[b] += value >> b & 1
    freqs = tuple(count / n for count in ones)
    threshold = 0.5 * sigmas / math.sqrt(n)
    max_dev = max(abs(f - 0.5) for f in freqs)
    return BitBalanceReport(
        index=index,
        samples=n,
        frequencies=freqs,
        max_deviation=max_dev,
        threshold=threshold,
        passed=max_dev <= threshold,
    )


def vet_family(
    family: HashFamily,
    elements: Sequence[ElementLike],
    indices: Optional[Sequence[int]] = None,
    sigmas: float = 4.5,
) -> List[BitBalanceReport]:
    """Vet several members of a family; return one report per index.

    Mirrors the paper's procedure of testing each candidate hash function
    independently.  A family is fit for experiments when every report in
    the result has ``passed=True``.
    """
    if indices is None:
        indices = range(8)
    return [
        bit_balance_report(family, elements, index=i, sigmas=sigmas)
        for i in indices
    ]
