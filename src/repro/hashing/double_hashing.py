"""Kirsch–Mitzenmacher double hashing family.

Kirsch & Mitzenmacher showed that simulating ``k`` hash functions as
``g_i(x) = h1(x) + i * h2(x) (mod m)`` preserves the asymptotic false
positive rate of a Bloom filter while computing only two real hashes
(related work §2.1 of the ShBF paper, reference [13]).  The ShBF paper
positions this as the prior art for reducing *hash computations* — the
cost being a measurably increased FPR at practical sizes — whereas ShBF_M
halves both hash computations *and* memory accesses with negligible FPR
change.  The ablation bench ``bench_ablation_hashes`` puts the two side by
side.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro._util import ElementLike, require_non_negative, to_bytes
from repro.hashing.family import HashFamily, default_family

__all__ = ["DoubleHashingFamily"]

_M64 = 0xFFFFFFFFFFFFFFFF


class DoubleHashingFamily(HashFamily):
    """Simulates an indexed family from two base hashes.

    ``hash(i, x) = h1(x) + i * h2(x)  (mod 2**64)``, with ``h2`` forced odd
    so it is invertible modulo ``2**64`` and the sequence never collapses
    onto a short cycle.  Filters reduce the 64-bit result modulo ``m`` as
    usual; for ``m`` far below ``2**64`` this matches the arithmetic-mod-m
    formulation of the original paper up to negligible bias.

    Args:
        base: family supplying the two real hashes (defaults to BLAKE2b).
        seed: seed for the default base family.
    """

    output_bits = 64

    def __init__(self, base: HashFamily | None = None, seed: int = 0):
        require_non_negative("seed", seed)
        self._base = base if base is not None else default_family(seed=seed)

    @property
    def base(self) -> HashFamily:
        """The underlying two-hash family."""
        return self._base

    @property
    def name(self) -> str:
        return "km-double[%s]" % self._base.name

    def _pair(self, data: bytes) -> tuple[int, int]:
        h1 = self._base.hash_bytes(0, data)
        h2 = self._base.hash_bytes(1, data) | 1  # odd => full period mod 2^64
        return h1, h2

    def hash_bytes(self, index: int, data: bytes) -> int:
        h1, h2 = self._pair(data)
        return (h1 + index * h2) & _M64

    def values(
        self, element: ElementLike, count: int, start: int = 0
    ) -> List[int]:
        """Batch evaluation computing the two real hashes only once."""
        require_non_negative("count", count)
        require_non_negative("start", start)
        if count == 0:
            return []
        data = to_bytes(element)
        h1, h2 = self._pair(data)
        return [(h1 + (start + i) * h2) & _M64 for i in range(count)]

    def iter_values(self, element: ElementLike, count: int, start: int = 0):
        """Lazy evaluation; the two real hashes are paid on first use."""
        require_non_negative("count", count)
        require_non_negative("start", start)
        if count == 0:
            return
        data = to_bytes(element)
        h1, h2 = self._pair(data)
        for i in range(count):
            yield (h1 + (start + i) * h2) & _M64

    def values_batch(
        self, elements: Sequence[ElementLike], count: int, start: int = 0
    ) -> np.ndarray:
        """Two real hashes per element, then pure ``uint64`` arithmetic.

        NumPy's modular ``uint64`` wrap-around is exactly the scalar
        path's ``& _M64`` reduction, so values are bit-identical.
        """
        require_non_negative("count", count)
        require_non_negative("start", start)
        elements = list(elements)
        n = len(elements)
        if count == 0 or n == 0:
            return np.empty((n, count), dtype=np.uint64)
        pairs = np.empty((n, 2), dtype=np.uint64)
        for row, element in enumerate(elements):
            h1, h2 = self._pair(to_bytes(element))
            pairs[row, 0] = h1
            pairs[row, 1] = h2
        indices = np.arange(start, start + count, dtype=np.uint64)
        return pairs[:, :1] + indices[None, :] * pairs[:, 1:]
