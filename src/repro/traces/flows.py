"""5-tuple flow identifiers and seeded trace generation.

The paper's element universe is 13-byte flow IDs: source IP, source port,
destination IP, destination port, protocol (§6.1).  :class:`FlowRecord`
reproduces that wire format exactly; :class:`FlowTraceGenerator` produces
reproducible streams of them with backbone-like properties (many mice,
few elephants) without any captured data.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro._util import require_non_negative, require_positive
from repro.errors import ConfigurationError
from repro.traces.zipf import zipf_rank_weights

__all__ = ["FlowRecord", "FlowTraceGenerator"]

#: 4 + 2 + 4 + 2 + 1 = 13 bytes, the paper's element size.
_PACK_FORMAT = ">IHIHB"

#: Protocol numbers weighted the way backbone traffic skews (TCP-heavy).
_PROTOCOLS = (6, 17, 1, 47)
_PROTOCOL_WEIGHTS = (0.80, 0.17, 0.02, 0.01)


@dataclass(frozen=True)
class FlowRecord:
    """One 5-tuple flow identifier.

    Attributes:
        src_ip / dst_ip: IPv4 addresses as unsigned 32-bit ints.
        src_port / dst_port: transport ports.
        protocol: IP protocol number (6 = TCP, 17 = UDP, ...).
    """

    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        if not 0 <= self.src_ip < 1 << 32 or not 0 <= self.dst_ip < 1 << 32:
            raise ConfigurationError("IP addresses must be 32-bit")
        if (not 0 <= self.src_port < 1 << 16
                or not 0 <= self.dst_port < 1 << 16):
            raise ConfigurationError("ports must be 16-bit")
        if not 0 <= self.protocol < 1 << 8:
            raise ConfigurationError("protocol must be 8-bit")

    def pack(self) -> bytes:
        """Serialise to the paper's 13-byte element format."""
        return struct.pack(
            _PACK_FORMAT, self.src_ip, self.src_port,
            self.dst_ip, self.dst_port, self.protocol,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "FlowRecord":
        """Parse a 13-byte flow ID back into its fields."""
        if len(data) != 13:
            raise ConfigurationError(
                "flow IDs are 13 bytes, got %d" % len(data)
            )
        src_ip, src_port, dst_ip, dst_port, protocol = struct.unpack(
            _PACK_FORMAT, data)
        return cls(src_ip=src_ip, src_port=src_port, dst_ip=dst_ip,
                   dst_port=dst_port, protocol=protocol)

    def __str__(self) -> str:
        def dotted(ip: int) -> str:
            return ".".join(str(ip >> s & 0xFF) for s in (24, 16, 8, 0))

        return "%s:%d -> %s:%d proto=%d" % (
            dotted(self.src_ip), self.src_port,
            dotted(self.dst_ip), self.dst_port, self.protocol,
        )


class FlowTraceGenerator:
    """Seeded generator of distinct flow IDs and repeated-flow traces.

    Args:
        seed: RNG seed; identical seeds reproduce identical traces.

    Example:
        >>> gen = FlowTraceGenerator(seed=42)
        >>> flows = gen.distinct_flows(1000)
        >>> len(set(flows))
        1000
        >>> trace = gen.trace(total=5000, distinct=1000)
        >>> len(trace), len(set(trace))
        (5000, 1000)
    """

    def __init__(self, seed: int = 0):
        require_non_negative("seed", seed)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Distinct flow IDs
    # ------------------------------------------------------------------
    def distinct_records(self, count: int) -> List[FlowRecord]:
        """Generate *count* distinct :class:`FlowRecord` objects."""
        require_positive("count", count)
        rng = self._rng
        records: List[FlowRecord] = []
        seen: set = set()
        while len(records) < count:
            batch = count - len(records)
            src_ips = rng.integers(0, 1 << 32, size=batch, dtype=np.uint64)
            dst_ips = rng.integers(0, 1 << 32, size=batch, dtype=np.uint64)
            src_ports = rng.integers(1024, 1 << 16, size=batch)
            dst_ports = rng.choice(
                (80, 443, 53, 22, 8080, 25), size=batch,
                p=(0.35, 0.40, 0.10, 0.05, 0.05, 0.05))
            protocols = rng.choice(
                _PROTOCOLS, size=batch, p=_PROTOCOL_WEIGHTS)
            for i in range(batch):
                record = FlowRecord(
                    src_ip=int(src_ips[i]), src_port=int(src_ports[i]),
                    dst_ip=int(dst_ips[i]), dst_port=int(dst_ports[i]),
                    protocol=int(protocols[i]),
                )
                key = record.pack()
                if key not in seen:
                    seen.add(key)
                    records.append(record)
        return records

    def distinct_flows(self, count: int) -> List[bytes]:
        """Generate *count* distinct 13-byte flow IDs (packed form)."""
        return [record.pack() for record in self.distinct_records(count)]

    # ------------------------------------------------------------------
    # Traces with repetition
    # ------------------------------------------------------------------
    def trace(
        self,
        total: int,
        distinct: int,
        skew: float = 1.0,
        flows: Optional[Sequence[bytes]] = None,
    ) -> List[bytes]:
        """A trace of *total* packets over *distinct* flows.

        Flow sizes follow a bounded Zipf law with exponent *skew* —
        the heavy-tailed shape of backbone traffic (the authors' capture
        had 10M packets over 8M distinct flows).  Every distinct flow
        appears at least once.

        Args:
            total: trace length in packets.
            distinct: number of distinct flows (``<= total``).
            skew: Zipf exponent; 0 gives uniform flow sizes.
            flows: optional pre-generated flow IDs to reuse.
        """
        require_positive("total", total)
        require_positive("distinct", distinct)
        if distinct > total:
            raise ConfigurationError(
                "distinct=%d cannot exceed total=%d" % (distinct, total)
            )
        if flows is None:
            flows = self.distinct_flows(distinct)
        elif len(flows) < distinct:
            raise ConfigurationError(
                "supplied %d flows for distinct=%d" % (len(flows), distinct)
            )
        flows = list(flows[:distinct])
        # One guaranteed appearance per flow, remainder Zipf-assigned.
        remainder = total - distinct
        if remainder == 0:
            trace = list(flows)
        else:
            weights = zipf_rank_weights(distinct, skew)
            extra = self._rng.choice(
                distinct, size=remainder, p=weights)
            trace = list(flows)
            trace.extend(flows[i] for i in extra)
        self._rng.shuffle(trace)
        return trace

    def iter_packets(
        self, total: int, distinct: int, skew: float = 1.0
    ) -> Iterator[bytes]:
        """Streaming variant of :meth:`trace` (materialises flows only)."""
        yield from self.trace(total, distinct, skew)
