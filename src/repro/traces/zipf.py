"""Bounded Zipf utilities for heavy-tailed flow-size assignment.

Backbone flow sizes are famously heavy-tailed; the ShBF_x experiments
need per-flow multiplicities in ``[1, c]`` (the paper caps at ``c = 57``,
one machine-word window).  A *bounded* Zipf law keeps the realistic skew
while respecting the cap.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro._util import ElementLike, require_non_negative, require_positive
from repro.errors import ConfigurationError

__all__ = ["bounded_zipf_counts", "zipf_rank_weights"]


def zipf_rank_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf weights ``w_i ∝ (i+1)^-skew`` for ``n`` ranks.

    ``skew = 0`` degenerates to the uniform distribution.
    """
    require_positive("n", n)
    if skew < 0:
        raise ConfigurationError("skew must be >= 0, got %r" % skew)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-skew
    return weights / weights.sum()


def bounded_zipf_counts(
    elements: Sequence[ElementLike],
    c_max: int,
    skew: float = 1.0,
    seed: int = 0,
) -> Dict[ElementLike, int]:
    """Assign each element a multiplicity in ``[1, c_max]``.

    Ranks are shuffled so multiplicity does not correlate with element
    generation order, then mapped onto a bounded Zipf shape: a few
    elements get counts near ``c_max``, most get small counts — the flow
    size profile the paper's measurement use-case (§1.1) targets.

    Args:
        elements: distinct elements to assign counts to.
        c_max: multiplicity cap ``c``.
        skew: Zipf exponent (0 = uniform over ``[1, c_max]``).
        seed: RNG seed.

    Returns:
        Mapping of element to multiplicity.
    """
    require_positive("c_max", c_max)
    require_non_negative("seed", seed)
    if not elements:
        return {}
    rng = np.random.default_rng(seed)
    weights = zipf_rank_weights(c_max, skew)
    # Zipf over the *count values*: weight of count j is w_j, so count 1
    # is the most common and c_max the rarest (for skew > 0).
    counts = rng.choice(
        np.arange(1, c_max + 1), size=len(elements), p=weights)
    return {element: int(count) for element, count
            in zip(elements, counts)}
