"""Synthetic network traces standing in for the paper's backbone capture.

The authors evaluated on 10 million 5-tuple flow IDs (8 million distinct)
captured from a 10 Gbps backbone router, each stored as a 13-byte string
(§6.1).  That capture is proprietary, so this subpackage synthesises the
closest equivalent (DESIGN.md §1.4 records the substitution argument):

* :class:`~repro.traces.flows.FlowRecord` — a 5-tuple (src/dst IPv4,
  src/dst port, protocol) packing to exactly 13 bytes, byte-compatible
  with the paper's element format.
* :class:`~repro.traces.flows.FlowTraceGenerator` — seeded generator of
  distinct flow IDs and of traces with configurable total/distinct counts
  and Zipfian flow-size skew (backbone traffic is heavy-tailed).
* :func:`~repro.traces.zipf.bounded_zipf_counts` — per-flow multiplicity
  assignments capped at ``c`` for the ShBF_x experiments.

Every experiment treats elements as opaque hashed byte strings, so any
universe with the same cardinalities exercises identical code paths; the
hash families are vetted by the same per-bit randomness test the authors
used.
"""

from repro.traces.flows import FlowRecord, FlowTraceGenerator
from repro.traces.zipf import bounded_zipf_counts, zipf_rank_weights

__all__ = [
    "FlowRecord",
    "FlowTraceGenerator",
    "bounded_zipf_counts",
    "zipf_rank_weights",
]
