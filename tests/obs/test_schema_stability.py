"""Golden schemas: the surfaces scrapers and dashboards depend on.

Renaming a metric, dropping a STATS field, or reshaping the METRICS
JSON breaks external consumers silently — so the shapes are pinned
here as literal golden sets.  A failure in this file means "you are
changing a public telemetry surface": update the golden set, the
docs table in ``docs/OPERATIONS.md`` and the catalog together, or
don't.
"""

from __future__ import annotations

import json

from repro.core.membership import ShiftingBloomFilter
from repro.obs.names import CATALOG
from repro.service.server import FilterService

#: The full catalog, frozen.  Additions append here; renames and
#: removals are breaking changes and should look exactly this loud.
GOLDEN_METRIC_NAMES = frozenset({
    "repro_server_requests_total",
    "repro_server_errors_total",
    "repro_server_op_latency_seconds",
    "repro_server_op_elements",
    "repro_server_inflight",
    "repro_server_sheds_total",
    "repro_server_dedup_hits_total",
    "repro_coalescer_batch_elements",
    "repro_coalescer_wait_seconds",
    "repro_coalescer_flushes_total",
    "repro_replication_lag_epochs",
    "repro_replication_ships_total",
    "repro_replication_bytes_sent_total",
    "repro_node_wrong_owner_rejections_total",
    "repro_node_maps_installed_total",
    "repro_migration_stall_seconds",
    "repro_migration_moves_total",
    "repro_client_requests_total",
    "repro_client_retries_total",
    "repro_client_map_refreshes_total",
    "repro_client_deadline_timeouts_total",
    "repro_client_breaker_opens_total",
    "repro_client_failovers_total",
    "repro_drill_op_latency_seconds",
    "repro_drill_stall_seconds",
    "repro_mpserve_generation",
    "repro_mpserve_publishes_total",
    "repro_mpserve_publish_seconds",
    "repro_mpserve_pending_writes",
    "repro_mpserve_reader_retries_total",
    "repro_mpserve_writes_forwarded_total",
    "repro_mpserve_workers_alive",
    "repro_mpserve_worker_restarts_total",
    "repro_ttl_rotations_total",
    "repro_ttl_live_generations",
    "repro_ttl_rotation_stall_seconds",
})

GOLDEN_STATS_KEYS = frozenset({
    "structure", "n_shards", "coalescer",
    "n_items", "size_bits", "queue_depth", "queued_elements",
    "idempotency", "counters", "replication", "cluster", "access",
    "ttl", "generations",
})

#: Every series entry in the METRICS JSON snapshot carries these.
GOLDEN_SERIES_BASE_KEYS = frozenset({"name", "labels", "type"})
GOLDEN_HISTOGRAM_KEYS = frozenset({
    "name", "labels", "type", "resolution", "count", "sum",
    "min", "max", "buckets", "p50", "p90", "p99", "p999",
})


class TestCatalogGolden:
    def test_catalog_keys_are_exactly_the_golden_set(self):
        assert set(CATALOG) == GOLDEN_METRIC_NAMES

    def test_every_entry_fully_specified(self):
        for name, spec in CATALOG.items():
            assert name.startswith("repro_"), name
            assert spec["type"] in ("counter", "gauge", "histogram"), name
            assert isinstance(spec["labels"], tuple), name
            assert all(isinstance(label, str) for label in spec["labels"])
            assert spec["subsystem"], name
            assert spec["help"].strip(), name

    def test_counter_names_end_in_total(self):
        # Prometheus convention; scrapers rely on it for rate().
        for name, spec in CATALOG.items():
            if spec["type"] == "counter":
                assert name.endswith("_total"), name

    def test_timing_histograms_end_in_seconds(self):
        for name, spec in CATALOG.items():
            if spec["type"] == "histogram" and "elements" not in name:
                assert name.endswith("_seconds"), name


class TestStatsSchema:
    def _service(self) -> FilterService:
        service = FilterService(ShiftingBloomFilter(m=1024, k=4))
        service.target.add_batch([b"a", b"b"])
        return service

    def test_stats_top_level_keys_pinned(self):
        assert set(self._service().stats()) == GOLDEN_STATS_KEYS

    def test_stats_json_matches_stats_dict(self):
        # The cached-static-fragment fast path must serialise the same
        # object the dict API reports.
        service = self._service()
        assert json.loads(service.stats_json()) == json.loads(
            json.dumps(service.stats()))

    def test_stats_json_cache_tracks_target_swap(self):
        service = self._service()
        before = json.loads(service.stats_json())
        service._target = ShiftingBloomFilter(m=2048, k=4)
        after = json.loads(service.stats_json())
        assert before["size_bits"] != after["size_bits"]


class TestMetricsSnapshotSchema:
    def test_series_shapes_pinned(self):
        service = FilterService(ShiftingBloomFilter(m=1024, k=4))
        registry = service.metrics
        registry.histogram(
            "repro_server_op_latency_seconds", op="QUERY").observe(0.001)
        registry.counter(
            "repro_server_requests_total", op="QUERY").inc()
        snapshot = json.loads(json.dumps(registry.to_dict()))
        assert set(snapshot) == {"metrics"}
        for entry in snapshot["metrics"]:
            assert GOLDEN_SERIES_BASE_KEYS <= set(entry)
            if entry["type"] == "histogram":
                assert set(entry) == GOLDEN_HISTOGRAM_KEYS
            else:
                assert set(entry) == GOLDEN_SERIES_BASE_KEYS | {"value"}

    def test_prometheus_types_match_catalog(self):
        registry = FilterService(
            ShiftingBloomFilter(m=1024, k=4)).metrics
        registry.counter("repro_server_requests_total", op="PING").inc()
        registry.gauge("repro_server_inflight").set(0)
        text = registry.render_prometheus()
        assert "# TYPE repro_server_requests_total counter" in text
        assert "# TYPE repro_server_inflight gauge" in text
