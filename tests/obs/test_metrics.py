"""The metrics primitives: instruments, registry identity, rendering.

The contracts that matter downstream: histograms merge *exactly*
(drill artifact + live scrape = one distribution), quantile estimates
are bounded by one bucket width, a disabled registry hands out shared
no-ops (the overhead gate's baseline), and the Prometheus rendering
is cumulative and parseable.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import names as metric_names
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_refused(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_to_dict(self):
        c = Counter()
        c.inc(3)
        assert c.to_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set(self):
        g = Gauge()
        g.set(2.5)
        assert g.value == 2.5

    def test_scrape_time_fn_never_stale(self):
        state = {"lag": 1}
        g = Gauge()
        g.set_fn(lambda: state["lag"])
        assert g.value == 1.0
        state["lag"] = 7
        assert g.value == 7.0

    def test_failing_fn_yields_nan_not_a_scrape_error(self):
        g = Gauge()
        g.set_fn(lambda: 1 / 0)
        assert math.isnan(g.value)

    def test_set_clears_fn(self):
        g = Gauge()
        g.set_fn(lambda: 99.0)
        g.set(1.0)
        assert g.value == 1.0


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        d = h.to_dict()
        assert d["count"] == 0
        assert d["min"] is None and d["max"] is None
        assert d["p50"] == 0.0

    def test_bucket_zero_holds_at_or_below_resolution(self):
        h = Histogram(resolution=1e-6)
        h.observe(0.0)
        h.observe(1e-6)
        assert h.to_dict()["buckets"] == {"0": 2}

    def test_log_bucketing(self):
        h = Histogram(resolution=1.0)
        for v in (1, 2, 3, 4, 5, 8, 9):
            h.observe(v)
        # (2^(i-1), 2^i] with bucket 0 = (-inf, 1]:
        # 1 -> 0; 2 -> 1; 3,4 -> 2; 5,8 -> 3; 9 -> 4.
        assert h.to_dict()["buckets"] == {
            "0": 1, "1": 1, "2": 2, "3": 2, "4": 1}

    def test_quantile_bounded_by_bucket_width(self):
        h = Histogram(resolution=1e-6)
        for _ in range(100):
            h.observe(0.010)  # 10 ms
        p99 = h.quantile(0.99)
        assert 0.010 <= p99 <= 0.020  # within one power-of-two bucket

    def test_quantile_never_exceeds_observed_max(self):
        h = Histogram(resolution=1e-6)
        h.observe(0.009)
        assert h.quantile(1.0) == 0.009

    def test_merge_is_exact(self):
        a, b, ref = Histogram(), Histogram(), Histogram()
        for i, v in enumerate(x * 1e-4 for x in range(1, 41)):
            (a if i % 2 else b).observe(v)
            ref.observe(v)
        a.merge(b)
        merged, expected = a.to_dict(), ref.to_dict()
        # Bucket counts, extremes and quantiles merge exactly; the sum
        # is float addition, so only order-of-summation noise differs.
        assert merged["sum"] == pytest.approx(expected.pop("sum"))
        merged.pop("sum")
        assert merged == expected

    def test_merge_resolution_mismatch_refused(self):
        with pytest.raises(ValueError):
            Histogram(resolution=1e-6).merge(Histogram(resolution=1.0))

    def test_dict_round_trip_preserves_merge(self):
        h = Histogram()
        for v in (1e-5, 3e-4, 0.02, 1.5):
            h.observe(v)
        # Through JSON, as a drill report would travel.
        rebuilt = Histogram.from_dict(
            json.loads(json.dumps(h.to_dict())))
        assert rebuilt.to_dict() == h.to_dict()
        rebuilt.merge(h)
        assert rebuilt.count == 2 * h.count

    def test_huge_value_clamps_to_top_bucket(self):
        h = Histogram(resolution=1e-6)
        h.observe(1e30)
        assert h.count == 1
        # Clamped into the fixed top bucket: the quantile reports that
        # bucket's edge (an underestimate), never an index overflow.
        assert h.quantile(0.5) == h.bucket_upper_bound(63)
        assert h.max == 1e30

    def test_bad_resolution(self):
        with pytest.raises(ValueError):
            Histogram(resolution=0.0)


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", kind="read")
        b = reg.counter("x_total", kind="read")
        c = reg.counter("x_total", kind="write")
        assert a is b and a is not c

    def test_kind_conflict_refused(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_disabled_registry_hands_out_shared_noops(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total")
        c.inc(100)
        assert c.value == 0
        assert c is reg.counter("y_total")
        h = reg.histogram("z_seconds")
        h.observe(1.0)
        assert h.count == 0
        assert reg.render_prometheus() == ""
        assert reg.to_dict() == {"metrics": []}

    def test_catalog_supplies_help_text(self):
        reg = MetricsRegistry()
        reg.counter(metric_names.SERVER_REQUESTS, op="QUERY")
        text = reg.render_prometheus()
        assert ("# HELP %s %s" % (
            metric_names.SERVER_REQUESTS,
            metric_names.spec_for(
                metric_names.SERVER_REQUESTS)["help"])) in text

    def test_prometheus_rendering_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", resolution=1.0)
        for v in (1, 2, 2, 4):
            h.observe(v)
        text = reg.render_prometheus()
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="2"} 3' in text
        assert 'lat_seconds_bucket{le="4"} 4' in text
        assert 'lat_seconds_bucket{le="+Inf"} 4' in text
        assert 'lat_seconds_count 4' in text

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", standby='a"b\\c').inc()
        assert 'standby="a\\"b\\\\c"' in reg.render_prometheus()

    def test_merge_dict_cross_process(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("req_total", op="QUERY").inc(3)
        b.counter("req_total", op="QUERY").inc(4)
        a.histogram("lat_seconds").observe(0.01)
        b.histogram("lat_seconds").observe(0.02)
        b.gauge("inflight").set(9)
        a.merge_dict(json.loads(json.dumps(b.to_dict())))
        assert a.counter("req_total", op="QUERY").value == 7
        assert a.histogram("lat_seconds").count == 2
        assert a.gauge("inflight").value == 9.0

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.gauge("a_value")
        assert reg.names() == ["a_value", "b_total"]
