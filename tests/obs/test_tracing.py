"""Tracer behaviour: ids, sinks, span records, path reconstruction."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.tracing import (
    Tracer,
    format_trace_id,
    load_span_records,
    parse_trace_id,
    reconstruct,
    render_trace,
)


class TestTraceIds:
    def test_format_parse_round_trip(self):
        for trace_id in (1, 0xDEAD_BEEF, 2**64 - 1):
            assert parse_trace_id(format_trace_id(trace_id)) == trace_id

    def test_format_is_fixed_width_hex(self):
        assert format_trace_id(1) == "0" * 15 + "1"
        assert len(format_trace_id(2**64 - 1)) == 16

    def test_minted_ids_nonzero_and_seeded(self):
        a = Tracer(seed=7)
        b = Tracer(seed=7)
        ids = [a.new_trace_id() for _ in range(50)]
        assert all(ids)
        assert ids == [b.new_trace_id() for _ in range(50)]


class TestSpans:
    def test_list_sink_collects_dicts(self):
        spans = []
        tracer = Tracer(component="client", sink=spans)
        with tracer.span("client.request", 0xAB, kind="read") as extra:
            extra["n_elements"] = 4
        (record,) = spans
        assert record["trace"] == format_trace_id(0xAB)
        assert record["span"] == "client.request"
        assert record["component"] == "client"
        assert record["kind"] == "read"
        assert record["n_elements"] == 4
        assert record["dur_s"] >= 0.0

    def test_span_emitted_on_exception_with_error_field(self):
        spans = []
        tracer = Tracer(sink=spans)
        with pytest.raises(RuntimeError):
            with tracer.span("server.request", 1):
                raise RuntimeError("boom")
        assert spans[0]["error"] == "RuntimeError"

    def test_file_sink_writes_json_lines(self):
        sink = io.StringIO()
        tracer = Tracer(component="node:x", sink=sink)
        with tracer.span("coalescer.batch", 2):
            pass
        record = json.loads(sink.getvalue())
        assert record["span"] == "coalescer.batch"

    def test_none_sink_logs(self, caplog):
        tracer = Tracer(sink=None)
        with caplog.at_level(logging.INFO, logger="repro.trace"):
            with tracer.span("client.request", 3):
                pass
        assert any("client.request" in r.message for r in caplog.records)

    def test_bad_sink_refused(self):
        with pytest.raises(TypeError):
            Tracer(sink=42)


def _record(span, trace_id, start, **fields):
    base = {"trace": format_trace_id(trace_id), "span": span,
            "component": "x", "start": start, "dur_s": 0.001}
    base.update(fields)
    return base


class TestReconstruction:
    def test_orders_by_rank_then_start(self):
        # Deliberately shuffled, with a sibling pair inside one level.
        records = [
            _record("coalescer.batch", 5, 10.0),
            _record("client.sub_request", 5, 2.0, owner="b"),
            _record("server.request", 5, 3.0),
            _record("client.request", 5, 1.0),
            _record("client.sub_request", 5, 1.5, owner="a"),
            _record("client.request", 9, 0.0),  # another trace
        ]
        path = reconstruct(records, 5)
        assert [r["span"] for r in path] == [
            "client.request", "client.sub_request", "client.sub_request",
            "server.request", "coalescer.batch"]
        assert [r.get("owner") for r in path[1:3]] == ["a", "b"]

    def test_unknown_span_names_sink_to_the_bottom(self):
        records = [
            _record("mystery.hop", 5, 0.0),
            _record("client.request", 5, 9.0),
        ]
        assert [r["span"] for r in reconstruct(records, 5)] == [
            "client.request", "mystery.hop"]

    def test_render_trace_mentions_every_hop(self):
        records = [
            _record("client.request", 5, 1.0),
            _record("server.request", 5, 2.0),
        ]
        text = render_trace(records, 5)
        assert "client.request" in text and "server.request" in text
        assert format_trace_id(5) in text

    def test_render_empty(self):
        assert "no spans" in render_trace([], 5)

    def test_load_span_records_skips_non_json_lines(self):
        lines = [
            "repro.service listening on 127.0.0.1:4000",
            json.dumps(_record("client.request", 5, 1.0)),
            "{not json",
            json.dumps({"some": "dict without a trace"}),
            "",
        ]
        records = load_span_records(lines)
        assert len(records) == 1
        assert records[0]["span"] == "client.request"


class TestMonotonicSiblingOrder:
    def test_span_records_carry_mono_key(self):
        spans = []
        tracer = Tracer("client", sink=spans)
        with tracer.span("client.request", 5):
            pass
        tracer.emit("client.request", 5, start=1.0, dur_s=0.1)
        assert all("mono" in r for r in spans)

    def test_wall_clock_step_cannot_reorder_same_component_siblings(self):
        """An NTP step between two sibling spans makes wall time lie
        about their order; the per-process mono key restores it."""
        records = [
            _record("client.sub_request", 5, 100.0, mono=1.0, owner="a"),
            # clock stepped back 50s before the second sibling started
            _record("client.sub_request", 5, 50.0, mono=2.0, owner="b"),
            _record("client.request", 5, 99.0, mono=0.5),
        ]
        path = reconstruct(records, 5)
        assert [r.get("owner") for r in path[1:]] == ["a", "b"]

    def test_cross_component_order_stays_wall_clock(self):
        """Monotonic readings from different processes are meaningless
        to compare: siblings on *different* components keep wall order
        even when their mono values would say otherwise."""
        records = [
            _record("client.sub_request", 5, 2.0, mono=999.0,
                    component="edge-1", owner="late"),
            _record("client.sub_request", 5, 1.0, mono=0.001,
                    component="edge-2", owner="early"),
        ]
        path = reconstruct(records, 5)
        assert [r["owner"] for r in path] == ["early", "late"]

    def test_pre_mono_records_keep_wall_order(self):
        """Logs written before the mono key existed reconstruct exactly
        as they always did."""
        records = [
            _record("client.sub_request", 5, 2.0, owner="second"),
            _record("client.sub_request", 5, 1.0, mono=5.0, owner="first"),
        ]
        path = reconstruct(records, 5)
        assert [r["owner"] for r in path] == ["first", "second"]

    def test_mono_reorder_is_scoped_to_its_group(self):
        """Re-ordering one component's siblings must not move records
        of other ranks or components."""
        records = [
            _record("client.request", 5, 0.0, mono=0.0),
            _record("client.sub_request", 5, 10.0, mono=3.0, owner="a"),
            _record("client.sub_request", 5, 20.0, mono=1.0, owner="b"),
            _record("server.request", 5, 5.0, mono=0.2,
                    component="node:1"),
        ]
        path = reconstruct(records, 5)
        assert [r["span"] for r in path] == [
            "client.request", "client.sub_request",
            "client.sub_request", "server.request"]
        assert [r.get("owner") for r in path[1:3]] == ["b", "a"]
