"""Tests for filter snapshots, unions and cardinality estimation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import persistence
from repro.baselines import BloomFilter, OneMemoryBloomFilter
from repro.core import ShiftingBloomFilter
from repro.errors import ConfigurationError
from repro.hashing import Blake2Family, FNV1aFamily
from tests.conftest import make_elements


class TestSnapshots:
    @pytest.mark.parametrize("factory", [
        lambda: BloomFilter(m=2048, k=5),
        lambda: ShiftingBloomFilter(m=2048, k=6),
        lambda: OneMemoryBloomFilter(m=2048, k=6),
    ])
    def test_roundtrip_preserves_answers(self, factory, elements):
        original = factory()
        original.update(elements)
        clone = persistence.loads(persistence.dumps(original))
        assert type(clone) is type(original)
        assert clone.n_items == original.n_items
        probes = elements + make_elements(500, "probe")
        for element in probes:
            assert clone.query(element) == original.query(element)

    def test_shbf_w_bar_preserved(self):
        original = ShiftingBloomFilter(m=512, k=4, w_bar=20)
        clone = persistence.loads(persistence.dumps(original))
        assert clone.w_bar == 20

    def test_family_seed_preserved(self):
        original = BloomFilter(m=512, k=4, family=Blake2Family(seed=77))
        original.add(b"x")
        clone = persistence.loads(persistence.dumps(original))
        assert b"x" in clone
        assert clone.family.seed == 77

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigurationError):
            persistence.loads(b"NOPE" + b"\x00" * 32)

    def test_corruption_detected(self):
        blob = bytearray(persistence.dumps(BloomFilter(m=512, k=4)))
        blob[-1] ^= 0xFF
        with pytest.raises(ConfigurationError):
            persistence.loads(bytes(blob))

    def test_registry_family_round_trips(self):
        """Any registry family snapshots now, not just BLAKE2b."""
        filt = BloomFilter(m=512, k=4, family=FNV1aFamily(seed=3))
        filt.add(b"x")
        clone = persistence.loads(persistence.dumps(filt))
        assert type(clone.family) is FNV1aFamily
        assert clone.family.seed == 3
        assert b"x" in clone

    def test_non_seed_family_rejected(self):
        from repro.hashing import Blake2Family, DoubleHashingFamily

        # A composite over a custom base has no (kind, seed) spec.
        family = DoubleHashingFamily(base=Blake2Family(seed=1,
                                                       batch_lanes=False))
        filt = BloomFilter(m=512, k=4, family=family)
        with pytest.raises(ConfigurationError):
            persistence.dumps(filt)

    def test_unsupported_type_rejected(self):
        with pytest.raises(ConfigurationError):
            persistence.dumps(object())


class TestUnion:
    @pytest.mark.parametrize("cls", [BloomFilter, ShiftingBloomFilter])
    def test_union_contains_both_sides(self, cls):
        a = cls(m=4096, k=6)
        b = cls(m=4096, k=6)
        left = make_elements(100, "left")
        right = make_elements(100, "right")
        a.update(left)
        b.update(right)
        merged = a.union(b)
        assert all(e in merged for e in left + right)

    @pytest.mark.parametrize("cls", [BloomFilter, ShiftingBloomFilter])
    def test_union_equals_direct_build(self, cls):
        """OR of the arrays == filter built from the union directly."""
        family = Blake2Family(seed=5)
        a = cls(m=4096, k=6, family=family)
        b = cls(m=4096, k=6, family=family)
        direct = cls(m=4096, k=6, family=family)
        left = make_elements(80, "left")
        right = make_elements(80, "right")
        a.update(left)
        b.update(right)
        direct.update(left + right)
        assert a.union(b).bits.to_bytes() == direct.bits.to_bytes()

    def test_incompatible_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(m=512, k=4).union(BloomFilter(m=512, k=5))
        with pytest.raises(ConfigurationError):
            BloomFilter(m=512, k=4).union(BloomFilter(m=1024, k=4))

    def test_incompatible_family_rejected(self):
        a = BloomFilter(m=512, k=4, family=Blake2Family(seed=1))
        b = BloomFilter(m=512, k=4, family=Blake2Family(seed=2))
        with pytest.raises(ConfigurationError):
            a.union(b)

    def test_shbf_incompatible_w_bar_rejected(self):
        a = ShiftingBloomFilter(m=512, k=4, w_bar=20)
        b = ShiftingBloomFilter(m=512, k=4, w_bar=57)
        with pytest.raises(ConfigurationError):
            a.union(b)


class TestCardinality:
    @pytest.mark.parametrize("cls", [BloomFilter, ShiftingBloomFilter])
    def test_estimate_tracks_truth(self, cls):
        filt = cls(m=16384, k=6)
        filt.update(make_elements(1000))
        assert filt.approximate_cardinality() == pytest.approx(
            1000, rel=0.1)

    def test_empty_filter_estimates_zero(self):
        assert BloomFilter(m=512, k=4).approximate_cardinality() == 0.0

    def test_saturated_filter_estimates_inf(self):
        import math

        filt = BloomFilter(m=8, k=1)
        filt.update(make_elements(200))
        assert filt.approximate_cardinality() == math.inf

    def test_intersection_estimate(self):
        family = Blake2Family(seed=3)
        a = BloomFilter(m=32768, k=6, family=family)
        b = BloomFilter(m=32768, k=6, family=family)
        shared = make_elements(500, "shared")
        a.update(shared + make_elements(500, "only-a"))
        b.update(shared + make_elements(500, "only-b"))
        assert a.intersection_cardinality(b) == pytest.approx(
            500, rel=0.25)

    def test_disjoint_intersection_near_zero(self):
        family = Blake2Family(seed=4)
        a = BloomFilter(m=32768, k=6, family=family)
        b = BloomFilter(m=32768, k=6, family=family)
        a.update(make_elements(400, "only-a"))
        b.update(make_elements(400, "only-b"))
        assert a.intersection_cardinality(b) < 60


@settings(max_examples=15, deadline=None)
@given(
    left=st.sets(st.binary(min_size=1, max_size=8), max_size=30),
    right=st.sets(st.binary(min_size=1, max_size=8), max_size=30),
)
def test_property_union_no_false_negatives(left, right):
    a = ShiftingBloomFilter(m=2048, k=4)
    b = ShiftingBloomFilter(m=2048, k=4)
    for element in left:
        a.add(element)
    for element in right:
        b.add(element)
    merged = a.union(b)
    assert all(merged.query(e) for e in left | right)


@settings(max_examples=15, deadline=None)
@given(members=st.sets(st.binary(min_size=1, max_size=12), max_size=40))
def test_property_snapshot_roundtrip(members):
    filt = ShiftingBloomFilter(m=1024, k=4)
    for element in members:
        filt.add(element)
    clone = persistence.loads(persistence.dumps(filt))
    assert all(clone.query(e) for e in members)
    assert clone.bits.to_bytes() == filt.bits.to_bytes()