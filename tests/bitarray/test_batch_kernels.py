"""Batch kernels vs scalar operations on the storage layer.

Every NumPy kernel on :class:`BitArray` / :class:`CounterArray` must be
observationally identical to the scalar loop it replaces: same buffer
bytes afterwards, same returned values, and the same
:class:`AccessStats` tallies (ops *and* word counts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitarray import AccessStats, BitArray, CounterArray, MemoryModel


def make_pair(nbits=700, word_bits=64):
    return (BitArray(nbits, memory=MemoryModel(word_bits=word_bits)),
            BitArray(nbits, memory=MemoryModel(word_bits=word_bits)))


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def test_set_bits_batch_matches_scalar(rng):
    batch, scalar = make_pair()
    positions = rng.integers(0, 700, 120)
    batch.set_bits_batch(positions)
    for p in positions:
        scalar.set(int(p))
    assert batch.to_bytes() == scalar.to_bytes()
    assert batch.memory.stats == scalar.memory.stats


def test_set_bits_batch_duplicates_and_empty():
    batch, scalar = make_pair()
    batch.set_bits_batch([3, 3, 3, 9])
    for p in (3, 3, 3, 9):
        scalar.set(p)
    assert batch.to_bytes() == scalar.to_bytes()
    assert batch.memory.stats == scalar.memory.stats
    before = batch.memory.snapshot()
    batch.set_bits_batch([])
    assert batch.memory.stats == before


def test_set_offsets_batch_matches_scalar(rng):
    batch, scalar = make_pair()
    bases = rng.integers(0, 600, 50)
    offsets = rng.integers(1, 50, 50)
    batch.set_offsets_batch(
        bases, np.stack([np.zeros(50, dtype=int), offsets], axis=1))
    for b, o in zip(bases, offsets):
        scalar.set_offsets(int(b), (0, int(o)))
    assert batch.to_bytes() == scalar.to_bytes()
    assert batch.memory.stats == scalar.memory.stats


def test_test_bits_and_pairs_batch_match_scalar(rng):
    batch, scalar = make_pair()
    filler = rng.integers(0, 700, 200)
    batch.set_bits_batch(filler, record=False)
    scalar.set_bits_batch(filler, record=False)
    positions = rng.integers(0, 700, 80)
    got = batch.test_bits_batch(positions)
    want = [scalar.test(int(p)) for p in positions]
    assert got.tolist() == want
    assert batch.memory.stats == scalar.memory.stats

    bases = rng.integers(0, 640, 60)
    offsets = rng.integers(1, 57, 60)
    got = batch.test_pairs_batch(bases, offsets)
    want = [scalar.test_pair(int(b), int(o))
            for b, o in zip(bases, offsets)]
    assert got.tolist() == want
    assert batch.memory.stats == scalar.memory.stats


def test_test_offsets_batch_matches_scalar(rng):
    batch, scalar = make_pair()
    filler = rng.integers(0, 700, 250)
    batch.set_bits_batch(filler, record=False)
    scalar.set_bits_batch(filler, record=False)
    bases = rng.integers(0, 600, 40)
    group = np.stack([np.zeros(40, dtype=int),
                      rng.integers(1, 25, 40),
                      rng.integers(25, 50, 40)], axis=1)
    got = batch.test_offsets_batch(bases, group)
    want = [scalar.test_offsets(int(b), tuple(int(o) for o in row))
            for b, row in zip(bases, group)]
    assert [tuple(r) for r in got] == want
    assert batch.memory.stats == scalar.memory.stats


@pytest.mark.parametrize("nbits", [1, 8, 13, 57])
def test_read_windows_batch_matches_scalar(rng, nbits):
    batch, scalar = make_pair()
    filler = rng.integers(0, 700, 300)
    batch.set_bits_batch(filler, record=False)
    scalar.set_bits_batch(filler, record=False)
    starts = rng.integers(0, 700 - nbits, 64)
    got = batch.read_windows_batch(starts, nbits)
    want = [scalar.read_window(int(s), nbits) for s in starts]
    assert [int(v) for v in got] == want
    assert batch.memory.stats == scalar.memory.stats


def test_read_windows_batch_aligned_64_and_wide_fallback(rng):
    batch, scalar = make_pair(nbits=1024)
    filler = rng.integers(0, 1024, 400)
    batch.set_bits_batch(filler, record=False)
    scalar.set_bits_batch(filler, record=False)
    aligned = (rng.integers(0, 120, 16) * 8).astype(np.int64)
    got = batch.read_windows_batch(aligned, 64)
    want = [scalar.read_window(int(s), 64) for s in aligned]
    assert [int(v) for v in got] == want
    assert batch.memory.stats == scalar.memory.stats
    # spans too wide for the uint64 gather fall back element-wise
    wide_starts = aligned[:4] % 800
    got = batch.read_windows_batch(wide_starts, 90)
    want = [scalar.read_window(int(s), 90) for s in wide_starts]
    assert [int(v) for v in got] == want
    assert batch.memory.stats == scalar.memory.stats


def test_batch_bounds_checks():
    bits = BitArray(64)
    with pytest.raises(IndexError):
        bits.set_bits_batch([0, 64])
    with pytest.raises(IndexError):
        bits.test_bits_batch([-1])
    with pytest.raises(IndexError):
        bits.test_pairs_batch([60], [10])
    with pytest.raises(IndexError):
        bits.test_pairs_batch([10], [-1])
    with pytest.raises(IndexError):
        bits.read_windows_batch([60], 10)
    # negative bases must be rejected even when base + offset is in range,
    # matching the scalar twins' index validation
    with pytest.raises(IndexError):
        bits.set_offsets_batch([-5], [[10]])
    with pytest.raises(IndexError):
        bits.test_offsets_batch([-5], [[10]])
    with pytest.raises(IndexError):
        CounterArray(16).increment_offsets_batch([-5], [[10]])
    stats = bits.memory.stats
    assert stats.read_ops == 0 and stats.write_ops == 0


def test_count_and_clear_all():
    bits = BitArray(203)
    positions = [0, 1, 7, 8, 64, 131, 202]
    bits.set_bits_batch(positions, record=False)
    assert bits.count() == len(positions)
    assert bits.fill_ratio() == pytest.approx(len(positions) / 203)
    bits.clear_all()
    assert bits.count() == 0
    assert bits.to_bytes() == bytes(len(bits.to_bytes()))


def test_as_numpy_is_zero_copy():
    bits = BitArray(64)
    view = bits.as_numpy()
    bits.set(9, record=False)
    assert view[1] == 2  # bit 9 = byte 1, bit 1
    view[0] = 1
    assert bits.peek(0)


def test_counter_batch_ops_match_scalar(rng):
    batch = CounterArray(400, bits_per_counter=4)
    scalar = CounterArray(400, bits_per_counter=4)
    bases = rng.integers(0, 340, 60)
    offsets = rng.integers(1, 14, 60)
    pair = np.stack([np.zeros(60, dtype=int), offsets], axis=1)
    batch.increment_offsets_batch(bases, pair)
    for b, o in zip(bases, offsets):
        scalar.increment_offsets(int(b), (0, int(o)))
    assert batch.to_list() == scalar.to_list()
    assert batch.memory.stats == scalar.memory.stats
    assert batch.nonzero_count() == scalar.nonzero_count()

    batch.decrement_offsets_batch(bases[:20], pair[:20])
    for b, o in zip(bases[:20], offsets[:20]):
        scalar.decrement_offsets(int(b), (0, int(o)))
    assert batch.to_list() == scalar.to_list()
    assert batch.memory.stats == scalar.memory.stats


def test_counter_batch_bounds_and_empty():
    counters = CounterArray(16, bits_per_counter=4)
    with pytest.raises(IndexError):
        counters.increment_offsets_batch([15], [[0, 1]])
    before = counters.memory.stats.snapshot()
    counters.increment_offsets_batch([], [[0, 1]])
    assert counters.memory.stats == before


def test_counter_batch_exception_billing_matches_scalar():
    """A mid-batch underflow must leave the same accounting (and state)
    as the scalar loop: every completed row plus the failing row."""
    from repro.errors import CounterUnderflowError

    batch = CounterArray(64, bits_per_counter=4)
    scalar = CounterArray(64, bits_per_counter=4)
    for c in (batch, scalar):
        for position in (0, 2, 5, 7, 10):  # row 2's position 12 stays 0
            c.increment(position, record=False)
    rows = [(0, [0, 2]), (5, [0, 2]), (10, [0, 2])]
    with pytest.raises(CounterUnderflowError):
        batch.decrement_offsets_batch([b for b, _ in rows],
                                      [o for _, o in rows])
    with pytest.raises(CounterUnderflowError):
        for b, o in rows:
            scalar.decrement_offsets(b, o)
    assert batch.to_list() == scalar.to_list()
    assert batch.memory.stats == scalar.memory.stats


def test_counter_clear_all_bulk():
    counters = CounterArray(50, bits_per_counter=6)
    for i in range(0, 50, 7):
        counters.increment(i, by=3)
    counters.clear_all()
    assert counters.to_list() == [0] * 50
    assert counters.nonzero_count() == 0


def test_record_aggregates_match_scalar_records():
    model_a = MemoryModel(word_bits=64)
    model_b = MemoryModel(word_bits=64)
    spans = [(3, 1), (7, 57), (12, 64), (0, 128)]
    for start, nbits in spans:
        model_a.record_read(start, nbits)
        model_a.record_write(start, nbits)
    costs = model_b.read_cost_batch([s for s, _ in spans],
                                    np.asarray([n for _, n in spans]))
    model_b.record_reads(len(spans), int(costs.sum()))
    model_b.record_writes(len(spans), int(costs.sum()))
    assert model_a.stats == model_b.stats
    assert isinstance(model_a.stats, AccessStats)
