"""Regression pins for the BitArray buffer contract.

The ROADMAP once claimed the buffer was "contiguous uint64 —
``np.memmap`` them"; it is and always was a flat ``bytearray`` exposed
as a contiguous **uint8** zero-copy view.  The shared-memory serving
layer (``repro.store.shm`` / ``repro.mpserve``) now depends on that
exact shape — these tests pin it so the docs and the export format
can't silently drift apart again.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitarray import BitArray
from repro.errors import ConfigurationError


class TestBufferShape:
    def test_backing_buffer_is_contiguous_bytes(self):
        bits = BitArray(1000)
        view = memoryview(bits._buf)
        assert view.contiguous
        assert view.itemsize == 1
        assert isinstance(bits._buf, bytearray)
        # Not uint64 words: a 1000-bit array takes 125 bytes, which is
        # not even a multiple of 8 — the widened dtype never existed.
        assert view.nbytes == 125

    def test_as_numpy_is_a_zero_copy_uint8_view(self):
        bits = BitArray(256)
        view = bits.as_numpy()
        assert view.dtype == np.uint8
        assert view.flags["C_CONTIGUOUS"]
        bits.set(13)
        assert view[13 // 8] & (1 << (13 % 8))  # writes show through

    def test_export_readonly_is_contiguous_uint8_bytes(self):
        bits = BitArray(512)
        bits.set(100)
        exported = bits.export_readonly()
        assert exported.readonly
        assert exported.contiguous
        assert exported.itemsize == 1
        assert exported.nbytes == bits.nbytes
        assert bytes(exported) == bits.to_bytes()


class TestAttachReadonly:
    def _attached(self, nbits=256):
        source = BitArray(nbits)
        source.set(7)
        source.set(200)
        return source, BitArray.attach_readonly(
            source.export_readonly(), nbits)

    def test_attach_shares_bytes_and_reads_identically(self):
        source, attached = self._attached()
        assert attached.readonly
        assert [attached.test(i) for i in (7, 8, 200)] == \
            [True, False, True]
        # Zero copy: a write through the source shows in the attachment.
        source.set(42)
        assert attached.test(42)

    def test_scalar_and_batch_writes_both_refuse(self):
        _source, attached = self._attached()
        with pytest.raises(TypeError):
            attached.set(3)
        # ufunc.at would scribble through the writeable flag — the
        # explicit guard in the batch kernels must fire instead.
        with pytest.raises(TypeError, match="read-only"):
            attached.set_bits_batch(np.array([3, 9]))
        with pytest.raises(TypeError, match="read-only"):
            attached.set_offsets_batch(np.array([0]), np.array([1, 2]))

    def test_attach_validates_length(self):
        with pytest.raises(ConfigurationError):
            BitArray.attach_readonly(bytes(10), nbits=256)

    def test_copy_of_attachment_is_writable(self):
        _source, attached = self._attached()
        clone = attached.copy()
        assert not clone.readonly
        clone.set(3)
        assert clone.test(3) and not attached.test(3)

    def test_fresh_array_is_not_readonly(self):
        assert not BitArray(64).readonly
