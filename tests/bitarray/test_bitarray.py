"""Tests for the BitArray substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitarray import BitArray, MemoryModel
from repro.errors import ConfigurationError


class TestBasicOperations:
    def test_starts_all_zero(self):
        bits = BitArray(100)
        assert bits.count() == 0
        assert not any(bits.peek(i) for i in range(100))

    def test_set_and_test(self):
        bits = BitArray(100)
        bits.set(0)
        bits.set(42)
        bits.set(99)
        assert bits.test(0) and bits.test(42) and bits.test(99)
        assert not bits.test(1)
        assert bits.count() == 3

    def test_set_is_idempotent(self):
        bits = BitArray(16)
        bits.set(5)
        bits.set(5)
        assert bits.count() == 1

    def test_clear(self):
        bits = BitArray(16)
        bits.set(5)
        bits.clear(5)
        assert not bits.test(5)
        assert bits.count() == 0

    def test_clear_unset_bit_is_noop(self):
        bits = BitArray(16)
        bits.clear(3)
        assert bits.count() == 0

    def test_len_and_nbits(self):
        bits = BitArray(77)
        assert len(bits) == 77
        assert bits.nbits == 77
        assert bits.nbytes == 10

    def test_getitem_matches_peek(self):
        bits = BitArray(16)
        bits.set(9)
        assert bits[9] is True
        assert bits[8] is False

    def test_fill_ratio(self):
        bits = BitArray(10)
        for i in range(5):
            bits.set(i)
        assert bits.fill_ratio() == pytest.approx(0.5)

    def test_clear_all(self):
        bits = BitArray(64)
        for i in range(0, 64, 3):
            bits.set(i)
        bits.clear_all()
        assert bits.count() == 0


class TestBounds:
    def test_negative_index_rejected(self):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits.test(-1)

    def test_index_past_end_rejected(self):
        bits = BitArray(8)
        with pytest.raises(IndexError):
            bits.set(8)

    def test_window_past_end_rejected(self):
        bits = BitArray(16)
        with pytest.raises(IndexError):
            bits.read_window(10, 7)

    def test_set_offsets_past_end_rejected(self):
        bits = BitArray(16)
        with pytest.raises(IndexError):
            bits.set_offsets(10, [0, 6])

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            BitArray(0)


class TestWindowedReads:
    def test_read_window_single_byte(self):
        bits = BitArray(16)
        bits.set(3)
        bits.set(5)
        # bits 3..7 -> positions 0 and 2 of the window
        assert bits.read_window(3, 5) == 0b00101

    def test_read_window_across_bytes(self):
        bits = BitArray(32)
        bits.set(7)
        bits.set(8)
        bits.set(14)
        window = bits.read_window(7, 8)  # bits 7..14
        assert window == 0b10000011

    def test_read_window_across_many_bytes(self):
        bits = BitArray(256)
        positions = [10, 17, 40, 63, 66]
        for p in positions:
            bits.set(p)
        window = bits.read_window(10, 57)
        for p in positions:
            assert window >> (p - 10) & 1

    def test_read_window_full_width(self):
        bits = BitArray(64)
        for i in range(64):
            bits.set(i)
        assert bits.read_window(0, 64) == (1 << 64) - 1

    @given(
        positions=st.sets(st.integers(0, 255), max_size=40),
        start=st.integers(0, 200),
        nbits=st.integers(1, 56),
    )
    def test_window_matches_individual_bits(self, positions, start, nbits):
        """Property: windowed reads agree with bit-by-bit reads."""
        bits = BitArray(256)
        for p in positions:
            bits.set(p)
        if start + nbits > 256:
            nbits = 256 - start
        window = bits.read_window(start, nbits, record=False)
        for j in range(nbits):
            assert bool(window >> j & 1) == bits.peek(start + j)

    def test_test_offsets(self):
        bits = BitArray(128)
        bits.set(10)
        bits.set(30)
        assert bits.test_offsets(10, (0, 20)) == (True, True)
        assert bits.test_offsets(10, (0, 19)) == (True, False)
        assert bits.test_offsets(11, (0, 19)) == (False, True)

    def test_test_offsets_empty(self):
        bits = BitArray(8)
        assert bits.test_offsets(0, ()) == ()

    def test_set_offsets(self):
        bits = BitArray(128)
        bits.set_offsets(10, (0, 20))
        assert bits.peek(10) and bits.peek(30)
        assert bits.count() == 2


class TestAccessAccounting:
    def test_single_bit_test_costs_one_word(self):
        bits = BitArray(1024)
        bits.test(700)
        assert bits.memory.stats.read_words == 1
        assert bits.memory.stats.read_ops == 1

    def test_pair_read_within_bound_costs_one_word(self):
        bits = BitArray(1024, memory=MemoryModel(word_bits=64))
        bits.test_offsets(700, (0, 57))
        assert bits.memory.stats.read_words == 1
        assert bits.memory.stats.read_ops == 1

    def test_peek_is_free(self):
        bits = BitArray(64)
        bits.peek(10)
        assert bits.memory.stats.read_ops == 0

    def test_record_false_suppresses_accounting(self):
        bits = BitArray(64)
        bits.set(3, record=False)
        bits.test(3, record=False)
        bits.read_window(0, 8, record=False)
        assert bits.memory.stats.read_ops == 0
        assert bits.memory.stats.write_ops == 0

    def test_set_offsets_costs_one_write(self):
        bits = BitArray(1024)
        bits.set_offsets(100, (0, 40))
        assert bits.memory.stats.write_ops == 1
        assert bits.memory.stats.write_words == 1

    def test_shared_memory_model(self):
        model = MemoryModel()
        a = BitArray(64, memory=model)
        b = BitArray(64, memory=model)
        a.test(0)
        b.test(0)
        assert model.stats.read_ops == 2


class TestSerialisation:
    def test_roundtrip(self):
        bits = BitArray(100)
        for i in (0, 13, 64, 99):
            bits.set(i)
        clone = BitArray.from_bytes(bits.to_bytes(), 100)
        assert [clone.peek(i) for i in range(100)] == [
            bits.peek(i) for i in range(100)
        ]

    def test_from_bytes_validates_length(self):
        with pytest.raises(ConfigurationError):
            BitArray.from_bytes(b"\x00", 100)

    def test_copy_is_deep(self):
        bits = BitArray(32)
        bits.set(5)
        clone = bits.copy()
        clone.set(6)
        assert not bits.peek(6)
        assert clone.peek(5)

    def test_copy_has_fresh_stats(self):
        bits = BitArray(32)
        bits.test(0)
        clone = bits.copy()
        assert clone.memory.stats.read_ops == 0


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["set", "clear"]), st.integers(0, 127)),
        max_size=60,
    )
)
def test_model_against_reference_set(ops):
    """Property: BitArray behaves like a set of integers."""
    bits = BitArray(128)
    reference = set()
    for op, i in ops:
        if op == "set":
            bits.set(i)
            reference.add(i)
        else:
            bits.clear(i)
            reference.discard(i)
    assert bits.count() == len(reference)
    for i in range(128):
        assert bits.peek(i) == (i in reference)
