"""Tests for the packed counter array."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitarray import CounterArray, OverflowPolicy
from repro.errors import (
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
)


class TestBasics:
    def test_starts_all_zero(self):
        counters = CounterArray(10)
        assert counters.to_list() == [0] * 10
        assert counters.nonzero_count() == 0

    def test_increment_and_get(self):
        counters = CounterArray(10)
        counters.increment(3)
        counters.increment(3)
        counters.increment(7)
        assert counters.get(3) == 2
        assert counters.get(7) == 1
        assert counters.get(0) == 0
        assert counters.nonzero_count() == 2

    def test_decrement(self):
        counters = CounterArray(4)
        counters.increment(1, by=3)
        assert counters.decrement(1) == 2
        assert counters.get(1) == 2

    def test_decrement_to_zero_updates_nonzero(self):
        counters = CounterArray(4)
        counters.increment(1)
        counters.decrement(1)
        assert counters.nonzero_count() == 0

    def test_set_value(self):
        counters = CounterArray(4, bits_per_counter=6)
        counters.set(2, 63)
        assert counters.get(2) == 63
        counters.set(2, 0)
        assert counters.nonzero_count() == 0

    def test_set_rejects_out_of_range(self):
        counters = CounterArray(4, bits_per_counter=4)
        with pytest.raises(ConfigurationError):
            counters.set(0, 16)
        with pytest.raises(ConfigurationError):
            counters.set(0, -1)

    def test_properties(self):
        counters = CounterArray(10, bits_per_counter=6)
        assert len(counters) == 10
        assert counters.size == 10
        assert counters.bits_per_counter == 6
        assert counters.max_value == 63
        assert counters.total_bits == 60

    def test_clear_all(self):
        counters = CounterArray(8)
        for i in range(8):
            counters.increment(i)
        counters.clear_all()
        assert counters.to_list() == [0] * 8
        assert counters.nonzero_count() == 0


class TestPacking:
    """Packed layouts must not bleed between adjacent counters."""

    @pytest.mark.parametrize("bits", [1, 3, 4, 5, 6, 8, 12, 16, 32, 64])
    def test_neighbours_are_independent(self, bits):
        counters = CounterArray(9, bits_per_counter=bits)
        maximum = counters.max_value
        for i in range(0, 9, 2):
            counters.set(i, maximum if maximum > 0 else 0)
        for i in range(9):
            expected = counters.max_value if i % 2 == 0 else 0
            assert counters.get(i, record=False) == expected

    @given(
        bits=st.sampled_from([3, 4, 5, 7]),
        updates=st.lists(
            st.tuples(st.integers(0, 15), st.integers(1, 6)), max_size=50
        ),
    )
    def test_matches_reference_list(self, bits, updates):
        """Property: a packed array behaves like a plain list of ints."""
        counters = CounterArray(
            16, bits_per_counter=bits, overflow=OverflowPolicy.SATURATE
        )
        reference = [0] * 16
        maximum = (1 << bits) - 1
        for index, amount in updates:
            counters.increment(index, by=amount)
            reference[index] = min(maximum, reference[index] + amount)
        assert counters.to_list() == reference


class TestOverflow:
    def test_saturate_clamps(self):
        counters = CounterArray(2, bits_per_counter=2)
        for _ in range(10):
            counters.increment(0)
        assert counters.get(0) == 3

    def test_saturated_counter_is_not_decremented(self):
        counters = CounterArray(2, bits_per_counter=2)
        for _ in range(5):
            counters.increment(0)
        counters.decrement(0)
        assert counters.get(0) == 3  # stuck at max: true value unknown

    def test_raise_policy(self):
        counters = CounterArray(
            2, bits_per_counter=2, overflow=OverflowPolicy.RAISE
        )
        counters.increment(0, by=3)
        with pytest.raises(CounterOverflowError):
            counters.increment(0)

    def test_underflow_raises(self):
        counters = CounterArray(2)
        with pytest.raises(CounterUnderflowError):
            counters.decrement(0)

    def test_bits_per_counter_bounds(self):
        with pytest.raises(ConfigurationError):
            CounterArray(4, bits_per_counter=0)
        with pytest.raises(ConfigurationError):
            CounterArray(4, bits_per_counter=65)


class TestOffsets:
    def test_get_offsets(self):
        counters = CounterArray(64)
        counters.increment(10, by=2)
        counters.increment(13, by=5)
        assert counters.get_offsets(10, (0, 3)) == (2, 5)

    def test_increment_offsets(self):
        counters = CounterArray(64)
        counters.increment_offsets(10, (0, 3))
        assert counters.get(10, record=False) == 1
        assert counters.get(13, record=False) == 1

    def test_decrement_offsets(self):
        counters = CounterArray(64)
        counters.increment_offsets(10, (0, 3), by=2)
        counters.decrement_offsets(10, (0, 3))
        assert counters.get(10, record=False) == 1
        assert counters.get(13, record=False) == 1

    def test_offsets_access_counts_single_operation(self):
        counters = CounterArray(64, bits_per_counter=4)
        counters.get_offsets(0, (0, 7))
        assert counters.memory.stats.read_ops == 1
        # 8 counters x 4 bits = 32 bits -> one 64-bit word
        assert counters.memory.stats.read_words == 1

    def test_out_of_range_offset_rejected(self):
        counters = CounterArray(8)
        with pytest.raises(IndexError):
            counters.get_offsets(6, (0, 3))


class TestAccounting:
    def test_counter_ops_record_traffic(self):
        counters = CounterArray(16, bits_per_counter=4)
        counters.increment(3)
        counters.get(3)
        counters.decrement(3)
        assert counters.memory.stats.write_ops == 2
        assert counters.memory.stats.read_ops == 1

    def test_default_tier_is_dram(self):
        assert CounterArray(4).memory.tier == "dram"

    def test_record_false_suppresses(self):
        counters = CounterArray(4)
        counters.increment(0, record=False)
        counters.get(0, record=False)
        assert counters.memory.stats.read_ops == 0
        assert counters.memory.stats.write_ops == 0
