"""Tests for the byte-aligned word-granular memory cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitarray.memory import AccessStats, MemoryModel
from repro.errors import ConfigurationError


class TestReadCost:
    def test_single_bit_is_one_access(self):
        model = MemoryModel(word_bits=64)
        for start in (0, 1, 7, 8, 63, 64, 1023):
            assert model.read_cost(start, 1) == 1

    def test_zero_bits_is_free(self):
        assert MemoryModel().read_cost(10, 0) == 0

    def test_pair_within_offset_bound_is_one_access(self):
        """The paper's w_bar = w - 7 rule: pair reads cost one access.

        Offsets are drawn from [1, w_bar - 1] = [1, w - 8], so the widest
        pair read spans max_offset + 1 = w - 7 bits.
        """
        model = MemoryModel(word_bits=64)
        max_offset = model.max_single_read_offset()
        assert max_offset == 56
        assert model.w_bar() == 57
        for start in range(0, 128):
            span = max_offset + 1  # bits start .. start + max_offset
            assert model.read_cost(start, span) == 1

    def test_pair_beyond_offset_bound_may_need_two_accesses(self):
        model = MemoryModel(word_bits=64)
        # start at the 8th bit of a byte (j=8), worst case in the paper
        start = 7
        assert model.read_cost(start, 58) == 2
        assert model.read_cost(start, 57) == 1

    def test_32_bit_word(self):
        model = MemoryModel(word_bits=32)
        assert model.max_single_read_offset() == 24
        assert model.w_bar() == 25
        assert model.read_cost(7, 26) == 2
        assert model.read_cost(7, 25) == 1

    def test_wide_window_costs_ceil_span_over_word(self):
        model = MemoryModel(word_bits=64)
        assert model.read_cost(0, 64) == 1
        assert model.read_cost(0, 65) == 2
        assert model.read_cost(0, 129) == 3
        assert model.read_cost(4, 61) == 2  # byte-aligned start adds 4 bits

    @given(start=st.integers(0, 10_000), nbits=st.integers(1, 4096))
    def test_cost_formula_matches_definition(self, start, nbits):
        model = MemoryModel(word_bits=64)
        span = (start % 8) + nbits
        expected = (span + 63) // 64
        assert model.read_cost(start, nbits) == expected

    @given(start=st.integers(0, 10_000), nbits=st.integers(1, 4096))
    def test_cost_is_monotone_in_width(self, start, nbits):
        model = MemoryModel(word_bits=64)
        assert model.read_cost(start, nbits) <= model.read_cost(
            start, nbits + 1)


class TestRecording:
    def test_record_read_accumulates(self):
        model = MemoryModel(word_bits=64)
        model.record_read(0, 1)
        model.record_read(7, 58)
        assert model.stats.read_ops == 2
        assert model.stats.read_words == 3

    def test_record_write_accumulates(self):
        model = MemoryModel(word_bits=64)
        model.record_write(0, 1)
        model.record_write(0, 65)
        assert model.stats.write_ops == 2
        assert model.stats.write_words == 3

    def test_reset(self):
        model = MemoryModel()
        model.record_read(0, 1)
        model.record_write(0, 1)
        model.reset()
        assert model.stats.read_words == 0
        assert model.stats.write_words == 0
        assert model.stats.read_ops == 0
        assert model.stats.write_ops == 0

    def test_snapshot_and_diff(self):
        model = MemoryModel()
        model.record_read(0, 1)
        before = model.snapshot()
        model.record_read(0, 1)
        model.record_write(0, 1)
        delta = model.stats.diff(before)
        assert delta.read_words == 1
        assert delta.write_words == 1
        assert delta.read_ops == 1
        assert delta.write_ops == 1

    def test_snapshot_is_independent(self):
        model = MemoryModel()
        snap = model.snapshot()
        model.record_read(0, 1)
        assert snap.read_words == 0

    def test_total_words(self):
        stats = AccessStats(read_words=3, write_words=2)
        assert stats.total_words == 5


class TestConfiguration:
    def test_word_bits_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(word_bits=0)

    def test_word_bits_must_be_byte_multiple(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(word_bits=12)

    def test_tier_label_is_kept(self):
        assert MemoryModel(tier="dram").tier == "dram"
