"""Batch/scalar equivalence across every filter with a batch fast path.

The batch pipeline's contract, asserted structure by structure:

1. **state** — ``add_batch`` leaves a bit-identical array (and counter
   array, for counting variants) to an element-at-a-time ``add`` loop;
2. **verdicts** — ``query_batch`` answers equal scalar ``query`` element
   for element, members and non-members alike;
3. **accounting** — both paths bill identical logical memory-access
   totals (ops and words, on every tier), *including* the scalar query
   loops' early-exit behaviour;
4. **edges** — empty batches are no-ops and single-element batches
   behave like one scalar call.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BloomFilter, OneMemoryBloomFilter
from repro.core import (
    CountingShiftingAssociationFilter,
    CountingShiftingBloomFilter,
    CountingShiftingMultiplicityFilter,
    GeneralizedShiftingBloomFilter,
    ShiftingAssociationFilter,
    ShiftingBloomFilter,
    ShiftingMultiplicityFilter,
)
from repro.errors import ConfigurationError
from tests.conftest import make_elements

MEMBERS = make_elements(400, "member")
ABSENT = make_elements(400, "absent")
MIXED = [e for pair in zip(MEMBERS, ABSENT) for e in pair]


def assert_same_stats(batch, scalar):
    assert batch.memory.stats == scalar.memory.stats
    if hasattr(batch, "counters"):
        assert batch.counters.memory.stats == scalar.counters.memory.stats


MEMBERSHIP_FACTORIES = [
    pytest.param(lambda: BloomFilter(m=8192, k=7), id="bf"),
    pytest.param(lambda: ShiftingBloomFilter(m=8192, k=8), id="shbf_m"),
    pytest.param(lambda: ShiftingBloomFilter(m=8192, k=8, word_bits=32),
                 id="shbf_m_w32"),
    pytest.param(lambda: CountingShiftingBloomFilter(m=8192, k=8),
                 id="cshbf_m"),
    pytest.param(lambda: OneMemoryBloomFilter(m=8192, k=8),
                 id="one_mem_bf"),
    pytest.param(lambda: OneMemoryBloomFilter(m=8192, k=8,
                                              words_per_element=2),
                 id="one_mem_bf_2w"),
    pytest.param(lambda: GeneralizedShiftingBloomFilter(m=8192, k=12, t=2),
                 id="generalized_t2"),
    pytest.param(lambda: GeneralizedShiftingBloomFilter(m=8192, k=8, t=3),
                 id="generalized_t3"),
]


@pytest.mark.parametrize("make", MEMBERSHIP_FACTORIES)
def test_membership_batch_equivalence(make):
    batch, scalar = make(), make()
    batch.add_batch(MEMBERS)
    for element in MEMBERS:
        scalar.add(element)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert batch.n_items == scalar.n_items
    assert_same_stats(batch, scalar)

    verdicts = batch.query_batch(MIXED)
    assert isinstance(verdicts, np.ndarray)
    assert verdicts.dtype == bool
    assert verdicts.tolist() == [scalar.query(q) for q in MIXED]
    assert_same_stats(batch, scalar)
    # every member must be found (no false negatives through the batch path)
    assert batch.query_batch(MEMBERS).all()


@pytest.mark.parametrize("make", MEMBERSHIP_FACTORIES)
def test_membership_batch_edge_cases(make):
    structure = make()
    structure.add_batch([])
    assert structure.n_items == 0
    before = structure.memory.stats.snapshot()
    empty = structure.query_batch([])
    assert empty.shape == (0,)
    assert structure.memory.stats == before

    single = make()
    single_scalar = make()
    single.add_batch([MEMBERS[0]])
    single_scalar.add(MEMBERS[0])
    assert single.bits.to_bytes() == single_scalar.bits.to_bytes()
    assert single.query_batch([MEMBERS[0]]).tolist() == [True]
    assert single_scalar.query(MEMBERS[0]) is True
    assert_same_stats(single, single_scalar)


@settings(max_examples=25, deadline=None)
@given(
    elements=st.lists(st.binary(min_size=0, max_size=24), unique=True,
                      min_size=1, max_size=60),
    k=st.sampled_from([2, 4, 8]),
    word_bits=st.sampled_from([32, 64]),
    seed=st.integers(min_value=0, max_value=5),
)
def test_shbf_m_batch_property(elements, k, word_bits, seed):
    """Property: for arbitrary byte elements and configurations, the
    batch pipeline is indistinguishable from the scalar one."""
    from repro.hashing import Blake2Family

    split = max(1, len(elements) // 2)
    members, probes = elements[:split], elements
    batch = ShiftingBloomFilter(
        m=1024, k=k, word_bits=word_bits, family=Blake2Family(seed=seed))
    scalar = ShiftingBloomFilter(
        m=1024, k=k, word_bits=word_bits, family=Blake2Family(seed=seed))
    batch.add_batch(members)
    for element in members:
        scalar.add(element)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert batch.query_batch(probes).tolist() \
        == [scalar.query(p) for p in probes]
    assert batch.memory.stats == scalar.memory.stats


# ----------------------------------------------------------------------
# Property-based geometry sweep (all membership filters)
# ----------------------------------------------------------------------
# A 16-element alphabet makes generated batches adversarially
# duplicate-heavy: the same element is inserted and queried many times
# inside one batch, exercising the batch kernels' read-modify-write
# aggregation (np.bitwise_or.at) and the early-exit billing under
# repeated probes — exactly where a naive vectorisation would diverge
# from the scalar loops.
DUP_ELEMENTS = st.integers(min_value=0, max_value=15).map(
    lambda i: ("dup-%02d" % i).encode())

GEOMETRY_KINDS = {
    "bf": lambda m, k, w, fam: BloomFilter(m=m, k=k, family=fam),
    "shbf_m": lambda m, k, w, fam: ShiftingBloomFilter(
        m=m, k=k, word_bits=w, family=fam),
    "cshbf_m": lambda m, k, w, fam: CountingShiftingBloomFilter(
        m=m, k=k, word_bits=w, family=fam),
    "one_mem_bf": lambda m, k, w, fam: OneMemoryBloomFilter(
        m=m, k=k, word_bits=w, family=fam),
    # t=2 shifts need k divisible by t + 1
    "generalized": lambda m, k, w, fam: GeneralizedShiftingBloomFilter(
        m=m, k=6 if k <= 6 else 12, t=2, word_bits=w, family=fam),
}


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(sorted(GEOMETRY_KINDS)),
    m=st.integers(min_value=128, max_value=4096),
    k=st.sampled_from([2, 4, 6, 8]),
    word_bits=st.sampled_from([32, 64]),
    seed=st.integers(min_value=0, max_value=7),
    members=st.lists(DUP_ELEMENTS, min_size=1, max_size=40),
    probes=st.lists(DUP_ELEMENTS, min_size=1, max_size=60),
)
def test_property_geometry_sweep_batch_equivalence(
        kind, m, k, word_bits, seed, members, probes):
    """Property: for every filter kind, generated ``(m, k, n, w)``
    geometry and duplicate-heavy batches, the batch pipeline leaves
    bit-identical state, returns scalar verdicts and bills scalar
    access totals."""
    from repro.hashing import Blake2Family

    make = GEOMETRY_KINDS[kind]
    batch = make(m, k, word_bits, Blake2Family(seed=seed))
    scalar = make(m, k, word_bits, Blake2Family(seed=seed))
    batch.add_batch(members)
    for element in members:
        scalar.add(element)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert batch.n_items == scalar.n_items
    assert_same_stats(batch, scalar)
    if hasattr(batch, "counters"):
        assert batch.counters.to_list() == scalar.counters.to_list()
    assert batch.query_batch(probes).tolist() \
        == [scalar.query(p) for p in probes]
    assert_same_stats(batch, scalar)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=512, max_value=4096),
    k=st.sampled_from([2, 4]),
    c_max=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=5),
    probes=st.lists(DUP_ELEMENTS, min_size=1, max_size=50),
)
def test_property_multiplicity_duplicate_query_batches(
        m, k, c_max, seed, probes):
    """ShBF_x inserts must be unique, but *query* batches may repeat the
    same element arbitrarily; batch answers and billing stay scalar."""
    from repro.hashing import Blake2Family

    members = [("dup-%02d" % i).encode() for i in range(0, 16, 2)]
    counts = [(i % c_max) + 1 for i in range(len(members))]
    batch = ShiftingMultiplicityFilter(
        m=m, k=k, c_max=c_max, family=Blake2Family(seed=seed))
    scalar = ShiftingMultiplicityFilter(
        m=m, k=k, c_max=c_max, family=Blake2Family(seed=seed))
    batch.add_batch(members, counts)
    for element, count in zip(members, counts):
        scalar.add(element, count)
    assert batch.query_batch(probes).tolist() \
        == [scalar.query(p).reported for p in probes]
    assert batch.memory.stats == scalar.memory.stats


@settings(max_examples=25, deadline=None)
@given(
    duplicates=st.lists(DUP_ELEMENTS, min_size=2, max_size=12),
    k=st.sampled_from([2, 4, 8]),
)
def test_property_duplicate_heavy_adds_match_scalar_readds(duplicates, k):
    """Re-inserting the same element within one batch is a no-op on bit
    state but still bills one write per probe pair — like scalar
    re-adds.  (ShBF_M is the representative; the geometry sweep above
    covers the rest.)"""
    batch = ShiftingBloomFilter(m=1024, k=k)
    scalar = ShiftingBloomFilter(m=1024, k=k)
    batch.add_batch(duplicates)
    for element in duplicates:
        scalar.add(element)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert batch.n_items == scalar.n_items
    assert batch.memory.stats == scalar.memory.stats


# ----------------------------------------------------------------------
# Cross-family equivalence: the batch ≡ scalar contract must hold for
# every hash-family wiring, and the vectorised family's own scalar and
# batch paths must be bit-identical for arbitrary inputs.
# ----------------------------------------------------------------------
ANY_ELEMENT = st.one_of(
    st.binary(min_size=0, max_size=80),  # crosses the 32-byte boundary
    st.text(max_size=40),
    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
    st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(
    elements=st.lists(ANY_ELEMENT, min_size=1, max_size=40),
    count=st.integers(min_value=0, max_value=12),
    start=st.integers(min_value=0, max_value=9),
    seed=st.integers(min_value=0, max_value=50),
)
def test_property_vectorized_scalar_batch_bit_identical(
        elements, count, start, seed):
    """Property: for arbitrary element mixes (bytes of any length, str,
    int, bool), VectorizedFamily's NumPy batch kernel reproduces the
    pure-Python scalar path bit for bit, for any (count, start, seed)."""
    from repro.hashing import VectorizedFamily

    fam = VectorizedFamily(seed=seed)
    batch = fam.values_batch(elements, count, start=start)
    assert batch.shape == (len(elements), count)
    for row, element in enumerate(elements):
        scalar = fam.values(element, count, start=start)
        assert [int(v) for v in batch[row]] == scalar
        assert list(fam.iter_values(element, count, start=start)) == scalar


FAMILY_WIRINGS = ["blake2b", "vector64", "km-double"]


@pytest.mark.parametrize("kind", FAMILY_WIRINGS)
@pytest.mark.parametrize("make", [
    pytest.param(lambda fam: BloomFilter(m=8192, k=7, family=fam),
                 id="bf"),
    pytest.param(lambda fam: ShiftingBloomFilter(m=8192, k=8, family=fam),
                 id="shbf_m"),
    pytest.param(
        lambda fam: CountingShiftingBloomFilter(m=8192, k=8, family=fam),
        id="cshbf_m"),
    pytest.param(lambda fam: OneMemoryBloomFilter(m=8192, k=8, family=fam),
                 id="one_mem_bf"),
    pytest.param(
        lambda fam: GeneralizedShiftingBloomFilter(
            m=8192, k=12, t=2, family=fam),
        id="generalized_t2"),
])
def test_family_agnostic_batch_equivalence(kind, make):
    """State, verdicts and AccessStats equivalence is family-agnostic:
    whatever family is wired, batch and scalar paths are twins."""
    from repro.hashing import make_family

    batch, scalar = make(make_family(kind)), make(make_family(kind))
    batch.add_batch(MEMBERS)
    for element in MEMBERS:
        scalar.add(element)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert_same_stats(batch, scalar)
    assert batch.query_batch(MIXED).tolist() \
        == [scalar.query(q) for q in MIXED]
    assert_same_stats(batch, scalar)
    assert batch.query_batch(MEMBERS).all()


@pytest.mark.parametrize("kind", FAMILY_WIRINGS)
def test_family_agnostic_sharded_store_equivalence(kind):
    """The sharded store's batch routing is family-agnostic too: same
    verdicts and identical aggregate AccessStats as scalar routing,
    whichever family backs the shards (and the router)."""
    from repro.hashing import make_family
    from repro.store import ShardedFilterStore, ShardRouter

    router_kind = "vector64" if kind == "vector64" else "blake2b"

    def build():
        return ShardedFilterStore(
            lambda shard: ShiftingBloomFilter(
                m=4096, k=8, family=make_family(kind)),
            n_shards=4,
            router=ShardRouter(4, family_kind=router_kind))

    batch, scalar = build(), build()
    batch.add_batch(MEMBERS)
    for element in MEMBERS:
        scalar.add(element)
    for ours, theirs in zip(batch.shards, scalar.shards):
        assert ours.bits.to_bytes() == theirs.bits.to_bytes()
        assert ours.n_items == theirs.n_items
    assert batch.query_batch(MIXED).tolist() \
        == [scalar.query(q) for q in MIXED]
    assert batch.memory.stats == scalar.memory.stats
    assert batch.report().total == scalar.report().total


def test_counting_membership_batch_keeps_tiers_synchronised():
    batch = CountingShiftingBloomFilter(m=4096, k=8)
    batch.add_batch(MEMBERS[:150])
    assert batch.check_synchronised()
    scalar = CountingShiftingBloomFilter(m=4096, k=8)
    for element in MEMBERS[:150]:
        scalar.add(element)
    assert batch.counters.to_list() == scalar.counters.to_list()


# ----------------------------------------------------------------------
# Association (ShBF_A)
# ----------------------------------------------------------------------
S1 = MEMBERS[:250]
S2 = MEMBERS[150:350]  # overlaps S1 — intersection is first-class in ShBF_A


def test_association_build_batch_equivalence():
    batch = ShiftingAssociationFilter(m=8192, k=8)
    scalar = ShiftingAssociationFilter(m=8192, k=8)
    batch.build_batch(S1, S2)
    scalar.build(S1, S2)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert batch.memory.stats == scalar.memory.stats
    assert (batch.n_s1, batch.n_s2) == (scalar.n_s1, scalar.n_s2)


@pytest.mark.parametrize("make", [
    pytest.param(lambda: ShiftingAssociationFilter(m=8192, k=8),
                 id="shbf_a"),
    pytest.param(lambda: CountingShiftingAssociationFilter(m=8192, k=8),
                 id="cshbf_a"),
])
def test_association_query_batch_equivalence(make):
    batch, scalar = make(), make()
    batch.build(S1, S2)
    scalar.build(S1, S2)
    queries = MEMBERS[:400] + ABSENT[:100]
    got = batch.query_batch(queries)
    want = [scalar.query(q) for q in queries]
    assert [(a.candidates, a.clear) for a in got] \
        == [(a.candidates, a.clear) for a in want]
    assert batch.memory.stats == scalar.memory.stats
    assert batch.query_batch([]) == []


# ----------------------------------------------------------------------
# Multiplicity (ShBF_x)
# ----------------------------------------------------------------------
COUNTS = [(i % 57) + 1 for i in range(len(MEMBERS))]


@pytest.mark.parametrize("report", ["largest", "smallest"])
def test_multiplicity_batch_equivalence(report):
    batch = ShiftingMultiplicityFilter(m=16384, k=4, c_max=57, report=report)
    scalar = ShiftingMultiplicityFilter(m=16384, k=4, c_max=57, report=report)
    batch.add_batch(MEMBERS, COUNTS)
    for element, count in zip(MEMBERS, COUNTS):
        scalar.add(element, count)
    assert batch.bits.to_bytes() == scalar.bits.to_bytes()
    assert batch.memory.stats == scalar.memory.stats

    got = batch.query_batch(MIXED)
    assert got.dtype == np.int64
    assert got.tolist() == [scalar.query(q).reported for q in MIXED]
    assert batch.memory.stats == scalar.memory.stats
    assert batch.query_batch([]).shape == (0,)


def test_multiplicity_batch_wide_cmax_fallback():
    batch = ShiftingMultiplicityFilter(m=16384, k=4, c_max=80)
    scalar = ShiftingMultiplicityFilter(m=16384, k=4, c_max=80)
    counts = [(i % 80) + 1 for i in range(100)]
    batch.add_batch(MEMBERS[:100], counts)
    for element, count in zip(MEMBERS[:100], counts):
        scalar.add(element, count)
    queries = MEMBERS[:100] + ABSENT[:50]
    assert batch.query_batch(queries).tolist() \
        == [scalar.query(q).reported for q in queries]
    assert batch.memory.stats == scalar.memory.stats


def test_multiplicity_add_batch_validates_before_mutating():
    structure = ShiftingMultiplicityFilter(m=4096, k=4, c_max=8)
    snapshot = structure.bits.to_bytes()
    with pytest.raises(ConfigurationError):
        structure.add_batch([b"a", b"b"], [1])  # length mismatch
    with pytest.raises(ConfigurationError):
        structure.add_batch([b"a", b"b"], [1, 99])  # count over c_max
    with pytest.raises(ConfigurationError):
        structure.add_batch([b"a", b"a"], [1, 2])  # duplicate in batch
    assert structure.bits.to_bytes() == snapshot
    assert structure.n_items == 0


def test_counting_multiplicity_query_batch_equivalence():
    batch = CountingShiftingMultiplicityFilter(m=8192, k=4, c_max=15)
    scalar = CountingShiftingMultiplicityFilter(m=8192, k=4, c_max=15)
    for i, element in enumerate(MEMBERS[:120]):
        for _ in range((i % 5) + 1):
            batch.add(element)
            scalar.add(element)
    queries = MEMBERS[:120] + ABSENT[:40]
    assert batch.query_batch(queries).tolist() \
        == [scalar.query(q).reported for q in queries]
    assert batch.memory.stats == scalar.memory.stats
