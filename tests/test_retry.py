"""BackoffPolicy, RetryBudget and call_with_retries."""

import asyncio
import random

import pytest

from repro.errors import (
    ConfigurationError,
    RetryBudgetExceededError,
    remote_error,
)
from repro.retry import BackoffPolicy, RetryBudget, call_with_retries


class TestBackoffPolicy:
    def test_unjittered_delays_are_capped_exponential(self):
        policy = BackoffPolicy(base=0.1, cap=0.5, multiplier=2.0,
                               jitter="none")
        assert [policy.delay(n) for n in range(4)] == [
            0.1, 0.2, 0.4, 0.5]

    def test_full_jitter_stays_under_the_envelope(self):
        policy = BackoffPolicy(base=0.1, cap=2.0, multiplier=2.0)
        rng = random.Random(0)
        for attempt in range(6):
            envelope = min(2.0, 0.1 * 2.0 ** attempt)
            for _ in range(50):
                assert 0.0 <= policy.delay(attempt, rng) <= envelope

    def test_jitter_is_seed_deterministic(self):
        policy = BackoffPolicy()
        a = [policy.delay(n, random.Random(4)) for n in range(5)]
        b = [policy.delay(n, random.Random(4)) for n in range(5)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter="decorrelated")


class TestRetryBudget:
    def test_capacity_then_exhaustion(self):
        now = [0.0]
        budget = RetryBudget(capacity=3, refill_per_s=0.0,
                             clock=lambda: now[0])
        for _ in range(3):
            budget.spend()
        with pytest.raises(RetryBudgetExceededError):
            budget.spend()
        assert budget.spent == 3

    def test_tokens_refill_over_time(self):
        now = [0.0]
        budget = RetryBudget(capacity=2, refill_per_s=1.0,
                             clock=lambda: now[0])
        budget.spend()
        budget.spend()
        with pytest.raises(RetryBudgetExceededError):
            budget.spend()
        now[0] = 1.5
        budget.spend()  # 1.5 tokens refilled
        assert budget.available() < 1.0

    def test_refill_never_exceeds_capacity(self):
        now = [0.0]
        budget = RetryBudget(capacity=2, refill_per_s=10.0,
                             clock=lambda: now[0])
        now[0] = 100.0
        assert budget.available() == 2.0


class TestCallWithRetries:
    def run(self, coro):
        return asyncio.run(coro)

    def test_retries_until_success(self):
        attempts = []

        async def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionResetError("boom")
            return "done"

        result = self.run(call_with_retries(
            flaky, policy=BackoffPolicy(base=0.0, jitter="none")))
        assert result == "done"
        assert len(attempts) == 3

    def test_gives_up_after_max_attempts(self):
        attempts = []

        async def always_down():
            attempts.append(1)
            raise ConnectionResetError("boom")

        with pytest.raises(ConnectionResetError):
            self.run(call_with_retries(
                always_down,
                policy=BackoffPolicy(base=0.0, jitter="none",
                                     max_attempts=2)))
        assert len(attempts) == 3  # initial call + 2 retries

    def test_remote_errors_never_retried(self):
        # A remote-stamped error means the peer is alive and said no;
        # even a retryable type must not be retried.
        attempts = []

        async def rejected():
            attempts.append(1)
            exc = ConnectionResetError("server said no")
            exc.remote = True
            raise exc

        with pytest.raises(ConnectionResetError):
            self.run(call_with_retries(rejected))
        assert len(attempts) == 1

    def test_remote_error_helper_stamps_the_flag(self):
        exc = remote_error("ConfigurationError", "bad k")
        assert exc.remote is True
        assert isinstance(exc, ConfigurationError)

    def test_unlisted_errors_pass_through(self):
        async def bug():
            raise ValueError("not a transport problem")

        with pytest.raises(ValueError):
            self.run(call_with_retries(bug))

    def test_budget_bounds_retries(self):
        now = [0.0]
        budget = RetryBudget(capacity=1, refill_per_s=0.0,
                             clock=lambda: now[0])

        async def always_down():
            raise ConnectionResetError("boom")

        with pytest.raises(RetryBudgetExceededError):
            self.run(call_with_retries(
                always_down, budget=budget,
                policy=BackoffPolicy(base=0.0, jitter="none",
                                     max_attempts=5)))
        assert budget.spent == 1

    def test_on_retry_callback_sees_each_failure(self):
        seen = []

        async def flaky():
            if len(seen) < 2:
                raise ConnectionResetError("boom")
            return "ok"

        self.run(call_with_retries(
            flaky, policy=BackoffPolicy(base=0.0, jitter="none"),
            on_retry=lambda attempt, exc: seen.append(
                (attempt, type(exc).__name__))))
        assert seen == [(0, "ConnectionResetError"),
                        (1, "ConnectionResetError")]
