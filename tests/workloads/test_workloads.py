"""Tests for the query-workload builders."""

import pytest

from repro.core.association_types import Association
from repro.errors import ConfigurationError
from repro.workloads import (
    build_association_workload,
    build_membership_workload,
    build_multiplicity_workload,
    build_replication_workload,
    run_membership_queries,
)


class TestMembershipWorkload:
    def test_members_and_negatives_disjoint(self):
        workload = build_membership_workload(500, 2000, seed=1)
        assert not set(workload.members) & set(workload.negatives)
        assert workload.n == 500

    def test_mixed_queries_shape(self):
        """§6.2.2: 2n queries, n of them members."""
        workload = build_membership_workload(300, 300, seed=1)
        mixed = workload.mixed_queries()
        assert len(mixed) == 600
        members = set(workload.members)
        assert sum(1 for q in mixed if q in members) == 300

    def test_deterministic(self):
        a = build_membership_workload(100, 100, seed=9)
        b = build_membership_workload(100, 100, seed=9)
        assert a.members == b.members
        assert a.negatives == b.negatives

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_membership_workload(0, 10)

    def test_mixed_query_batches_preserve_order(self):
        workload = build_membership_workload(100, 100, seed=2)
        batches = workload.mixed_query_batches(64)
        assert [q for batch in batches for q in batch] \
            == workload.mixed_queries()
        assert all(len(batch) <= 64 for batch in batches)
        with pytest.raises(ConfigurationError):
            workload.mixed_query_batches(0)

    def test_run_membership_queries_scalar_vs_batch(self):
        from repro.core import ShiftingBloomFilter

        workload = build_membership_workload(200, 200, seed=3)
        structure = ShiftingBloomFilter(m=8192, k=8)
        structure.add_batch(list(workload.members))
        queries = workload.mixed_queries()
        scalar = run_membership_queries(structure, queries)
        stats_after_scalar = structure.memory.stats.snapshot()
        for batch_size in (1, 37, 128, 10_000):
            assert run_membership_queries(
                structure, queries, batch_size=batch_size) == scalar
        # batch driving bills the same traffic per pass as scalar driving
        delta = structure.memory.stats.diff(stats_after_scalar)
        assert delta.read_ops == 4 * stats_after_scalar.read_ops
        assert delta.read_words == 4 * stats_after_scalar.read_words


class TestAssociationWorkload:
    def test_region_geometry(self):
        workload = build_association_workload(
            n1=1000, n2=1000, n_intersection=250, n_queries=500, seed=1)
        assert workload.n1 == 1000
        assert workload.n2 == 1000
        assert workload.n_intersection == 250
        assert len(workload.s1_only) == 750
        assert len(workload.s2_only) == 750
        assert len(set(workload.s1) & set(workload.s2)) == 250

    def test_queries_balanced_over_regions(self):
        workload = build_association_workload(
            n1=600, n2=600, n_intersection=150, n_queries=3000, seed=2)
        from collections import Counter

        counts = Counter(truth for _, truth in workload.queries)
        for region in Association:
            assert counts[region] == pytest.approx(1000, rel=0.2)

    def test_query_truth_is_consistent(self):
        workload = build_association_workload(
            n1=200, n2=200, n_intersection=50, n_queries=400, seed=3)
        s1_only = set(workload.s1_only)
        both = set(workload.both)
        s2_only = set(workload.s2_only)
        for element, truth in workload.queries:
            if truth is Association.S1_ONLY:
                assert element in s1_only
            elif truth is Association.BOTH:
                assert element in both
            else:
                assert element in s2_only

    def test_empty_intersection_supported(self):
        workload = build_association_workload(
            n1=100, n2=100, n_intersection=0, n_queries=50, seed=1)
        assert workload.n_intersection == 0
        assert all(truth is not Association.BOTH
                   for _, truth in workload.queries)

    def test_oversized_intersection_rejected(self):
        with pytest.raises(ConfigurationError):
            build_association_workload(
                n1=100, n2=100, n_intersection=150, n_queries=10)


class TestMultiplicityWorkload:
    def test_counts_within_cap(self):
        workload = build_multiplicity_workload(
            n_distinct=500, c_max=57, n_absent=100, seed=1)
        assert workload.n_distinct == 500
        assert all(1 <= c <= 57 for _, c in workload.counts)
        assert len(workload.absent_queries) == 100

    def test_absent_disjoint_from_members(self):
        workload = build_multiplicity_workload(
            n_distinct=300, c_max=10, n_absent=300, seed=2)
        assert not set(workload.member_queries) & set(
            workload.absent_queries)

    def test_count_map_and_totals(self):
        workload = build_multiplicity_workload(
            n_distinct=100, c_max=5, seed=3)
        count_map = workload.count_map
        assert len(count_map) == 100
        assert workload.total_occurrences == sum(count_map.values())

    def test_deterministic(self):
        a = build_multiplicity_workload(50, c_max=8, seed=4)
        b = build_multiplicity_workload(50, c_max=8, seed=4)
        assert a.counts == b.counts

    def test_unrealistic_c_max_rejected(self):
        with pytest.raises(ConfigurationError):
            build_multiplicity_workload(10, c_max=100000)


class TestReplicationWorkload:
    def test_failover_split_is_exact(self):
        workload = build_replication_workload(1000, seed=1)
        assert workload.failover_at == 750  # default: 3/4 of the stream
        assert (workload.acknowledged + workload.in_flight
                == workload.members)
        assert len(workload.acknowledged) == 750

    def test_write_batches_never_straddle_the_kill(self):
        workload = build_replication_workload(
            1000, failover_at=333, seed=2)
        pre, post = workload.write_batches(64)
        flat_pre = [e for batch in pre for e in batch]
        flat_post = [e for batch in post for e in batch]
        assert tuple(flat_pre) == workload.acknowledged
        assert tuple(flat_post) == workload.in_flight

    def test_read_mix_interleaves_acknowledged_and_absent(self):
        workload = build_replication_workload(400, seed=3)
        mix = workload.read_mix()
        assert len(mix) == 2 * workload.failover_at
        assert tuple(mix[0::2]) == workload.acknowledged
        assert not set(mix[0::2]) & set(mix[1::2])

    def test_deterministic_by_seed(self):
        a = build_replication_workload(200, seed=7)
        b = build_replication_workload(200, seed=7)
        assert a == b
        assert a != build_replication_workload(200, seed=8)

    def test_failover_beyond_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            build_replication_workload(100, failover_at=101)
