"""Tests for element canonicalisation, errors, and answer types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import (
    require_even,
    require_non_negative,
    require_positive,
    require_probability,
    to_bytes,
)
from repro.core.association_types import Association, AssociationAnswer
from repro.core.interfaces import (
    MultiplicityAnswer,
    largest_candidate,
    smallest_candidate,
)
from repro.errors import (
    CapacityError,
    ConfigurationError,
    CounterOverflowError,
    CounterUnderflowError,
    ReproError,
    UnsupportedOperationError,
)


class TestToBytes:
    def test_bytes_passthrough(self):
        assert to_bytes(b"abc") == b"abc"

    def test_bytearray_and_memoryview(self):
        assert to_bytes(bytearray(b"abc")) == b"abc"
        assert to_bytes(memoryview(b"abc")) == b"abc"

    def test_str_utf8(self):
        assert to_bytes("abc") == b"abc"
        assert to_bytes("héllo") == "héllo".encode("utf-8")

    def test_int_deterministic_and_injective(self):
        values = [0, 1, -1, 255, 256, -256, 2**64, -(2**64)]
        encoded = [to_bytes(v) for v in values]
        assert len(set(encoded)) == len(values)

    def test_int_roundtrip_signed(self):
        for value in (-300, -1, 0, 1, 300, 2**40):
            data = to_bytes(value)
            assert int.from_bytes(data, "big", signed=True) == value

    def test_bool_distinct_from_equal_int(self):
        assert to_bytes(True) != to_bytes(1)
        assert to_bytes(False) != to_bytes(0)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            to_bytes(1.5)

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            to_bytes(None)

    @given(value=st.integers())
    def test_property_int_injective(self, value):
        assert to_bytes(value) != to_bytes(value + 1)


class TestValidators:
    def test_require_positive(self):
        assert require_positive("x", 3) == 3
        for bad in (0, -1, 1.5, True, "3"):
            with pytest.raises(ConfigurationError):
                require_positive("x", bad)

    def test_require_non_negative(self):
        assert require_non_negative("x", 0) == 0
        with pytest.raises(ConfigurationError):
            require_non_negative("x", -1)
        with pytest.raises(ConfigurationError):
            require_non_negative("x", True)

    def test_require_probability(self):
        assert require_probability("p", 0.5) == 0.5
        for bad in (0.0, 1.0, -0.1, 1.1, float("nan"), "half"):
            with pytest.raises(ConfigurationError):
                require_probability("p", bad)

    def test_require_even(self):
        assert require_even("k", 8) == 8
        with pytest.raises(ConfigurationError):
            require_even("k", 7)
        with pytest.raises(ConfigurationError):
            require_even("k", 0)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ConfigurationError, CapacityError,
                    CounterOverflowError, CounterUnderflowError,
                    UnsupportedOperationError):
            assert issubclass(exc, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_capacity_error_is_runtime_error(self):
        assert issubclass(CapacityError, RuntimeError)

    def test_overflow_is_capacity(self):
        assert issubclass(CounterOverflowError, CapacityError)


class TestAssociationAnswer:
    def test_outcome_numbering_matches_paper(self):
        cases = {
            frozenset({Association.S1_ONLY}): 1,
            frozenset({Association.BOTH}): 2,
            frozenset({Association.S2_ONLY}): 3,
            frozenset({Association.S1_ONLY, Association.BOTH}): 4,
            frozenset({Association.S2_ONLY, Association.BOTH}): 5,
            frozenset({Association.S1_ONLY, Association.S2_ONLY}): 6,
            frozenset(Association): 7,
            frozenset(): 0,
        }
        for candidates, outcome in cases.items():
            answer = AssociationAnswer(candidates=candidates, clear=False)
            assert answer.outcome == outcome

    def test_declarations_are_distinct(self):
        subsets = [
            frozenset({Association.S1_ONLY}),
            frozenset({Association.BOTH}),
            frozenset({Association.S2_ONLY}),
            frozenset({Association.S1_ONLY, Association.BOTH}),
            frozenset({Association.S2_ONLY, Association.BOTH}),
            frozenset({Association.S1_ONLY, Association.S2_ONLY}),
            frozenset(Association),
            frozenset(),
        ]
        declarations = {
            AssociationAnswer(candidates=s, clear=False).declaration
            for s in subsets
        }
        assert len(declarations) == 8

    def test_plain_set_normalised(self):
        answer = AssociationAnswer(
            candidates={Association.BOTH}, clear=True)
        assert isinstance(answer.candidates, frozenset)
        assert answer.is_single

    def test_consistent_with(self):
        answer = AssociationAnswer(
            candidates=frozenset({Association.S1_ONLY, Association.BOTH}),
            clear=False)
        assert answer.consistent_with(Association.S1_ONLY)
        assert answer.consistent_with(Association.BOTH)
        assert not answer.consistent_with(Association.S2_ONLY)


class TestMultiplicityAnswer:
    def test_present_and_correct(self):
        answer = MultiplicityAnswer(candidates=(2, 5), reported=5)
        assert answer.present
        assert answer.correct(5)
        assert not answer.correct(2)

    def test_absent(self):
        answer = MultiplicityAnswer(candidates=(), reported=0)
        assert not answer.present
        assert answer.correct(0)

    def test_reporting_policies(self):
        assert smallest_candidate((2, 5, 9)) == 2
        assert largest_candidate((2, 5, 9)) == 9
        assert smallest_candidate(()) == 0
        assert largest_candidate(()) == 0


class TestLazyExports:
    def test_every_export_resolves(self):
        import repro

        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NotAThing

    def test_dir_lists_exports(self):
        import repro

        assert "ShiftingBloomFilter" in dir(repro)

    def test_version(self):
        import repro

        assert repro.__version__ == "1.1.0"
