"""Tests for synthetic flow traces and Zipf multiplicities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.traces import (
    FlowRecord,
    FlowTraceGenerator,
    bounded_zipf_counts,
    zipf_rank_weights,
)


class TestFlowRecord:
    def test_packs_to_13_bytes(self):
        record = FlowRecord(
            src_ip=0x0A000001, src_port=443,
            dst_ip=0xC0A80101, dst_port=55555, protocol=6)
        assert len(record.pack()) == 13

    def test_roundtrip(self):
        record = FlowRecord(
            src_ip=0x0A000001, src_port=443,
            dst_ip=0xC0A80101, dst_port=55555, protocol=17)
        assert FlowRecord.unpack(record.pack()) == record

    def test_str_is_readable(self):
        record = FlowRecord(
            src_ip=0x0A000001, src_port=443,
            dst_ip=0xC0A80101, dst_port=80, protocol=6)
        assert "10.0.0.1:443" in str(record)
        assert "192.168.1.1:80" in str(record)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlowRecord(src_ip=1 << 32, src_port=0, dst_ip=0,
                       dst_port=0, protocol=6)
        with pytest.raises(ConfigurationError):
            FlowRecord(src_ip=0, src_port=1 << 16, dst_ip=0,
                       dst_port=0, protocol=6)
        with pytest.raises(ConfigurationError):
            FlowRecord(src_ip=0, src_port=0, dst_ip=0,
                       dst_port=0, protocol=256)

    def test_unpack_validates_length(self):
        with pytest.raises(ConfigurationError):
            FlowRecord.unpack(b"\x00" * 12)

    @given(
        src_ip=st.integers(0, 2**32 - 1),
        src_port=st.integers(0, 2**16 - 1),
        dst_ip=st.integers(0, 2**32 - 1),
        dst_port=st.integers(0, 2**16 - 1),
        protocol=st.integers(0, 255),
    )
    def test_property_pack_roundtrip(
            self, src_ip, src_port, dst_ip, dst_port, protocol):
        record = FlowRecord(src_ip=src_ip, src_port=src_port,
                            dst_ip=dst_ip, dst_port=dst_port,
                            protocol=protocol)
        assert FlowRecord.unpack(record.pack()) == record


class TestFlowTraceGenerator:
    def test_distinct_flows_are_distinct(self):
        flows = FlowTraceGenerator(seed=1).distinct_flows(5000)
        assert len(set(flows)) == 5000
        assert all(len(f) == 13 for f in flows)

    def test_deterministic_by_seed(self):
        a = FlowTraceGenerator(seed=7).distinct_flows(100)
        b = FlowTraceGenerator(seed=7).distinct_flows(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = FlowTraceGenerator(seed=1).distinct_flows(100)
        b = FlowTraceGenerator(seed=2).distinct_flows(100)
        assert a != b

    def test_trace_cardinalities(self):
        """The paper's shape: total=10M over 8M distinct (here scaled)."""
        trace = FlowTraceGenerator(seed=3).trace(total=1000, distinct=800)
        assert len(trace) == 1000
        assert len(set(trace)) == 800

    def test_every_flow_appears(self):
        gen = FlowTraceGenerator(seed=4)
        flows = gen.distinct_flows(50)
        trace = gen.trace(total=500, distinct=50, flows=flows)
        assert set(trace) == set(flows)

    def test_skew_concentrates_traffic(self):
        from collections import Counter

        gen = FlowTraceGenerator(seed=5)
        flows = gen.distinct_flows(100)
        heavy = FlowTraceGenerator(seed=5).trace(
            total=20000, distinct=100, skew=1.5, flows=flows)
        uniform = FlowTraceGenerator(seed=5).trace(
            total=20000, distinct=100, skew=0.0, flows=flows)
        top_heavy = Counter(heavy).most_common(1)[0][1]
        top_uniform = Counter(uniform).most_common(1)[0][1]
        assert top_heavy > 3 * top_uniform

    def test_distinct_cannot_exceed_total(self):
        with pytest.raises(ConfigurationError):
            FlowTraceGenerator().trace(total=10, distinct=20)

    def test_supplied_flows_validated(self):
        gen = FlowTraceGenerator()
        with pytest.raises(ConfigurationError):
            gen.trace(total=10, distinct=5, flows=[b"x" * 13] * 3)

    def test_iter_packets(self):
        packets = list(FlowTraceGenerator(seed=6).iter_packets(
            total=100, distinct=10))
        assert len(packets) == 100


class TestZipf:
    def test_weights_normalised(self):
        weights = zipf_rank_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_weights_decreasing(self):
        weights = zipf_rank_weights(100, 1.0)
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_zero_skew_uniform(self):
        weights = zipf_rank_weights(10, 0.0)
        assert all(w == pytest.approx(0.1) for w in weights)

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_rank_weights(10, -1.0)

    def test_counts_within_bounds(self):
        elements = [b"e%d" % i for i in range(500)]
        counts = bounded_zipf_counts(elements, c_max=57, seed=1)
        assert set(counts) == set(elements)
        assert all(1 <= c <= 57 for c in counts.values())

    def test_counts_deterministic(self):
        elements = [b"e%d" % i for i in range(50)]
        assert bounded_zipf_counts(elements, 10, seed=3) == (
            bounded_zipf_counts(elements, 10, seed=3))

    def test_skew_favours_small_counts(self):
        elements = [b"e%d" % i for i in range(2000)]
        counts = bounded_zipf_counts(elements, c_max=20, skew=1.5, seed=2)
        ones = sum(1 for c in counts.values() if c == 1)
        maxed = sum(1 for c in counts.values() if c == 20)
        assert ones > 5 * maxed

    def test_empty_elements(self):
        assert bounded_zipf_counts([], c_max=5) == {}
