"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest


def make_elements(count: int, prefix: str = "elem") -> list[bytes]:
    """Deterministic distinct byte-string elements for filter tests."""
    return [("%s-%08d" % (prefix, i)).encode() for i in range(count)]


@pytest.fixture
def elements():
    """200 distinct member elements."""
    return make_elements(200, "member")


@pytest.fixture
def negatives():
    """2000 distinct elements disjoint from the ``elements`` fixture."""
    return make_elements(2000, "absent")
