"""Tests for the exact occupancy-distribution FPR (§3.4.1 discussion)."""

import pytest

from repro.analysis import bf_fpr
from repro.analysis.exact import bf_fpr_occupancy, occupancy_distribution
from repro.errors import ConfigurationError


class TestOccupancyDistribution:
    def test_single_throw(self):
        p = occupancy_distribution(10, 1)
        assert p[1] == pytest.approx(1.0)

    def test_distribution_sums_to_one(self):
        p = occupancy_distribution(100, 250)
        assert p.sum() == pytest.approx(1.0)

    def test_cannot_exceed_throws_or_bins(self):
        p = occupancy_distribution(10, 3)
        assert p[4:].sum() == pytest.approx(0.0)
        p = occupancy_distribution(3, 50)
        # after many throws all three bins are essentially occupied
        assert p[3] == pytest.approx(1.0, abs=1e-6)

    def test_mean_matches_closed_form(self):
        """E[X] = m (1 - (1 - 1/m)^t)."""
        m, t = 200, 300
        p = occupancy_distribution(m, t)
        mean = sum(i * pi for i, pi in enumerate(p))
        assert mean == pytest.approx(m * (1 - (1 - 1 / m) ** t),
                                     rel=1e-9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            occupancy_distribution(0, 5)


class TestExactFpr:
    def test_bose_inequality(self):
        """Bose et al.: the classic formula underestimates the truth."""
        for m, n, k in ((1000, 100, 5), (2200, 200, 8), (500, 80, 4)):
            exact = bf_fpr_occupancy(m, n, k)
            classic = bf_fpr(m, n, k)
            assert exact >= classic

    def test_error_negligible_at_paper_sizes(self):
        """§3.4.1's justification for using Bloom's formula anyway."""
        m, n, k = 22008, 1200, 8
        exact = bf_fpr_occupancy(m, n, k)
        classic = bf_fpr(m, n, k)
        assert exact == pytest.approx(classic, rel=0.01)

    def test_error_visible_at_tiny_sizes(self):
        """Bose's point: at small m, k the gap is real."""
        exact = bf_fpr_occupancy(32, 8, 3)
        classic = bf_fpr(32, 8, 3)
        assert exact > classic * 1.01

    def test_bounds(self):
        value = bf_fpr_occupancy(100, 50, 4)
        assert 0.0 < value < 1.0