"""Statistical regression tests: observed error rates vs closed forms.

Each test builds a filter from a seeded deterministic workload, measures
the empirical false-positive (or clear-answer) rate over a large probe
set, and pins it to the corresponding closed-form prediction from
:mod:`repro.analysis` within a tolerance band.  Every input is seeded,
so the observed rates are *fixed numbers* — the bands only need to
absorb model error plus one realisation's sampling noise, and a
regression in hashing, probing or the analysis formulas moves the
observed or predicted side and trips the band.

Band sizing: with ``N = 20000`` probes and rates around 1–3%, one
standard deviation of the binomial estimate is 5–7% relative; the bands
allow ±20–25% relative (≈ 3–4 sigma) plus a small absolute floor for
the near-zero regimes.
"""

from __future__ import annotations

import pytest

from repro.analysis.association import (
    association_false_region_probability,
    shbf_a_clear_answer_probability,
)
from repro.analysis.membership import bf_fpr, shbf_m_fpr
from repro.analysis.one_mem import one_mem_bf_fpr
from repro.baselines import BloomFilter, OneMemoryBloomFilter
from repro.core import ShiftingAssociationFilter, ShiftingBloomFilter
from repro.hashing import Blake2Family, VectorizedFamily
from repro.store import ShardedFilterStore
from tests.conftest import make_elements

N_MEMBERS = 2000
N_PROBES = 20000
SEED = 42

MEMBERS = make_elements(N_MEMBERS, "fpr-member")
NEGATIVES = make_elements(N_PROBES, "fpr-absent")


def observed_fpr(filt) -> float:
    filt.add_batch(MEMBERS)
    return float(filt.query_batch(NEGATIVES).mean())


def check(observed: float, predicted: float,
          rel: float = 0.2, abs_floor: float = 0.002) -> None:
    assert observed == pytest.approx(
        predicted, rel=rel, abs=abs_floor), \
        "observed %.5f vs predicted %.5f" % (observed, predicted)


class TestMembershipFPR:
    def test_bf_matches_eq8(self):
        filt = BloomFilter(m=16384, k=6, family=Blake2Family(seed=SEED))
        check(observed_fpr(filt), bf_fpr(m=16384, n=N_MEMBERS, k=6))

    def test_bf_sparse_regime(self):
        filt = BloomFilter(m=65536, k=6, family=Blake2Family(seed=SEED))
        check(observed_fpr(filt), bf_fpr(m=65536, n=N_MEMBERS, k=6))

    def test_shbf_m_matches_theorem1(self):
        filt = ShiftingBloomFilter(
            m=16384, k=8, family=Blake2Family(seed=SEED))
        check(observed_fpr(filt),
              shbf_m_fpr(m=16384, n=N_MEMBERS, k=8, w_bar=filt.w_bar))

    def test_shbf_m_small_w_bar(self):
        """Fig. 3's sensitivity regime: a tight offset range raises the
        FPR exactly as the ``p^2 / (w_bar - 1)`` excess predicts."""
        filt = ShiftingBloomFilter(
            m=16384, k=8, w_bar=20, family=Blake2Family(seed=SEED))
        check(observed_fpr(filt),
              shbf_m_fpr(m=16384, n=N_MEMBERS, k=8, w_bar=20))

    def test_one_mem_bf_matches_poisson_model(self):
        """The Poisson occupancy model treats a query's ``k`` in-word
        probes as distinct, but 8 draws from 64 positions collide often
        (birthday: ~40% of queries), and a repeated probe is checked
        once — which lifts the true FPR above the model.  The band is
        correspondingly wider; the model still pins the scale and any
        hashing regression by an integer factor."""
        filt = OneMemoryBloomFilter(
            m=16384, k=8, family=Blake2Family(seed=SEED))
        check(observed_fpr(filt),
              one_mem_bf_fpr(m=16384, n=N_MEMBERS, k=8, word_bits=64),
              rel=0.35)

    def test_sharded_store_matches_per_shard_closed_form(self):
        """A 4-shard ShBF_M store's FPR follows Theorem 1 with each
        shard's own load ``n_s`` — sharding changes the operating point,
        not the model."""
        store = ShardedFilterStore(
            lambda s: ShiftingBloomFilter(
                m=8192, k=8, family=Blake2Family(seed=SEED)),
            n_shards=4)
        store.add_batch(MEMBERS)
        observed = float(store.query_batch(NEGATIVES).mean())
        hist = store.router.histogram(NEGATIVES)
        shard = next(iter(store.shards))
        predicted = sum(
            weight * shbf_m_fpr(m=8192, n=s.n_items, k=8,
                                w_bar=shard.w_bar)
            for weight, s in zip(hist / hist.sum(), store.shards)
        )
        check(observed, predicted)


class TestVectorizedFamilyFPR:
    """The vectorised mixer family must sit in the *same* closed-form
    tolerance bands as BLAKE2b — the statistical proof (on top of the
    vetting harness) that swapping the hot-path family trades zero
    accuracy for its throughput win."""

    def test_bf_matches_eq8(self):
        filt = BloomFilter(m=16384, k=6, family=VectorizedFamily(seed=SEED))
        check(observed_fpr(filt), bf_fpr(m=16384, n=N_MEMBERS, k=6))

    def test_shbf_m_matches_theorem1(self):
        filt = ShiftingBloomFilter(
            m=16384, k=8, family=VectorizedFamily(seed=SEED))
        check(observed_fpr(filt),
              shbf_m_fpr(m=16384, n=N_MEMBERS, k=8, w_bar=filt.w_bar))

    def test_shbf_m_small_w_bar(self):
        filt = ShiftingBloomFilter(
            m=16384, k=8, w_bar=20, family=VectorizedFamily(seed=SEED))
        check(observed_fpr(filt),
              shbf_m_fpr(m=16384, n=N_MEMBERS, k=8, w_bar=20))

    def test_shbf_a_clear_rate_matches_table2(self):
        s1 = MEMBERS[:1200]
        s2 = MEMBERS[1200:2000]
        filt = ShiftingAssociationFilter(
            m=16384, k=8, family=VectorizedFamily(seed=SEED))
        filt.build(s1, s2)
        answers = filt.query_batch(list(s1))
        observed = sum(1 for a in answers if a.clear) / len(answers)
        f = association_false_region_probability(
            m=16384, n_distinct=N_MEMBERS, k=8)
        predicted = shbf_a_clear_answer_probability(
            k=8, false_region_probability=f)
        assert observed == pytest.approx(predicted, rel=0.05, abs=0.02), \
            "observed %.4f vs predicted %.4f" % (observed, predicted)

    def test_same_band_as_blake2b(self):
        """Head-to-head at one operating point: both families' observed
        ShBF_M FPRs land within the same ±20% band of Theorem 1, so
        neither is statistically distinguishable from the model."""
        predicted = shbf_m_fpr(m=16384, n=N_MEMBERS, k=8, w_bar=57)
        for family in (Blake2Family(seed=SEED), VectorizedFamily(seed=SEED)):
            filt = ShiftingBloomFilter(m=16384, k=8, family=family)
            check(observed_fpr(filt), predicted)


class TestAssociationClearRate:
    def test_clear_answer_rate_matches_table2(self):
        """Fraction of clear answers over S1-only members equals
        ``(1 - f)^2`` with ``f`` from Eq. (24)."""
        s1 = MEMBERS[:1200]
        s2 = MEMBERS[1200:2000]
        filt = ShiftingAssociationFilter(
            m=16384, k=8, family=Blake2Family(seed=SEED))
        filt.build(s1, s2)
        answers = filt.query_batch(list(s1))
        observed = sum(1 for a in answers if a.clear) / len(answers)
        f = association_false_region_probability(
            m=16384, n_distinct=N_MEMBERS, k=8)
        predicted = shbf_a_clear_answer_probability(
            k=8, false_region_probability=f)
        assert observed == pytest.approx(predicted, rel=0.05, abs=0.02), \
            "observed %.4f vs predicted %.4f" % (observed, predicted)


def test_runs_are_deterministic():
    """The whole module's statistics rest on this: same seed, same
    workload, same observed rate."""
    a = BloomFilter(m=16384, k=6, family=Blake2Family(seed=SEED))
    b = BloomFilter(m=16384, k=6, family=Blake2Family(seed=SEED))
    assert observed_fpr(a) == observed_fpr(b)
