"""Tests for the closed-form models: constants, limits, reductions."""

import math

import pytest

from repro.analysis import (
    association_outcome_probabilities,
    bf_fpr,
    bf_fpr_exact,
    bf_kopt_coefficient,
    bf_min_fpr,
    bf_min_fpr_base,
    bf_optimal_k,
    best_integer_k,
    generalized_shbf_fpr,
    ibf_clear_answer_probability,
    multiplicity_fp_probability,
    one_mem_bf_fpr,
    optimal_k_numeric,
    shbf_a_clear_answer_probability,
    shbf_m_fpr,
    shbf_m_fpr_exact,
    shbf_m_kopt_coefficient,
    shbf_m_min_fpr,
    shbf_m_min_fpr_base,
    shbf_m_optimal_k,
    shbf_x_correctness_rate_absent,
    shbf_x_correctness_rate_present,
)
from repro.analysis.association import (
    association_false_region_probability,
    ibf_optimal_memory,
    shbf_a_optimal_memory,
)
from repro.errors import ConfigurationError


class TestPaperConstants:
    """The §3.4.2 / Eq. (7) / Eq. (9) headline numbers."""

    def test_shbf_kopt_coefficient(self):
        assert shbf_m_kopt_coefficient(57) == pytest.approx(0.7009, abs=5e-4)

    def test_shbf_min_fpr_base(self):
        assert shbf_m_min_fpr_base(57) == pytest.approx(0.6204, abs=5e-4)

    def test_bf_constants(self):
        assert bf_kopt_coefficient() == pytest.approx(0.6931, abs=1e-4)
        assert bf_min_fpr_base() == pytest.approx(0.6185, abs=1e-4)

    def test_eq7_form(self):
        """f_min = 0.6204^{m/n} for concrete (m, n)."""
        m, n = 160000, 10000
        assert shbf_m_min_fpr(m, n, 57) == pytest.approx(
            0.6204 ** (m / n), rel=2e-3)

    def test_eq9_form(self):
        m, n = 160000, 10000
        assert bf_min_fpr(m, n) == pytest.approx(
            0.6185 ** (m / n), rel=2e-3)

    def test_shbf_pays_negligible_fpr_premium(self):
        """§3.5's punchline: the two minima are practically equal."""
        m, n = 100000, 10000
        ratio = shbf_m_min_fpr(m, n, 57) / bf_min_fpr(m, n)
        assert 1.0 < ratio < 1.05


class TestMembershipFormulas:
    def test_bf_fpr_monotone_in_n(self):
        fprs = [bf_fpr(100000, n, 8) for n in (4000, 8000, 12000)]
        assert fprs == sorted(fprs)

    def test_shbf_fpr_monotone_in_n(self):
        fprs = [shbf_m_fpr(100000, n, 8) for n in (4000, 8000, 12000)]
        assert fprs == sorted(fprs)

    def test_shbf_fpr_decreasing_in_w_bar(self):
        """Fig. 3: larger w_bar can only help."""
        fprs = [
            shbf_m_fpr(100000, 10000, 8, w_bar)
            for w_bar in (3, 5, 10, 20, 57)
        ]
        assert fprs == sorted(fprs, reverse=True)

    def test_shbf_converges_to_bf_at_large_w_bar(self):
        """Theorem 1's footnote: w_bar -> inf recovers Eq. (8)."""
        assert shbf_m_fpr(100000, 10000, 8, 10**9) == pytest.approx(
            bf_fpr(100000, 10000, 8), rel=1e-6)

    def test_w_bar_20_within_few_percent_of_bf(self):
        """Fig. 3's reading: w_bar >= 20 makes the gap negligible."""
        f_shbf = shbf_m_fpr(100000, 10000, 10, 20)
        f_bf = bf_fpr(100000, 10000, 10)
        assert f_shbf / f_bf < 1.20

    def test_exact_vs_asymptotic_agree(self):
        assert bf_fpr_exact(22976, 2000, 8) == pytest.approx(
            bf_fpr(22976, 2000, 8), rel=1e-3)
        assert shbf_m_fpr_exact(22976, 2000, 8) == pytest.approx(
            shbf_m_fpr(22976, 2000, 8), rel=1e-3)

    def test_exact_requires_even_k(self):
        with pytest.raises(ConfigurationError):
            shbf_m_fpr_exact(1000, 100, 7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bf_fpr(0, 10, 3)
        with pytest.raises(ConfigurationError):
            shbf_m_fpr(100, 10, -1)
        with pytest.raises(ConfigurationError):
            shbf_m_fpr(100, 10, 4, w_bar=1)


class TestOptimalK:
    def test_bf_optimal_k(self):
        assert bf_optimal_k(100000, 10000) == pytest.approx(
            6.931, abs=1e-3)

    def test_shbf_optimal_k_form(self):
        m, n = 100000, 10000
        assert shbf_m_optimal_k(m, n, 57) == pytest.approx(
            0.7009 * m / n, rel=1e-3)

    def test_numeric_optimum_matches_formula(self):
        m, n = 100000, 10000
        k_star = optimal_k_numeric(
            lambda k: shbf_m_fpr(m, n, k, 57), k_max=30.0)
        assert k_star == pytest.approx(shbf_m_optimal_k(m, n, 57), rel=1e-3)

    def test_best_integer_k(self):
        m, n = 100000, 10000
        k_int = best_integer_k(
            lambda k: bf_fpr(m, n, k), bf_optimal_k(m, n))
        assert k_int == 7

    def test_best_integer_k_even(self):
        m, n = 100000, 10000
        k_even = best_integer_k(
            lambda k: shbf_m_fpr(m, n, k, 57),
            shbf_m_optimal_k(m, n, 57), even=True)
        assert k_even % 2 == 0
        assert k_even in (6, 8)

    def test_optimum_is_a_minimum(self):
        m, n = 100000, 10000
        k_star = shbf_m_optimal_k(m, n, 57)
        f_star = shbf_m_fpr(m, n, k_star, 57)
        assert f_star <= shbf_m_fpr(m, n, k_star * 0.8, 57)
        assert f_star <= shbf_m_fpr(m, n, k_star * 1.2, 57)

    def test_invalid_bracket(self):
        with pytest.raises(ConfigurationError):
            optimal_k_numeric(lambda k: k, k_max=1.0, k_min=2.0)


class TestGeneralizedFormula:
    def test_t1_reduces_to_theorem_1(self):
        for k in (4, 8, 12, 16):
            assert generalized_shbf_fpr(
                100000, 10000, k, 57, 1
            ) == pytest.approx(shbf_m_fpr(100000, 10000, k, 57), rel=1e-12)

    def test_large_w_bar_recovers_bloom(self):
        """§3.7: w -> inf gives (1 - p')^k."""
        for t in (1, 2, 3):
            assert generalized_shbf_fpr(
                100000, 10000, 12, 10**7, t
            ) == pytest.approx(bf_fpr(100000, 10000, 12), rel=1e-4)

    def test_fpr_increases_with_t(self):
        values = [
            generalized_shbf_fpr(100000, 10000, 12, 57, t)
            for t in (1, 2, 3)
        ]
        assert values == sorted(values)

    def test_w_bar_too_small_for_t(self):
        with pytest.raises(ConfigurationError):
            generalized_shbf_fpr(1000, 100, 12, w_bar=4, t=3)


class TestAssociationFormulas:
    def test_outcome_probabilities_sum_per_region(self):
        """Eq. (25) sanity: P_clear + 2 P_partial + P_none = 1."""
        for k in (4, 8, 10, 16):
            p = association_outcome_probabilities(k)
            assert p[1] + 2 * p[4] + p[7] == pytest.approx(1.0)

    def test_paper_example_k10(self):
        """§4.4's worked example at k = 10."""
        p = association_outcome_probabilities(10)
        assert p[1] == pytest.approx(0.998, abs=1e-3)
        assert p[4] == pytest.approx(9.756e-4, rel=1e-3)
        assert p[7] == pytest.approx(9.54e-7, rel=1e-2)

    def test_clear_answer_ratio(self):
        """§1.3: ShBF_A has ~1.47x the clear-answer probability of iBF."""
        k = 8
        ratio = shbf_a_clear_answer_probability(
            k) / ibf_clear_answer_probability(k)
        assert ratio == pytest.approx(1.5, abs=0.05)

    def test_ibf_never_exceeds_two_thirds(self):
        for k in range(1, 20):
            assert ibf_clear_answer_probability(k) < 2.0 / 3.0 + 1e-12

    def test_general_fill_override(self):
        f = association_false_region_probability(m=17310, n_distinct=1500,
                                                 k=8)
        assert 0.0 < f < 1.0
        assert shbf_a_clear_answer_probability(
            8, false_region_probability=f) == pytest.approx((1 - f) ** 2)

    def test_table2_memory(self):
        assert ibf_optimal_memory(1000, 1000, 8) == math.ceil(
            16000 / math.log(2))
        assert shbf_a_optimal_memory(1000, 1000, 250, 8) == math.ceil(
            1750 * 8 / math.log(2))
        # paper §6.3.1: iBF uses 1/7 more memory at n3 = n/4
        ratio = ibf_optimal_memory(1000, 1000, 8) / shbf_a_optimal_memory(
            1000, 1000, 250, 8)
        assert ratio == pytest.approx(8 / 7, rel=1e-3)

    def test_invalid_intersection(self):
        with pytest.raises(ConfigurationError):
            shbf_a_optimal_memory(100, 100, 150, 8)


class TestMultiplicityFormulas:
    def test_f0_is_bloom_fpr(self):
        assert multiplicity_fp_probability(100000, 10000, 8) == (
            pytest.approx(bf_fpr(100000, 10000, 8)))

    def test_cr_absent_decreasing_in_c(self):
        f0 = 0.01
        crs = [shbf_x_correctness_rate_absent(f0, c) for c in (1, 10, 57)]
        assert crs == sorted(crs, reverse=True)

    def test_cr_present_smallest_eq28(self):
        f0 = 0.05
        assert shbf_x_correctness_rate_present(
            f0, j=1, c=57) == pytest.approx(1.0)
        assert shbf_x_correctness_rate_present(
            f0, j=4, c=57) == pytest.approx((1 - f0) ** 3)

    def test_cr_present_largest(self):
        f0 = 0.05
        assert shbf_x_correctness_rate_present(
            f0, j=57, c=57, report="largest") == pytest.approx(1.0)
        assert shbf_x_correctness_rate_present(
            f0, j=50, c=57, report="largest") == pytest.approx(
            (1 - f0) ** 7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            shbf_x_correctness_rate_present(0.1, j=5, c=3)
        with pytest.raises(ConfigurationError):
            shbf_x_correctness_rate_present(0.1, j=1, c=3, report="mode")
        with pytest.raises(ConfigurationError):
            shbf_x_correctness_rate_absent(1.5, 3)


class TestOneMemModel:
    def test_exceeds_bloom_at_all_loads(self):
        """Jensen: word-load imbalance strictly raises FPR."""
        for n in (200, 1000, 3000):
            assert one_mem_bf_fpr(22016, n, 8) > bf_fpr(22016, n, 8)

    def test_paper_5_to_10x_claim(self):
        """§6.2.1: 1MemBF FPR is 5-10x ShBF_M's at the Fig. 7 settings."""
        m, k = 22008, 8
        ratios = [
            one_mem_bf_fpr(m, n, k) / shbf_m_fpr(m, n, k, 57)
            for n in range(1000, 1501, 100)
        ]
        assert all(4.0 < r < 15.0 for r in ratios)

    def test_monotone_in_n(self):
        values = [one_mem_bf_fpr(22016, n, 8) for n in (500, 1000, 2000)]
        assert values == sorted(values)

    def test_truncation_bound(self):
        # huge lambda exercises the tail-handling path
        value = one_mem_bf_fpr(640, 10000, 4)
        assert 0.0 < value <= 1.0
