"""The generational union-FPR closed form, pinned against simulation.

Same statistical regime as ``test_fpr_regression.py``: 20000 seeded
probes, bands of ±20–25% relative (3–4 sigma of the binomial estimate)
plus a small absolute floor.  The union form has no free parameters —
it is Theorem 1 per generation composed by independence — so a drift
here means the hashing, the store's OR sweep, or the per-filter model
regressed.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    generational_fpr,
    generational_fpr_uniform,
    shbf_m_fpr,
)
from repro.core import ShiftingBloomFilter
from repro.errors import ConfigurationError
from repro.hashing import Blake2Family
from repro.store import GenerationalStore
from tests.conftest import make_elements

SEED = 42
N_PROBES = 20000
NEGATIVES = make_elements(N_PROBES, "ttl-absent")


class TestClosedForm:
    def test_single_generation_collapses_to_theorem1(self):
        assert generational_fpr(16384, 4, [2000]) \
            == pytest.approx(shbf_m_fpr(16384, 2000, 4))

    def test_zero_load_generations_contribute_nothing(self):
        assert generational_fpr(16384, 4, [2000, 0, 0]) \
            == generational_fpr(16384, 4, [2000])

    def test_union_exceeds_any_single_window(self):
        loads = [1500, 2000, 2500]
        union = generational_fpr(16384, 4, loads)
        assert union > max(shbf_m_fpr(16384, n, 4) for n in loads)
        assert union < sum(shbf_m_fpr(16384, n, 4) for n in loads)

    def test_uniform_matches_explicit_loads(self):
        assert generational_fpr_uniform(16384, 4, 2000, 3) \
            == generational_fpr(16384, 4, [2000] * 3)

    def test_product_form_is_exact_complement(self):
        loads = [800, 1600, 2400]
        survive = math.prod(
            1.0 - shbf_m_fpr(16384, n, 4) for n in loads)
        assert generational_fpr(16384, 4, loads) \
            == pytest.approx(1.0 - survive)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generational_fpr(16384, 4, [])
        with pytest.raises(ConfigurationError):
            generational_fpr(16384, 4, [-1])
        with pytest.raises(ConfigurationError):
            generational_fpr_uniform(16384, 4, 2000, 0)


class TestRegressionBand:
    def _loaded_store(self, loads, m=16384, k=4):
        store = GenerationalStore(
            lambda seq: ShiftingBloomFilter(
                m=m, k=k, family=Blake2Family(seed=SEED)),
            generations=len(loads))
        members = make_elements(sum(loads), "ttl-member")
        cursor = 0
        # fill oldest-first, rotating between batches: loads[i] ends up
        # as the n_items of ring position i (head first)
        for index, load in enumerate(reversed(loads)):
            store.add_batch(members[cursor : cursor + load])
            cursor += load
            if index != len(loads) - 1:
                store.rotate()
        return store

    def test_observed_union_fpr_matches_closed_form(self):
        loads = [2000, 2000, 2000]
        store = self._loaded_store(loads)
        observed = float(store.query_batch(NEGATIVES).mean())
        predicted = generational_fpr_uniform(16384, 4, 2000, 3, w_bar=57)
        assert observed == pytest.approx(predicted, rel=0.2, abs=0.002), \
            "observed %.5f vs predicted %.5f" % (observed, predicted)

    def test_uneven_loads_match_closed_form(self):
        loads = [500, 2000, 3000]
        store = self._loaded_store(loads)
        assert [row.n_items for row in store.generation_stats()] == loads
        observed = float(store.query_batch(NEGATIVES).mean())
        predicted = generational_fpr(16384, 4, loads, w_bar=57)
        assert observed == pytest.approx(predicted, rel=0.2, abs=0.002), \
            "observed %.5f vs predicted %.5f" % (observed, predicted)
