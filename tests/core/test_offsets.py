"""Tests for the offset policy rules."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.offsets import OffsetPolicy
from repro.errors import ConfigurationError


class TestDefaults:
    def test_64_bit_default_w_bar(self):
        assert OffsetPolicy(word_bits=64).w_bar == 57

    def test_32_bit_default_w_bar(self):
        assert OffsetPolicy(word_bits=32).w_bar == 25

    def test_counting_bound(self):
        # §3.3: w_bar <= (w - 7) / z
        assert OffsetPolicy(word_bits=64, cell_bits=4).w_bar == 14

    def test_explicit_w_bar_kept(self):
        assert OffsetPolicy(word_bits=64, w_bar=20).w_bar == 20

    def test_w_bar_above_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            OffsetPolicy(word_bits=64, w_bar=58)

    def test_w_bar_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            OffsetPolicy(word_bits=64, w_bar=1)

    def test_word_bits_validated(self):
        with pytest.raises(ConfigurationError):
            OffsetPolicy(word_bits=20)

    def test_max_w_bar_static(self):
        assert OffsetPolicy.max_w_bar(64) == 57
        assert OffsetPolicy.max_w_bar(64, 4) == 14
        assert OffsetPolicy.max_w_bar(32) == 25


class TestMembershipOffsets:
    @given(hv=st.integers(0, 2**64 - 1))
    def test_range(self, hv):
        policy = OffsetPolicy(word_bits=64)
        offset = policy.membership_offset(hv)
        assert 1 <= offset <= policy.w_bar - 1

    def test_never_zero(self):
        """§3.1: o(e) != 0, else the pair collapses onto one bit."""
        policy = OffsetPolicy(word_bits=64)
        assert all(
            policy.membership_offset(hv) != 0 for hv in range(1000)
        )

    def test_offset_count(self):
        assert OffsetPolicy(word_bits=64).membership_offset_count == 56

    def test_all_values_reachable(self):
        policy = OffsetPolicy(word_bits=64)
        seen = {policy.membership_offset(hv) for hv in range(10_000)}
        assert seen == set(range(1, 57))


class TestAssociationOffsets:
    @given(hv1=st.integers(0, 2**64 - 1), hv2=st.integers(0, 2**64 - 1))
    def test_ordering_and_range(self, hv1, hv2):
        policy = OffsetPolicy(word_bits=64)
        o1, o2 = policy.association_offsets(hv1, hv2)
        assert 0 < o1 < o2 <= policy.w_bar - 1

    def test_half_range(self):
        assert OffsetPolicy(word_bits=64).association_half_range == 28

    def test_three_cases_never_alias(self):
        """Offsets 0, o1, o2 are pairwise distinct for all hash values."""
        policy = OffsetPolicy(word_bits=64)
        for hv1 in range(50):
            for hv2 in range(50):
                o1, o2 = policy.association_offsets(hv1, hv2)
                assert len({0, o1, o2}) == 3


class TestPartitionedOffsets:
    def test_segments_disjoint(self):
        policy = OffsetPolicy(word_bits=64)
        t = 4
        segment = policy.partition_segment(t)
        ranges = []
        for j in range(1, t + 1):
            values = {
                policy.partitioned_offset(j, t, hv) for hv in range(2000)
            }
            assert len(values) == segment
            ranges.append(values)
        for a in range(t):
            for b in range(a + 1, t):
                assert not ranges[a] & ranges[b]

    def test_max_offset_within_w_bar(self):
        policy = OffsetPolicy(word_bits=64)
        for t in (1, 2, 3, 4, 7):
            top = max(
                policy.partitioned_offset(t, t, hv) for hv in range(2000)
            )
            assert top <= policy.w_bar - 1

    def test_invalid_shift_index(self):
        policy = OffsetPolicy(word_bits=64)
        with pytest.raises(ConfigurationError):
            policy.partitioned_offset(0, 2, 5)
        with pytest.raises(ConfigurationError):
            policy.partitioned_offset(3, 2, 5)

    def test_too_many_partitions_rejected(self):
        policy = OffsetPolicy(word_bits=64)
        with pytest.raises(ConfigurationError):
            policy.partition_segment(60)

    def test_t1_equals_membership_range(self):
        """With t=1 the partitioned offset is the membership offset."""
        policy = OffsetPolicy(word_bits=64)
        for hv in range(500):
            assert policy.partitioned_offset(
                1, 1, hv) == policy.membership_offset(hv)


class TestSlack:
    def test_slack_cells(self):
        assert OffsetPolicy(word_bits=64).slack_cells == 56
        assert OffsetPolicy(word_bits=64, w_bar=20).slack_cells == 19
