"""Tests for the Shifting Count-Min sketch (§5.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CountMinSketch
from repro.core import ShiftingCountMinSketch
from repro.errors import ConfigurationError, UnsupportedOperationError
from tests.conftest import make_elements


class TestBasics:
    def test_exact_on_sparse_sketch(self):
        scm = ShiftingCountMinSketch(d=8, r=1024)
        counts = {b"a": 3, b"b": 1, b"c": 40}
        for element, count in counts.items():
            scm.add(element, count=count)
        for element, count in counts.items():
            assert scm.estimate(element) == count

    def test_never_underestimates(self):
        scm = ShiftingCountMinSketch(d=4, r=32)
        members = make_elements(200, "flow")
        for i, element in enumerate(members):
            scm.add(element, count=(i % 4) + 1)
        for i, element in enumerate(members):
            assert scm.estimate(element) >= (i % 4) + 1

    def test_d_must_be_even(self):
        with pytest.raises(ConfigurationError):
            ShiftingCountMinSketch(d=5, r=64)

    def test_remove_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            ShiftingCountMinSketch(d=4, r=64).remove(b"x")

    def test_row_geometry(self):
        scm = ShiftingCountMinSketch(d=8, r=256, counter_bits=6)
        assert scm.rows == 4
        assert scm.w_bar == (64 - 7) // 6

    def test_query_answer_format(self):
        scm = ShiftingCountMinSketch(d=4, r=256)
        scm.add(b"x", count=2)
        assert scm.query(b"x").reported == 2
        assert not scm.query(b"absent-surely").present or True


class TestShiftingAdvantage:
    def test_half_the_hash_ops_of_cm(self):
        """§5.5: d/2 + 1 hashes vs d for the CM sketch."""
        scm = ShiftingCountMinSketch(d=8, r=256)
        cm = CountMinSketch(d=8, r=256)
        assert scm.hash_ops_per_query == 5
        assert cm.hash_ops_per_query == 8

    def test_half_the_accesses_of_cm(self):
        scm = ShiftingCountMinSketch(d=8, r=256)
        cm = CountMinSketch(d=8, r=256)
        scm.add(b"x")
        cm.add(b"x")
        scm.memory.reset()
        cm.memory.reset()
        scm.estimate(b"x")
        cm.estimate(b"x")
        assert scm.memory.stats.read_ops == 4
        assert cm.memory.stats.read_ops == 8

    def test_pair_read_is_one_word(self):
        """Counter pairs stay within one word fetch (w_bar bound)."""
        scm = ShiftingCountMinSketch(d=8, r=256, counter_bits=6)
        scm.add(b"x")
        scm.memory.reset()
        scm.estimate(b"x")
        assert scm.memory.stats.read_words == scm.memory.stats.read_ops

    def test_accuracy_comparable_to_cm_at_equal_memory(self):
        """SCM's pairing must not cost much accuracy at equal budget."""
        members = make_elements(800, "flow")
        truth = {e: (i % 5) + 1 for i, e in enumerate(members)}
        cm = CountMinSketch(d=8, r=128, counter_bits=8)
        scm = ShiftingCountMinSketch(d=8, r=128, counter_bits=8)
        for element, count in truth.items():
            cm.add(element, count=count)
            scm.add(element, count=count)
        cm_err = sum(cm.estimate(e) - c for e, c in truth.items())
        scm_err = sum(scm.estimate(e) - c for e, c in truth.items())
        # both overestimate; SCM within 2.5x of CM's total error
        assert scm_err <= max(cm_err * 2.5, len(members) // 2)

    def test_conservative_update(self):
        scm_c = ShiftingCountMinSketch(d=4, r=64, conservative=True)
        scm = ShiftingCountMinSketch(d=4, r=64)
        members = make_elements(300, "flow")
        for element in members:
            scm_c.add(element)
            scm.add(element)
        for element in members:
            assert scm_c.estimate(element) <= scm.estimate(element)
            assert scm_c.estimate(element) >= 1


@settings(max_examples=20, deadline=None)
@given(counts=st.dictionaries(
    st.integers(0, 30), st.integers(1, 8), max_size=15))
def test_property_upper_bound(counts):
    scm = ShiftingCountMinSketch(d=4, r=128)
    for key, count in counts.items():
        scm.add(b"k%d" % key, count=count)
    for key, count in counts.items():
        assert scm.estimate(b"k%d" % key) >= count
