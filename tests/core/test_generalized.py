"""Tests for the generalized (t-shift) shifting Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import generalized_shbf_fpr, shbf_m_fpr
from repro.core import GeneralizedShiftingBloomFilter, ShiftingBloomFilter
from repro.errors import ConfigurationError
from tests.conftest import make_elements


class TestConstruction:
    def test_k_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            GeneralizedShiftingBloomFilter(m=1024, k=8, t=2)  # 3 !| 8

    def test_t_bounds(self):
        with pytest.raises(ConfigurationError):
            GeneralizedShiftingBloomFilter(m=1024, k=4, t=4)
        with pytest.raises(ConfigurationError):
            GeneralizedShiftingBloomFilter(m=1024, k=4, t=0)

    def test_group_arithmetic(self):
        g = GeneralizedShiftingBloomFilter(m=1024, k=12, t=2)
        assert g.groups == 4
        assert g.hash_ops_per_query == 6
        assert g.segment == 28  # (57-1)//2

    def test_t1_hash_cost_matches_shbf_m(self):
        g = GeneralizedShiftingBloomFilter(m=1024, k=8, t=1)
        s = ShiftingBloomFilter(m=1024, k=8)
        assert g.hash_ops_per_query == s.hash_ops_per_query

    def test_insert_sets_k_bits(self):
        g = GeneralizedShiftingBloomFilter(m=4096, k=12, t=3)
        g.add(b"x")
        assert g.bits.count() == 12


class TestBehaviour:
    @pytest.mark.parametrize("k,t", [(8, 1), (12, 2), (12, 3), (16, 7)])
    def test_no_false_negatives(self, k, t, elements):
        g = GeneralizedShiftingBloomFilter(m=8192, k=k, t=t)
        g.update(elements)
        assert all(e in g for e in elements)

    def test_empty_rejects(self, negatives):
        g = GeneralizedShiftingBloomFilter(m=8192, k=12, t=2)
        assert not any(e in g for e in negatives)

    def test_query_cost_is_group_count(self):
        g = GeneralizedShiftingBloomFilter(m=8192, k=12, t=2)
        g.add(b"x")
        g.memory.reset()
        g.query(b"x")
        assert g.memory.stats.read_ops == 4  # k/(t+1)

    def test_t1_matches_shbf_m_structure(self):
        """t=1 generalized == ShBF_M: same positions, same bits."""
        family_seed = 11
        from repro.hashing import Blake2Family

        g = GeneralizedShiftingBloomFilter(
            m=2048, k=8, t=1, family=Blake2Family(seed=family_seed))
        s = ShiftingBloomFilter(
            m=2048, k=8, family=Blake2Family(seed=family_seed))
        for e in make_elements(100):
            g.add(e)
            s.add(e)
        assert g.bits.to_bytes() == s.bits.to_bytes()


class TestTheoryAgreement:
    @pytest.mark.parametrize("t,k", [(1, 8), (2, 9), (3, 8)])
    def test_fpr_matches_eq_11(self, t, k):
        n, m = 2000, 22976
        members = make_elements(n, "m")
        probes = make_elements(50000, "p")
        g = GeneralizedShiftingBloomFilter(m=m, k=k, t=t)
        g.update(members)
        measured = sum(1 for e in probes if e in g) / len(probes)
        predicted = generalized_shbf_fpr(m, n, k, w_bar=57, t=t)
        assert measured == pytest.approx(predicted, rel=0.3)

    def test_eq11_t1_equals_eq1(self):
        for k in (4, 8, 12):
            assert generalized_shbf_fpr(
                100000, 10000, k, 57, t=1
            ) == pytest.approx(shbf_m_fpr(100000, 10000, k, 57), rel=1e-12)

    def test_larger_t_trades_fpr_for_accesses(self):
        """More shifts -> fewer accesses but (slightly) worse FPR."""
        m, n, k = 100000, 10000, 12
        f1 = generalized_shbf_fpr(m, n, k, 57, t=1)
        f2 = generalized_shbf_fpr(m, n, k, 57, t=2)
        f3 = generalized_shbf_fpr(m, n, k, 57, t=3)
        assert f1 <= f2 <= f3


@settings(max_examples=15, deadline=None)
@given(members=st.sets(st.binary(min_size=1, max_size=12), max_size=40))
def test_property_no_false_negatives(members):
    g = GeneralizedShiftingBloomFilter(m=2048, k=12, t=3)
    for element in members:
        g.add(element)
    assert all(g.query(element) for element in members)
