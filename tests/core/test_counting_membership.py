"""Tests for CShBF_M — the counting shifting Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CountingShiftingBloomFilter
from repro.errors import ConfigurationError, CounterUnderflowError
from tests.conftest import make_elements


class TestBasics:
    def test_no_false_negatives(self, elements):
        filt = CountingShiftingBloomFilter(m=4096, k=8)
        filt.update(elements)
        assert all(e in filt for e in elements)

    def test_delete_removes(self):
        filt = CountingShiftingBloomFilter(m=2048, k=6)
        filt.add(b"x")
        filt.remove(b"x")
        assert b"x" not in filt

    def test_delete_preserves_others(self, elements):
        filt = CountingShiftingBloomFilter(m=8192, k=6)
        filt.update(elements)
        for e in elements[:100]:
            filt.remove(e)
        assert all(e in filt for e in elements[100:])

    def test_delete_absent_raises(self):
        filt = CountingShiftingBloomFilter(m=2048, k=6)
        with pytest.raises(CounterUnderflowError):
            filt.remove(b"never")

    def test_double_insert_double_delete(self):
        filt = CountingShiftingBloomFilter(m=2048, k=6)
        filt.add(b"x")
        filt.add(b"x")
        filt.remove(b"x")
        assert b"x" in filt
        filt.remove(b"x")
        assert b"x" not in filt

    def test_counting_w_bar_bound(self):
        """§3.3: w_bar <= (w-7)/z so counter pairs share a fetch."""
        filt = CountingShiftingBloomFilter(m=1024, k=4, counter_bits=4)
        assert filt.w_bar == 14

    def test_w_bar_above_counting_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            CountingShiftingBloomFilter(
                m=1024, k=4, counter_bits=4, w_bar=57)

    def test_k_must_be_even(self):
        with pytest.raises(ConfigurationError):
            CountingShiftingBloomFilter(m=1024, k=5)


class TestTieredDeployment:
    """§3.3: B in SRAM answers queries; C in DRAM absorbs updates."""

    def test_query_touches_only_sram(self):
        filt = CountingShiftingBloomFilter(m=2048, k=6)
        filt.add(b"x")
        filt.bits.memory.reset()
        filt.counters.memory.reset()
        filt.query(b"x")
        assert filt.bits.memory.stats.read_ops == 3  # k/2
        assert filt.counters.memory.stats.read_ops == 0

    def test_update_touches_both_tiers(self):
        filt = CountingShiftingBloomFilter(m=2048, k=6)
        filt.add(b"x")
        assert filt.counters.memory.stats.write_ops == 3  # k/2 pairs
        assert filt.bits.memory.stats.write_ops == 3

    def test_tier_labels(self):
        filt = CountingShiftingBloomFilter(m=128, k=2)
        assert filt.bits.memory.tier == "sram"
        assert filt.counters.memory.tier == "dram"

    def test_update_pair_is_one_dram_access(self):
        """With the counting bound, one update = k/2 DRAM accesses."""
        filt = CountingShiftingBloomFilter(m=2048, k=8, counter_bits=4)
        filt.add(b"x")
        assert filt.counters.memory.stats.write_words == 4


class TestSynchronisation:
    def test_arrays_synchronised_after_mixed_ops(self, elements):
        filt = CountingShiftingBloomFilter(m=4096, k=6)
        filt.update(elements[:150])
        for e in elements[:50]:
            filt.remove(e)
        assert filt.check_synchronised()

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 9)), max_size=40
        )
    )
    def test_property_synchronised_and_no_fn(self, ops):
        filt = CountingShiftingBloomFilter(m=1024, k=4)
        reference: dict[int, int] = {}
        for insert, key in ops:
            element = b"key-%d" % key
            if insert:
                filt.add(element)
                reference[key] = reference.get(key, 0) + 1
            elif reference.get(key, 0) > 0:
                filt.remove(element)
                reference[key] -= 1
        assert filt.check_synchronised()
        for key, count in reference.items():
            if count > 0:
                assert b"key-%d" % key in filt
