"""Tests for ShBF_M — the membership shifting Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import bf_fpr, shbf_m_fpr
from repro.baselines import BloomFilter
from repro.core import ShiftingBloomFilter
from repro.errors import ConfigurationError, UnsupportedOperationError
from tests.conftest import make_elements


class TestBasics:
    def test_no_false_negatives(self, elements):
        shbf = ShiftingBloomFilter(m=4096, k=8)
        shbf.update(elements)
        assert all(e in shbf for e in elements)

    def test_empty_rejects(self, negatives):
        shbf = ShiftingBloomFilter(m=4096, k=8)
        assert not any(e in shbf for e in negatives)

    def test_k_must_be_even(self):
        with pytest.raises(ConfigurationError):
            ShiftingBloomFilter(m=1024, k=7)

    def test_remove_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            ShiftingBloomFilter(m=64, k=2).remove(b"x")

    def test_default_w_bar(self):
        assert ShiftingBloomFilter(m=1024, k=4).w_bar == 57
        assert ShiftingBloomFilter(m=1024, k=4, word_bits=32).w_bar == 25

    def test_array_includes_slack(self):
        shbf = ShiftingBloomFilter(m=1024, k=4)
        assert shbf.size_bits == 1024 + 56
        assert shbf.m == 1024

    def test_custom_w_bar(self):
        shbf = ShiftingBloomFilter(m=1024, k=4, w_bar=20)
        assert shbf.w_bar == 20
        assert shbf.size_bits == 1024 + 19

    def test_n_items(self, elements):
        shbf = ShiftingBloomFilter(m=4096, k=8)
        shbf.update(elements)
        assert shbf.n_items == len(elements)


class TestCostModel:
    def test_hash_ops_halved(self):
        """§3.1: k/2 + 1 hash computations vs k for BF."""
        shbf = ShiftingBloomFilter(m=4096, k=8)
        bf = BloomFilter(m=4096, k=8)
        assert shbf.hash_ops_per_query == 5
        assert bf.hash_ops_per_query == 8

    def test_member_query_costs_k_half_accesses(self):
        shbf = ShiftingBloomFilter(m=4096, k=8)
        shbf.add(b"x")
        shbf.memory.reset()
        assert shbf.query(b"x")
        assert shbf.memory.stats.read_ops == 4
        assert shbf.memory.stats.read_words == 4

    def test_insert_costs_k_half_writes(self):
        shbf = ShiftingBloomFilter(m=4096, k=8)
        shbf.add(b"x")
        assert shbf.memory.stats.write_ops == 4
        assert shbf.memory.stats.write_words == 4

    def test_insert_sets_k_bits(self):
        shbf = ShiftingBloomFilter(m=4096, k=8)
        shbf.add(b"x")
        assert shbf.bits.count() == 8  # collisions possible but unlikely

    def test_halved_accesses_vs_bf_on_mixed_queries(self):
        """Fig. 8's claim: ~half the accesses of BF on a 50/50 mix."""
        members = make_elements(1000, "m")
        foreign = make_elements(1000, "f")
        m, k = 22008, 8
        shbf = ShiftingBloomFilter(m=m, k=k)
        bf = BloomFilter(m=m, k=k)
        shbf.update(members)
        bf.update(members)
        shbf.memory.reset()
        bf.memory.reset()
        for e in members + foreign:
            shbf.query(e)
            bf.query(e)
        ratio = (shbf.memory.stats.read_words
                 / bf.memory.stats.read_words)
        assert 0.4 < ratio < 0.62


class TestAccuracy:
    def test_fpr_matches_theorem_1(self):
        """Simulated FPR agrees with Eq. (1) within sampling error."""
        n, m, k = 2000, 22976, 8
        members = make_elements(n, "m")
        probes = make_elements(60000, "p")
        shbf = ShiftingBloomFilter(m=m, k=k)
        shbf.update(members)
        measured = sum(1 for e in probes if e in shbf) / len(probes)
        predicted = shbf_m_fpr(m, n, k)
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_fpr_close_to_bf(self):
        """§3.5: the FPR sacrifice vs BF is negligible at w_bar = 57."""
        n, m, k = 2000, 22976, 8
        members = make_elements(n, "m")
        probes = make_elements(60000, "p")
        shbf = ShiftingBloomFilter(m=m, k=k)
        bf = BloomFilter(m=m, k=k)
        shbf.update(members)
        bf.update(members)
        fpr_shbf = sum(1 for e in probes if e in shbf) / len(probes)
        fpr_bf = sum(1 for e in probes if e in bf) / len(probes)
        # theory gap at these parameters is ~2%; allow sampling noise
        assert fpr_shbf == pytest.approx(fpr_bf, rel=0.35)

    def test_small_w_bar_hurts_fpr(self):
        """Fig. 3: FPR grows as w_bar shrinks below ~20."""
        n, m, k = 3000, 22976, 8
        members = make_elements(n, "m")
        probes = make_elements(40000, "p")
        fprs = {}
        for w_bar in (3, 57):
            shbf = ShiftingBloomFilter(m=m, k=k, w_bar=w_bar)
            shbf.update(members)
            fprs[w_bar] = sum(1 for e in probes if e in shbf) / len(probes)
        assert fprs[3] > fprs[57]

    def test_offset_pairs_share_one_word(self):
        """Structural invariant: every pair fits one 64-bit fetch."""
        shbf = ShiftingBloomFilter(m=2048, k=6)
        for e in make_elements(50):
            bases, offset = shbf._bases_and_offset(e)
            assert 1 <= offset <= 56
            for base in bases:
                assert shbf.memory.read_cost(base, offset + 1) == 1


@settings(max_examples=25, deadline=None)
@given(members=st.sets(st.binary(min_size=1, max_size=16), max_size=50))
def test_property_no_false_negatives(members):
    shbf = ShiftingBloomFilter(m=2048, k=6)
    for element in members:
        shbf.add(element)
    assert all(shbf.query(element) for element in members)


@settings(max_examples=10, deadline=None)
@given(
    w_bar=st.integers(10, 57),
    members=st.sets(st.binary(min_size=1, max_size=8),
                    min_size=1, max_size=30),
)
def test_property_no_false_negatives_any_w_bar(w_bar, members):
    shbf = ShiftingBloomFilter(m=1024, k=4, w_bar=w_bar)
    for element in members:
        shbf.add(element)
    assert all(shbf.query(element) for element in members)


class TestEmptyLike:
    def test_clone_geometry_and_union_compatibility(self):
        original = ShiftingBloomFilter(m=8192, k=6, w_bar=25)
        original.add_batch(make_elements(200, "orig"))
        clone = original.empty_like()
        assert (clone.m, clone.k, clone.w_bar) == (8192, 6, 25)
        assert clone.n_items == 0
        assert clone.fill_ratio() == 0.0
        assert clone.family.name == original.family.name

    def test_union_of_delta_clone_equals_direct_build(self):
        """The replication delta identity: writing new elements into an
        empty clone and unioning equals writing them directly —
        bit-for-bit, n_items included."""
        first = make_elements(300, "first")
        second = make_elements(300, "second")
        replica = ShiftingBloomFilter(m=16384, k=8)
        replica.add_batch(first)
        delta = replica.empty_like()
        delta.add_batch(second)
        merged = replica.union(delta)
        direct = ShiftingBloomFilter(m=16384, k=8)
        direct.add_batch(first + second)
        assert merged.bits.to_bytes() == direct.bits.to_bytes()
        assert merged.n_items == direct.n_items == 600
