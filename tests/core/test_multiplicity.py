"""Tests for ShBF_x and CShBF_x — multiplicity shifting filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CountingShiftingMultiplicityFilter,
    ShiftingMultiplicityFilter,
)
from repro.errors import CapacityError, ConfigurationError
from tests.conftest import make_elements


class TestStaticFilter:
    def test_exact_on_sparse_filter(self):
        filt = ShiftingMultiplicityFilter(m=8192, k=4, c_max=16)
        counts = {(b"f%d" % i): (i % 16) + 1 for i in range(100)}
        filt.build(counts)
        correct = sum(
            1 for e, c in counts.items() if filt.estimate(e) == c
        )
        assert correct / len(counts) > 0.95

    def test_true_count_always_candidate(self):
        """No false negatives: c(e) is always among the candidates."""
        filt = ShiftingMultiplicityFilter(m=2048, k=4, c_max=8)
        counts = {(b"f%d" % i): (i % 8) + 1 for i in range(150)}
        filt.build(counts)
        for e, c in counts.items():
            assert c in filt.query(e).candidates

    def test_largest_policy_upper_bounds(self):
        filt = ShiftingMultiplicityFilter(
            m=1024, k=4, c_max=8, report="largest")
        counts = {(b"f%d" % i): (i % 8) + 1 for i in range(200)}
        filt.build(counts)
        for e, c in counts.items():
            assert filt.estimate(e) >= c

    def test_smallest_policy_lower_bounds(self):
        filt = ShiftingMultiplicityFilter(
            m=1024, k=4, c_max=8, report="smallest")
        counts = {(b"f%d" % i): (i % 8) + 1 for i in range(200)}
        filt.build(counts)
        for e, c in counts.items():
            assert 1 <= filt.estimate(e) <= c

    def test_absent_mostly_zero(self, negatives):
        filt = ShiftingMultiplicityFilter(m=8192, k=4, c_max=8)
        filt.build({e: 3 for e in make_elements(100)})
        zero = sum(1 for e in negatives if filt.estimate(e) == 0)
        assert zero / len(negatives) > 0.9

    def test_count_above_c_max_rejected(self):
        filt = ShiftingMultiplicityFilter(m=1024, k=4, c_max=4)
        with pytest.raises(ConfigurationError):
            filt.add(b"x", count=5)

    def test_reencoding_rejected(self):
        filt = ShiftingMultiplicityFilter(m=1024, k=4, c_max=4)
        filt.add(b"x", count=2)
        with pytest.raises(ConfigurationError):
            filt.add(b"x", count=3)

    def test_true_count_bookkeeping(self):
        filt = ShiftingMultiplicityFilter(m=1024, k=4, c_max=4)
        filt.add(b"x", count=2)
        assert filt.true_count(b"x") == 2
        assert filt.true_count(b"y") == 0

    def test_invalid_report_policy(self):
        with pytest.raises(ConfigurationError):
            ShiftingMultiplicityFilter(m=64, k=2, c_max=4, report="median")

    def test_slack_sizing(self):
        filt = ShiftingMultiplicityFilter(m=1024, k=4, c_max=57)
        assert filt.size_bits == 1024 + 56


class TestQueryCost:
    def test_access_cost_is_k_windows(self):
        """§5.2: k * ceil(c/w) accesses; c=57 fits one word per probe."""
        filt = ShiftingMultiplicityFilter(m=8192, k=6, c_max=57)
        filt.add(b"x", count=9)
        filt.memory.reset()
        filt.query(b"x")
        assert filt.memory.stats.read_ops == 6
        assert filt.memory.stats.read_words <= 12  # byte alignment may split

    def test_wide_c_needs_multiple_words(self):
        filt = ShiftingMultiplicityFilter(m=8192, k=2, c_max=200)
        filt.add(b"x", count=1)
        filt.memory.reset()
        filt.query(b"x")
        assert filt.memory.stats.read_words >= 2 * 3  # ceil(200/64) per probe

    def test_absent_query_early_exits(self, negatives):
        filt = ShiftingMultiplicityFilter(m=32768, k=8, c_max=57)
        filt.build({e: 2 for e in make_elements(50)})
        filt.memory.reset()
        for e in negatives[:200]:
            filt.query(e)
        # sparse filter: the candidate mask dies after ~1 window
        assert filt.memory.stats.read_ops / 200 < 2.5


class TestCountingHashTable:
    """§5.3.2: hash-table-backed updates, no false negatives."""

    def test_incremental_counting(self):
        filt = CountingShiftingMultiplicityFilter(m=2048, k=4, c_max=8)
        for _ in range(5):
            filt.add(b"x")
        assert filt.true_count(b"x") == 5
        assert filt.estimate(b"x") == 5

    def test_remove_decrements(self):
        filt = CountingShiftingMultiplicityFilter(m=2048, k=4, c_max=8)
        filt.update([b"x"] * 4)
        filt.remove(b"x")
        assert filt.estimate(b"x") == 3

    def test_remove_last_occurrence(self):
        filt = CountingShiftingMultiplicityFilter(m=2048, k=4, c_max=8)
        filt.add(b"x")
        filt.remove(b"x")
        assert filt.estimate(b"x") == 0
        assert filt.true_count(b"x") == 0

    def test_remove_absent_raises(self):
        filt = CountingShiftingMultiplicityFilter(m=2048, k=4, c_max=8)
        with pytest.raises(KeyError):
            filt.remove(b"never")

    def test_capacity_error_beyond_c_max(self):
        filt = CountingShiftingMultiplicityFilter(m=2048, k=4, c_max=3)
        filt.update([b"x"] * 3)
        with pytest.raises(CapacityError):
            filt.add(b"x")

    def test_single_encoding_invariant(self):
        """One element occupies k bits regardless of its multiplicity."""
        filt = CountingShiftingMultiplicityFilter(m=4096, k=4, c_max=20)
        for _ in range(17):
            filt.add(b"x")
        assert filt.bits.count() == 4

    def test_no_false_negatives_under_churn(self):
        filt = CountingShiftingMultiplicityFilter(m=8192, k=4, c_max=16)
        members = make_elements(100, "flow")
        for rounds in range(3):
            for e in members:
                filt.add(e)
        for e in members[:50]:
            filt.remove(e)
        for i, e in enumerate(members):
            expected = 2 if i < 50 else 3
            assert expected in filt.query(e).candidates

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 7)), max_size=40
        )
    )
    def test_property_tracks_reference_counter(self, ops):
        filt = CountingShiftingMultiplicityFilter(m=2048, k=4, c_max=40)
        reference: dict[int, int] = {}
        for insert, key in ops:
            element = b"key-%d" % key
            if insert:
                filt.add(element)
                reference[key] = reference.get(key, 0) + 1
            elif reference.get(key, 0) > 0:
                filt.remove(element)
                reference[key] -= 1
        for key, count in reference.items():
            answer = filt.query(b"key-%d" % key)
            if count > 0:
                assert count in answer.candidates
            assert filt.true_count(b"key-%d" % key) == count


class TestCountingSelfQuery:
    """§5.3.1: self-query updates — cheaper, but can false-negate."""

    def test_counts_correctly_when_sparse(self):
        filt = CountingShiftingMultiplicityFilter(
            m=8192, k=4, c_max=16, source="self_query")
        for _ in range(6):
            filt.add(b"x")
        assert filt.estimate(b"x") == 6

    def test_no_crash_under_heavy_collisions(self):
        """Dense filter: self-query updates corrupt gracefully (no raise)."""
        filt = CountingShiftingMultiplicityFilter(
            m=256, k=4, c_max=8, source="self_query")
        for e in make_elements(120, "crowd"):
            try:
                filt.add(e)
            except CapacityError:
                pass  # a false positive pushed the estimate to c_max
        # structure remains queryable
        filt.query(b"anything")

    def test_invalid_source_rejected(self):
        with pytest.raises(ConfigurationError):
            CountingShiftingMultiplicityFilter(
                m=64, k=2, c_max=4, source="oracle")
