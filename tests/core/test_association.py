"""Tests for ShBF_A and CShBF_A — association shifting filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Association,
    CountingShiftingAssociationFilter,
    ShiftingAssociationFilter,
)
from tests.conftest import make_elements


@pytest.fixture
def three_regions():
    return (
        make_elements(300, "s1only"),
        make_elements(300, "both"),
        make_elements(300, "s2only"),
    )


@pytest.fixture
def built(three_regions):
    s1_only, both, s2_only = three_regions
    return ShiftingAssociationFilter.for_sets(
        s1_only + both, s2_only + both, k=10)


class TestConstruction:
    def test_optimal_sizing_counts_distinct_once(self):
        """Table 2: m = (n1 + n2 - n3) k / ln 2."""
        m = ShiftingAssociationFilter.optimal_m(1000, 1000, 250, 8)
        assert m == pytest.approx(1750 * 8 / 0.6931, rel=0.01)

    def test_each_distinct_element_encoded_once(self, three_regions):
        import math

        s1_only, both, s2_only = three_regions
        filt = ShiftingAssociationFilter(m=40000, k=8)
        filt.build(s1_only + both, s2_only + both)
        # k bits per distinct element; occupancy follows the balls-in-bins
        # expectation m * (1 - e^{-kn/m}) because positions collide.
        hashes = 8 * (len(s1_only) + len(both) + len(s2_only))
        expected = 40000 * (1 - math.exp(-hashes / 40000))
        assert filt.bits.count() == pytest.approx(expected, rel=0.05)
        assert filt.bits.count() <= hashes

    def test_region_of_ground_truth(self, built, three_regions):
        s1_only, both, s2_only = three_regions
        assert built.region_of(s1_only[0]) is Association.S1_ONLY
        assert built.region_of(both[0]) is Association.BOTH
        assert built.region_of(s2_only[0]) is Association.S2_ONLY
        assert built.region_of(b"foreign") is None

    def test_sets_need_not_be_disjoint(self):
        """The §2.2 differentiator: overlapping sets are fine."""
        filt = ShiftingAssociationFilter.for_sets(
            [b"x", b"y"], [b"y", b"z"], k=8)
        assert filt.query(b"y").candidates == {Association.BOTH}


class TestAnswers:
    def test_never_wrong(self, built, three_regions):
        """§4.2: no outcome ever excludes the true region."""
        s1_only, both, s2_only = three_regions
        for elements, truth in (
            (s1_only, Association.S1_ONLY),
            (both, Association.BOTH),
            (s2_only, Association.S2_ONLY),
        ):
            for e in elements:
                assert built.query(e).consistent_with(truth)

    def test_clear_answers_are_correct(self, built, three_regions):
        """A clear (single-candidate) answer names the true region."""
        s1_only, both, s2_only = three_regions
        truth_by_prefix = {
            b"s1only": Association.S1_ONLY,
            b"both": Association.BOTH,
            b"s2only": Association.S2_ONLY,
        }
        for e in s1_only + both + s2_only:
            answer = built.query(e)
            if answer.clear:
                (candidate,) = answer.candidates
                prefix = e.split(b"-")[0]
                assert candidate is truth_by_prefix[prefix]

    def test_clear_probability_matches_table2(self, built, three_regions):
        """P(clear) ~ (1 - 0.5^k)^2 ~ 0.998 at k = 10."""
        s1_only, both, s2_only = three_regions
        queries = s1_only + both + s2_only
        clear = sum(1 for e in queries if built.query(e).clear)
        assert clear / len(queries) > 0.98

    def test_query_costs_k_accesses(self, built):
        built.memory.reset()
        built.query(b"s1only-00000000")
        assert built.memory.stats.read_ops == 10  # k reads, one per hash
        assert built.memory.stats.read_words == 10

    def test_triple_read_is_one_word(self, built):
        """Structural invariant: bits {0, o1, o2} share one fetch."""
        for e in make_elements(50, "probe"):
            bases, o1, o2 = built._bases_and_offsets(e)
            assert 0 < o1 < o2 <= built.w_bar - 1
            for base in bases:
                assert built.memory.read_cost(base, o2 + 1) == 1

    def test_outcome_numbers(self, built, three_regions):
        s1_only, both, s2_only = three_regions
        outcomes = {built.query(e).outcome for e in s1_only[:50]}
        assert 1 in outcomes or 4 in outcomes or 6 in outcomes


class TestCountingUpdates:
    def test_add_then_query(self):
        filt = CountingShiftingAssociationFilter(m=4096, k=8)
        filt.add_to_s1(b"a")
        filt.add_to_s2(b"b")
        assert filt.query(b"a").candidates == {Association.S1_ONLY}
        assert filt.query(b"b").candidates == {Association.S2_ONLY}

    def test_region_transition_on_second_insert(self):
        """S2-only element inserted into S1 becomes intersection."""
        filt = CountingShiftingAssociationFilter(m=4096, k=8)
        filt.add_to_s2(b"x")
        filt.add_to_s1(b"x")
        assert filt.query(b"x").candidates == {Association.BOTH}
        assert filt.region_of(b"x") is Association.BOTH

    def test_region_transition_on_partial_delete(self):
        filt = CountingShiftingAssociationFilter(m=4096, k=8)
        filt.add_to_s1(b"x")
        filt.add_to_s2(b"x")
        filt.remove_from_s1(b"x")
        assert filt.query(b"x").candidates == {Association.S2_ONLY}

    def test_full_delete_clears(self):
        filt = CountingShiftingAssociationFilter(m=4096, k=8)
        filt.add_to_s1(b"x")
        filt.remove_from_s1(b"x")
        assert filt.query(b"x").outcome == 0
        assert filt.bits.count() == 0

    def test_insert_idempotent(self):
        filt = CountingShiftingAssociationFilter(m=4096, k=8)
        filt.add_to_s1(b"x")
        filt.add_to_s1(b"x")
        filt.remove_from_s1(b"x")
        assert filt.query(b"x").outcome == 0

    def test_delete_absent_raises(self):
        filt = CountingShiftingAssociationFilter(m=4096, k=8)
        with pytest.raises(KeyError):
            filt.remove_from_s1(b"never")
        filt.add_to_s2(b"y")
        with pytest.raises(KeyError):
            filt.remove_from_s1(b"y")

    def test_matches_static_filter_after_build(self, three_regions):
        """Dynamic build reaches the same answers as the static one."""
        s1_only, both, s2_only = three_regions
        counting = CountingShiftingAssociationFilter(m=40000, k=8)
        counting.build(s1_only + both, s2_only + both)
        static = ShiftingAssociationFilter(
            m=40000, k=8, family=counting.family, w_bar=counting.w_bar)
        static.build(s1_only + both, s2_only + both)
        for e in s1_only[:50] + both[:50] + s2_only[:50]:
            assert counting.query(e).candidates == static.query(
                e).candidates

    def test_synchronised(self, three_regions):
        s1_only, both, s2_only = three_regions
        filt = CountingShiftingAssociationFilter(m=8192, k=6)
        filt.build(s1_only[:80] + both[:80], s2_only[:80] + both[:80])
        for e in both[:40]:
            filt.remove_from_s1(e)
        assert filt.check_synchronised()

    @settings(max_examples=15, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["a1", "a2", "r1", "r2"]),
                      st.integers(0, 7)),
            max_size=40,
        )
    )
    def test_property_tracks_reference_sets(self, ops):
        """Property: answers always include the true region."""
        filt = CountingShiftingAssociationFilter(m=2048, k=6)
        s1: set[bytes] = set()
        s2: set[bytes] = set()
        for op, key in ops:
            element = b"key-%d" % key
            if op == "a1":
                filt.add_to_s1(element)
                s1.add(element)
            elif op == "a2":
                filt.add_to_s2(element)
                s2.add(element)
            elif op == "r1" and element in s1:
                filt.remove_from_s1(element)
                s1.discard(element)
            elif op == "r2" and element in s2:
                filt.remove_from_s2(element)
                s2.discard(element)
        for element in s1 | s2:
            if element in s1 and element in s2:
                truth = Association.BOTH
            elif element in s1:
                truth = Association.S1_ONLY
            else:
                truth = Association.S2_ONLY
            assert filt.query(element).consistent_with(truth)
