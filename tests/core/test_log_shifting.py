"""Tests for the §3.6 log-method extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShiftingBloomFilter
from repro.core.log_shifting import LogShiftingBloomFilter
from repro.errors import ConfigurationError, UnsupportedOperationError
from tests.conftest import make_elements


class TestConstruction:
    def test_divisibility_enforced(self):
        with pytest.raises(ConfigurationError):
            LogShiftingBloomFilter(m=1024, k=12, levels=3)  # 8 !| 12

    def test_too_many_levels_for_w_bar(self):
        with pytest.raises(ConfigurationError):
            LogShiftingBloomFilter(m=1024, k=64, levels=6, w_bar=20)

    def test_hash_cost_log_endpoint(self):
        """The paper's log(k)+1 endpoint: k=16, L=4 -> 1 base + 4."""
        filt = LogShiftingBloomFilter(m=4096, k=16, levels=4)
        assert filt.hash_ops_per_query == 5  # log2(16) + 1

    def test_level_one_matches_shbf_m_cost(self):
        log_filt = LogShiftingBloomFilter(m=1024, k=8, levels=1)
        shbf = ShiftingBloomFilter(m=1024, k=8)
        assert log_filt.hash_ops_per_query == shbf.hash_ops_per_query

    def test_insert_sets_k_bits(self):
        filt = LogShiftingBloomFilter(m=8192, k=16, levels=3)
        filt.add(b"x")
        # subset-sum collisions possible but rare at w_bar=57
        assert 12 <= filt.bits.count() <= 16

    def test_offsets_bounded_by_w_bar(self):
        filt = LogShiftingBloomFilter(m=1024, k=16, levels=3)
        for element in make_elements(200):
            offsets = filt._offsets(element)
            assert len(offsets) == 8
            assert offsets[0] == 0
            assert max(offsets) <= filt.w_bar - 1


class TestBehaviour:
    @pytest.mark.parametrize("k,levels", [(8, 1), (8, 2), (16, 3),
                                          (16, 4)])
    def test_no_false_negatives(self, k, levels, elements):
        filt = LogShiftingBloomFilter(m=8192, k=k, levels=levels)
        filt.update(elements)
        assert all(e in filt for e in elements)

    def test_empty_rejects(self, negatives):
        filt = LogShiftingBloomFilter(m=8192, k=16, levels=3)
        assert not any(e in filt for e in negatives)

    def test_query_cost_is_base_count(self):
        filt = LogShiftingBloomFilter(m=8192, k=16, levels=3)
        filt.add(b"x")
        filt.memory.reset()
        filt.query(b"x")
        assert filt.memory.stats.read_ops == 2  # k / 2**L

    def test_remove_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            LogShiftingBloomFilter(m=64, k=4, levels=1).remove(b"x")

    def test_fpr_degrades_gracefully_with_levels(self):
        """More levels -> more correlation -> no better FPR, but still
        within an order of magnitude at the paper's operating point."""
        members = make_elements(2000, "m")
        probes = make_elements(30000, "p")
        m, k = 22976, 16
        fprs = {}
        for levels in (1, 2, 3):
            filt = LogShiftingBloomFilter(m=m, k=k, levels=levels)
            filt.update(members)
            fprs[levels] = sum(
                1 for e in probes if e in filt) / len(probes)
        assert fprs[3] >= fprs[1] * 0.5  # monotone-ish, noise allowed
        assert fprs[3] < max(20 * fprs[1], 0.02)


@settings(max_examples=15, deadline=None)
@given(members=st.sets(st.binary(min_size=1, max_size=10), max_size=40))
def test_property_no_false_negatives(members):
    filt = LogShiftingBloomFilter(m=2048, k=16, levels=3)
    for element in members:
        filt.add(element)
    assert all(filt.query(element) for element in members)
