"""Shared plumbing for the service-layer tests.

No pytest-asyncio in the toolchain, so each test drives one
``asyncio.run`` via the :func:`service_run` fixture: it spins a
:class:`~repro.service.FilterService` on an ephemeral loopback port,
connects a pipelined client, hands both to the test's async scenario,
and tears everything down — server, client, coalescer timers — inside
the same event loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import ServiceClient
from repro.service.server import CoalescerConfig, FilterService


@pytest.fixture
def service_run():
    """Run ``scenario(client, service, port)`` against a live service."""

    def runner(target, scenario, config: CoalescerConfig = None):
        async def main():
            service = FilterService(target, config)
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(port=port)
            try:
                return await scenario(client, service, port)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        return asyncio.run(main())

    return runner
