"""Degenerate batches through the whole stack.

Empty, single-element and duplicate-heavy batches must round-trip
identically through direct :class:`~repro.store.ShardedFilterStore`
calls and through the service client — including request sizes that
straddle the coalescer's flush threshold at ``max_batch`` and
``max_batch ± 1``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.service.server import CoalescerConfig
from repro.store.sharded import ShardedFilterStore
from repro.workloads.service import build_service_workload, chop_requests

MAX_BATCH = 8


def make_store() -> ShardedFilterStore:
    return ShardedFilterStore(
        lambda s: ShiftingBloomFilter(m=8192, k=6), n_shards=2)


def coalescer_config() -> CoalescerConfig:
    return CoalescerConfig(max_batch=MAX_BATCH, max_delay_us=500)


@pytest.fixture
def loaded_pair():
    workload = build_service_workload(150, seed=31)
    direct, served = make_store(), make_store()
    direct.add_batch(list(workload.members))
    served.add_batch(list(workload.members))
    return workload, direct, served


class TestDegenerateThroughStore:
    """The direct-call half of the equivalence contract."""

    def test_empty_batch_add_and_query(self):
        store = make_store()
        store.add_batch([])
        verdicts = store.query_batch([])
        assert isinstance(verdicts, np.ndarray)
        assert verdicts.size == 0
        assert store.n_items == 0

    def test_single_element_batch(self):
        store = make_store()
        store.add_batch([b"only"])
        assert store.query_batch([b"only"]).tolist() == [True]
        assert store.n_items == 1

    def test_duplicate_heavy_batch_matches_scalar(self):
        heavy = [b"dup-%d" % (i % 3) for i in range(90)]
        batch_store, scalar_store = make_store(), make_store()
        batch_store.add_batch(heavy)
        for element in heavy:
            scalar_store.add(element)
        probe = heavy + [b"absent-%d" % i for i in range(10)]
        assert (batch_store.query_batch(probe)
                == scalar_store.query_batch(probe)).all()
        assert batch_store.snapshot() == scalar_store.snapshot()


class TestDegenerateThroughService:
    """The wire half: same inputs, same answers, coalescer in play."""

    def test_empty_batch_round_trip(self, service_run, loaded_pair):
        workload, direct, served = loaded_pair

        async def scenario(client, service, port):
            empty_verdicts = await client.query([])
            assert await client.add([]) == 0
            return empty_verdicts

        verdicts = service_run(served, scenario, coalescer_config())
        assert verdicts.dtype == np.bool_
        assert verdicts.size == 0
        direct_empty = direct.query_batch([])
        assert verdicts.tolist() == direct_empty.tolist()

    def test_single_element_requests(self, service_run, loaded_pair):
        workload, direct, served = loaded_pair
        probe = workload.mixed_stream()[:30]
        expected = direct.query_batch(probe)

        async def scenario(client, service, port):
            verdicts = await asyncio.gather(
                *(client.query([e]) for e in probe))
            return np.concatenate(verdicts)

        wire = service_run(served, scenario, coalescer_config())
        assert (wire == expected).all()

    def test_duplicate_heavy_requests(self, service_run, loaded_pair):
        workload, direct, served = loaded_pair
        # Three distinct members repeated 40x, shuffled deterministically.
        base = list(workload.members[:3])
        probe = [base[(i * 7) % 3] for i in range(120)]
        expected = direct.query_batch(probe)

        async def scenario(client, service, port):
            chunks = chop_requests(probe, 11)
            verdicts = await asyncio.gather(
                *(client.query(chunk) for chunk in chunks))
            return np.concatenate(verdicts)

        wire = service_run(served, scenario, coalescer_config())
        assert (wire == expected).all()
        assert wire.all()  # every probe is a member

    @pytest.mark.parametrize(
        "request_size", [MAX_BATCH - 1, MAX_BATCH, MAX_BATCH + 1])
    def test_coalescer_boundary_sizes(self, service_run, loaded_pair,
                                      request_size):
        workload, direct, served = loaded_pair
        probe = workload.mixed_stream()
        requests = chop_requests(probe, request_size)
        expected = direct.query_batch(probe)

        async def scenario(client, service, port):
            verdicts = await asyncio.gather(
                *(client.query(chunk) for chunk in requests))
            stats = await client.stats()
            return np.concatenate(verdicts), stats

        wire, stats = service_run(served, scenario, coalescer_config())
        assert (wire == expected).all()
        # Every element went through an executed batch exactly once.
        assert stats["counters"]["elements_queried"] == len(probe)
        assert stats["counters"]["batches_executed"] >= 1

    @pytest.mark.parametrize(
        "request_size", [MAX_BATCH - 1, MAX_BATCH, MAX_BATCH + 1])
    def test_add_boundary_sizes_build_identical_state(
            self, service_run, request_size):
        workload = build_service_workload(100, seed=77)
        direct = make_store()
        direct.add_batch(list(workload.members))
        requests = chop_requests(list(workload.members), request_size)

        async def scenario(client, service, port):
            await asyncio.gather(
                *(client.add(chunk) for chunk in requests))
            return service.target.snapshot()

        blob = service_run(make_store(), scenario, coalescer_config())
        assert blob == direct.snapshot()
