"""Round-trip equivalence: the service is invisible to correctness.

The acceptance bar of the service PR: verdicts obtained through the
wire protocol — with concurrent clients feeding the micro-batching
coalescer — must match direct ``ShardedFilterStore.query_batch`` calls
bit for bit, and SNAPSHOT→RESTORE over the wire must reproduce
identical store state (snapshot blobs byte-equal).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.association import ShiftingAssociationFilter
from repro.core.membership import ShiftingBloomFilter
from repro.core.multiplicity import ShiftingMultiplicityFilter
from repro.errors import (
    ProtocolError,
    ServiceOverloadedError,
    UnsupportedOperationError,
)
from repro.service.client import ServiceClient
from repro.service.server import CoalescerConfig, FilterService
from repro.store.sharded import ShardedFilterStore
from repro.workloads.service import build_service_workload

N_SHARDS = 3
M_PER_SHARD = 16384
K = 8


def make_store() -> ShardedFilterStore:
    return ShardedFilterStore(
        lambda s: ShiftingBloomFilter(m=M_PER_SHARD, k=K),
        n_shards=N_SHARDS)


def make_loaded_pair(workload):
    """A direct ground-truth store and an identical one to serve."""
    direct, served = make_store(), make_store()
    direct.add_batch(list(workload.members))
    served.add_batch(list(workload.members))
    return direct, served


class TestMembershipRoundTrip:
    @pytest.mark.parametrize("config", [
        CoalescerConfig(max_batch=64, max_delay_us=200),
        CoalescerConfig(max_batch=1),          # uncoalesced scalar path
    ])
    def test_wire_verdicts_match_direct_store(self, service_run, config):
        workload = build_service_workload(600, seed=13)
        direct, served = make_loaded_pair(workload)
        requests = workload.request_stream(16)
        flat = [e for batch in requests for e in batch]
        expected = direct.query_batch(flat)

        async def scenario(client, service, port):
            async def one_client(offset):
                extra = await ServiceClient.connect(port=port)
                try:
                    out = []
                    for i in range(offset, len(requests), 4):
                        out.append((i, await extra.query(requests[i])))
                    return out
                finally:
                    await extra.close()

            slices = await asyncio.gather(*(one_client(c)
                                            for c in range(4)))
            ordered = [None] * len(requests)
            for per_client in slices:
                for i, verdicts in per_client:
                    ordered[i] = verdicts
            return np.concatenate(ordered)

        wire = service_run(served, scenario, config)
        assert wire.dtype == np.bool_
        assert (wire == expected).all()

    def test_add_over_wire_builds_identical_state(self, service_run):
        workload = build_service_workload(400, seed=5)
        direct = make_store()
        direct.add_batch(list(workload.members))

        # Serve an *empty* store; load the catalog through concurrent
        # ADDs so the add coalescer is exercised too.
        served = make_store()
        member_requests = [list(workload.members[i : i + 32])
                           for i in range(0, len(workload.members), 32)]

        async def load_members(client, service, port):
            await asyncio.gather(*(client.add(chunk)
                                   for chunk in member_requests))
            return service.target.snapshot()

        blob = service_run(served, load_members,
                           CoalescerConfig(max_batch=128, max_delay_us=200))
        # Bit-identical shard state: the snapshots agree byte for byte.
        assert blob == direct.snapshot()

    def test_snapshot_restore_over_wire(self, service_run):
        workload = build_service_workload(300, seed=21)
        direct, served = make_loaded_pair(workload)
        probe = workload.mixed_stream()

        async def scenario(client, service, port):
            blob = await client.snapshot()
            standby = FilterService(make_store())
            server = await standby.start(port=0)
            standby_port = server.sockets[0].getsockname()[1]
            other = await ServiceClient.connect(port=standby_port)
            try:
                restored = await other.restore(blob)
                verdicts = await other.query(probe)
                re_blob = await other.snapshot()
            finally:
                await other.close()
                server.close()
                await server.wait_closed()
            return blob, restored, verdicts, re_blob

        blob, restored, verdicts, re_blob = service_run(served, scenario)
        assert blob == direct.snapshot()
        assert restored == len(workload.members)
        assert re_blob == blob  # RESTORE reproduced identical state
        assert (verdicts == direct.query_batch(probe)).all()


class TestOtherQueryTypes:
    def test_association_answers_round_trip(self, service_run):
        filt = ShiftingAssociationFilter(m=8192, k=6)
        s1 = [b"s1-%03d" % i for i in range(200)]
        s2 = [b"s2-%03d" % i for i in range(200)] + s1[:60]
        filt.build_batch(s1, s2)
        probe = s1[:80] + s2[:80]
        expected = filt.query_batch(probe)

        async def scenario(client, service, port):
            halves = await asyncio.gather(
                client.query_multi(probe[:80]),
                client.query_multi(probe[80:]))
            return halves[0] + halves[1]

        wire = service_run(
            filt, scenario, CoalescerConfig(max_batch=64, max_delay_us=200))
        assert wire == expected

    def test_multiplicity_counts_round_trip(self, service_run):
        filt = ShiftingMultiplicityFilter(m=8192, k=4, c_max=16)
        elements = [b"flow-%03d" % i for i in range(120)]
        counts = [(i % 7) + 1 for i in range(120)]
        direct = ShiftingMultiplicityFilter(m=8192, k=4, c_max=16)
        direct.add_batch(elements, counts)
        probe = elements + [b"absent-%03d" % i for i in range(40)]
        expected = direct.query_batch(probe)

        async def scenario(client, service, port):
            await client.add(elements, counts)
            return await client.query(probe)

        wire = service_run(filt, scenario)
        assert wire.dtype == np.int64
        assert (wire == expected).all()


class TestOperationalSurface:
    def test_ping_and_stats(self, service_run):
        workload = build_service_workload(200, seed=2)
        store = make_store()
        store.add_batch(list(workload.members))

        async def scenario(client, service, port):
            banner = await client.ping()
            await client.query(workload.mixed_stream()[:64])
            return banner, await client.stats()

        banner, stats = service_run(store, scenario)
        assert "ShardedFilterStore" in banner
        assert stats["n_items"] == 200
        assert stats["n_shards"] == N_SHARDS
        assert stats["structure"] == "ShardedFilterStore"
        assert stats["counters"]["elements_queried"] == 64
        assert stats["counters"]["requests_total"] >= 2
        assert stats["access"]["read_words"] > 0
        assert stats["coalescer"]["max_batch"] == 512

    def test_server_errors_surface_with_original_message(
            self, service_run):
        async def scenario(client, service, port):
            with pytest.raises(ProtocolError) as excinfo:
                await client.restore(b"not-a-snapshot")
            assert "bad magic" in str(excinfo.value)
            # QUERY_MULTI against a membership store is a typed refusal.
            with pytest.raises(UnsupportedOperationError) as excinfo:
                await client.query_multi([b"x"])
            assert "QUERY_MULTI" in str(excinfo.value)
            # The connection survives both failures.
            assert (await client.query([b"x"])).tolist() == [False]
            return True

        assert service_run(make_store(), scenario)

    def test_query_multi_typed_refusal_in_scalar_mode(self, service_run):
        # The uncoalesced path must refuse with the same typed error as
        # the coalesced path, not crash into an AttributeError.
        async def scenario(client, service, port):
            with pytest.raises(UnsupportedOperationError) as excinfo:
                await client.query_multi([b"x"])
            assert "QUERY_MULTI" in str(excinfo.value)
            return True

        assert service_run(
            make_store(), scenario, CoalescerConfig(max_batch=1))

    def test_mixed_counts_adds_execute_isolated(self, service_run):
        # A counts-carrying ADD coalescing into the same window as a
        # countless ADD must not poison it: membership shards reject the
        # counts request, the countless one still lands.
        config = CoalescerConfig(max_batch=1000, max_delay_us=5000)

        async def scenario(client, service, port):
            other = await ServiceClient.connect(port=port)
            try:
                good, bad = await asyncio.gather(
                    client.add([b"good-elem"]),
                    other.add([b"bad-elem"], [2]),
                    return_exceptions=True)
            finally:
                await other.close()
            assert good == 1
            assert isinstance(bad, Exception)
            verdicts = await client.query([b"good-elem", b"bad-elem"])
            assert verdicts.tolist() == [True, False]
            return True

        assert service_run(make_store(), scenario, config)

    def test_overload_backpressure(self, service_run):
        # One admission slot, a coalescer window far longer than the
        # test: the first query parks in the coalescer, every following
        # pipelined request must be shed with ServiceOverloadedError.
        config = CoalescerConfig(
            max_batch=10_000, max_delay_us=200_000, max_inflight=1)

        async def scenario(client, service, port):
            waiters = [asyncio.ensure_future(client.query([b"q-%d" % i]))
                       for i in range(6)]
            done = await asyncio.gather(*waiters, return_exceptions=True)
            shed = [r for r in done
                    if isinstance(r, ServiceOverloadedError)]
            served = [r for r in done if isinstance(r, np.ndarray)]
            assert len(shed) == 5
            assert len(served) == 1
            assert "max_inflight=1" in str(shed[0])
            stats = await client.stats()
            assert stats["counters"]["overload_rejections"] == 5
            return True

        assert service_run(make_store(), scenario, config)
