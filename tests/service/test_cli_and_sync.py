"""CLI subcommands and the blocking client wrapper.

The CLI's ``ping`` and ``bench`` are CI gates (exit codes matter), so
they are tested in-process against a live ephemeral server rather than
mocked; ``serve`` is exercised down to the server-start boundary via
its target builder and parser defaults.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.service.__main__ import (
    _bench,
    _build_target,
    _ping,
    build_parser,
)
from repro.service.client import SyncServiceClient
from repro.service.server import CoalescerConfig, FilterService
from repro.store.sharded import ShardedFilterStore


def start_background_server(target, config=None):
    """A FilterService on its own daemon-thread event loop.

    Returns ``(port, stop)``; tests drive it from plain blocking code,
    exactly how the sync client and CLI are used in the field.
    """
    started = threading.Event()
    box = {}

    async def main():
        service = FilterService(target, config)
        server = await service.start(port=0)
        box["port"] = server.sockets[0].getsockname()[1]
        box["loop"] = asyncio.get_running_loop()
        box["stopped"] = asyncio.Event()
        started.set()
        async with server:
            await box["stopped"].wait()

    thread = threading.Thread(
        target=lambda: asyncio.run(main()), daemon=True)
    thread.start()
    assert started.wait(10)

    def stop():
        box["loop"].call_soon_threadsafe(box["stopped"].set)
        thread.join(10)

    return box["port"], stop


class TestParserAndTargets:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.shards == 4
        assert args.max_batch == 512
        args = build_parser().parse_args(
            ["bench", "--clients", "16", "--n", "100"])
        assert args.clients == 16
        assert args.elements_per_request == 16

    def test_build_target_shapes(self):
        store = _build_target(shards=3, m=4096, k=6)
        assert isinstance(store, ShardedFilterStore)
        assert store.n_shards == 3
        solo = _build_target(shards=0, m=4096, k=6)
        assert isinstance(solo, ShiftingBloomFilter)
        assert solo.m == 4096


class TestServe:
    def test_serve_preloads_and_answers(self, capsys):
        from repro.service.__main__ import _serve
        from repro.service.client import ServiceClient

        async def main():
            args = build_parser().parse_args(
                ["serve", "--port", "0", "--shards", "2",
                 "--m", "16384", "--preload", "100", "--seed", "9"])
            serve_task = asyncio.ensure_future(_serve(args))
            # Wait for the readiness banner (printed once bound).
            for _ in range(100):
                await asyncio.sleep(0.01)
                out = capsys.readouterr().out
                if "listening on" in out:
                    break
            else:  # pragma: no cover - diagnosis aid
                raise AssertionError("server never reported readiness")
            port = int(out.split(":")[-1].split(" ")[0].strip("()"))
            client = await ServiceClient.connect(port=port)
            try:
                stats = await client.stats()
            finally:
                await client.close()
            serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)
            return stats

        stats = asyncio.run(main())
        assert stats["n_items"] == 100
        assert stats["n_shards"] == 2


class TestPingAndBench:
    def test_ping_success(self, capsys):
        port, stop = start_background_server(
            _build_target(shards=2, m=8192, k=6))
        try:
            args = build_parser().parse_args(
                ["ping", "--port", str(port), "--retries", "5"])
            assert asyncio.run(_ping(args)) == 0
        finally:
            stop()
        assert "PONG" in capsys.readouterr().out

    def test_ping_failure_exits_nonzero(self, capsys):
        args = build_parser().parse_args(
            ["ping", "--port", "1", "--retries", "2",
             "--retry-delay", "0.01"])
        assert asyncio.run(_ping(args)) == 1
        assert "ping failed" in capsys.readouterr().err

    def test_bench_verifies_members_and_exits_zero(self, capsys):
        port, stop = start_background_server(
            _build_target(shards=2, m=65536, k=8),
            CoalescerConfig(max_batch=128, max_delay_us=200))
        try:
            args = build_parser().parse_args(
                ["bench", "--port", str(port), "--clients", "4",
                 "--n", "200", "--seed", "3"])
            assert asyncio.run(_bench(args)) == 0
        finally:
            stop()
        out = capsys.readouterr().out
        assert "OK: every member verdict True" in out
        assert "elements/s" in out

    def test_bench_handles_odd_request_size(self, capsys):
        # With an odd --elements-per-request, batches start at odd
        # global offsets; the member check must track the stream index,
        # not the batch-local one, or healthy servers report FAIL.
        port, stop = start_background_server(
            _build_target(shards=2, m=65536, k=8),
            CoalescerConfig(max_batch=128, max_delay_us=200))
        try:
            args = build_parser().parse_args(
                ["bench", "--port", str(port), "--clients", "3",
                 "--n", "120", "--elements-per-request", "15"])
            assert asyncio.run(_bench(args)) == 0
        finally:
            stop()
        assert "OK" in capsys.readouterr().out

    def test_bench_detects_lost_members(self, capsys, monkeypatch):
        # Sabotage the catalog load: with ADD a no-op the members are
        # never inserted, ShBF has no false negatives, so every member
        # verdict is False and bench must exit non-zero.
        from repro.service.client import ServiceClient

        async def dropped_add(self, elements, counts=None):
            return 0

        monkeypatch.setattr(ServiceClient, "add", dropped_add)
        port, stop = start_background_server(
            _build_target(shards=2, m=65536, k=8))
        try:
            args = build_parser().parse_args(
                ["bench", "--port", str(port), "--clients", "2",
                 "--n", "50", "--seed", "3"])
            assert asyncio.run(_bench(args)) == 1
        finally:
            stop()
        assert "member queries answered False" in capsys.readouterr().err


class TestSyncClient:
    def test_sync_round_trip(self):
        port, stop = start_background_server(
            _build_target(shards=2, m=16384, k=8),
            CoalescerConfig(max_batch=64, max_delay_us=100))
        try:
            with SyncServiceClient(port=port) as client:
                assert "ShardedFilterStore" in client.ping()
                assert client.add(["alpha", "beta", "gamma"]) == 3
                verdicts = client.query(["alpha", "beta", "nope"])
                assert isinstance(verdicts, np.ndarray)
                assert verdicts.tolist() == [True, True, False]
                blob = client.snapshot()
                assert blob[:4] == b"SHBS"
                assert client.restore(blob) == 3
                stats = client.stats()
                assert stats["n_items"] == 3
                assert stats["counters"]["elements_added"] == 3
        finally:
            stop()

    def test_sync_client_surfaces_server_errors(self):
        from repro.errors import ProtocolError

        port, stop = start_background_server(
            _build_target(shards=2, m=16384, k=8))
        try:
            with SyncServiceClient(port=port) as client:
                with pytest.raises(ProtocolError):
                    client.restore(b"junk")
                # connection still healthy afterwards
                assert client.query([b"x"]).tolist() == [False]
        finally:
            stop()

    def test_sync_client_close_is_idempotent(self):
        port, stop = start_background_server(
            _build_target(shards=1, m=8192, k=6))
        try:
            client = SyncServiceClient(port=port)
            client.ping()
            client.close()
            client.close()  # second close is a no-op
        finally:
            stop()
