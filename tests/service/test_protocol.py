"""Wire-protocol unit tests: every codec round-trips, every mangled
payload raises :class:`~repro.errors.ProtocolError` instead of decoding
into something silently wrong."""

from __future__ import annotations

import asyncio
import itertools

import numpy as np
import pytest

from repro.core.association_types import Association, AssociationAnswer
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ServiceOverloadedError,
    remote_error,
)
from repro.service import protocol


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
class TestFrames:
    def test_round_trip(self):
        frame = protocol.encode_frame(41, protocol.OP_QUERY, b"payload")
        assert protocol.decode_frame(frame) == (
            41, protocol.OP_QUERY, b"payload", None)

    def test_empty_payload_round_trip(self):
        frame = protocol.encode_frame(0, protocol.OP_PING)
        assert protocol.decode_frame(frame) == (
            0, protocol.OP_PING, b"", None)

    def test_traced_round_trip(self):
        trace = 0xDEAD_BEEF_CAFE_F00D
        frame = protocol.encode_frame(9, protocol.OP_QUERY, b"q",
                                      trace_id=trace)
        assert protocol.decode_frame(frame) == (
            9, protocol.OP_QUERY, b"q", trace)

    def test_untraced_frame_bytes_unchanged(self):
        # The trace field is strictly opt-in: without a trace id the
        # encoding is byte-identical to the pre-tracing wire format.
        frame = protocol.encode_frame(41, protocol.OP_QUERY, b"payload")
        assert frame[8] == protocol.OP_QUERY
        assert frame[8] & protocol.TRACE_FLAG == 0
        traced = protocol.encode_frame(41, protocol.OP_QUERY, b"payload",
                                       trace_id=1)
        assert len(traced) == len(frame) + 8
        assert traced[8] == protocol.OP_QUERY | protocol.TRACE_FLAG

    def test_traced_frame_too_short_rejected(self):
        # A flagged frame whose body can't hold the 8-byte trace id is
        # malformed, not silently untraced.
        frame = protocol.encode_frame(3, protocol.OP_PING, b"abc",
                                      trace_id=5)
        body = frame[4:4 + 4 + 1 + 4]  # req id + code + 4 of 8 id bytes
        mangled = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError):
            protocol.decode_frame(mangled)

    def test_truncated_frame_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"\x00\x00")

    def test_length_mismatch_rejected(self):
        frame = protocol.encode_frame(1, protocol.OP_PING, b"x")
        with pytest.raises(ProtocolError):
            protocol.decode_frame(frame + b"extra")
        with pytest.raises(ProtocolError):
            protocol.decode_frame(frame[:-1])

    def test_oversized_frame_rejected_at_encode(self, monkeypatch):
        # Shrink the limit so the test doesn't allocate 256 MiB.
        monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 64)
        with pytest.raises(ProtocolError):
            protocol.encode_frame(0, protocol.OP_ADD, b"\x00" * 128)

    def test_read_frame_eof_and_truncation(self):
        async def main():
            # Clean EOF before any byte -> None.
            reader = asyncio.StreamReader()
            reader.feed_eof()
            assert await protocol.read_frame(reader) is None

            # EOF inside a frame body -> ProtocolError.
            reader = asyncio.StreamReader()
            frame = protocol.encode_frame(7, protocol.OP_PING, b"abc")
            reader.feed_data(frame[:-2])
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

            # A hostile length prefix is rejected before allocation.
            reader = asyncio.StreamReader()
            reader.feed_data(b"\xff\xff\xff\xff")
            reader.feed_eof()
            with pytest.raises(ProtocolError):
                await protocol.read_frame(reader)

        asyncio.run(main())

    def test_read_frame_round_trip(self):
        async def main():
            reader = asyncio.StreamReader()
            reader.feed_data(protocol.encode_frame(3, protocol.OP_STATS))
            reader.feed_data(
                protocol.encode_frame(4, protocol.OP_QUERY, b"q",
                                      trace_id=0x42))
            reader.feed_eof()
            assert await protocol.read_frame(reader) == (
                3, protocol.OP_STATS, b"", None)
            assert await protocol.read_frame(reader) == (
                4, protocol.OP_QUERY, b"q", 0x42)
            assert await protocol.read_frame(reader) is None

        asyncio.run(main())


# ----------------------------------------------------------------------
# Element batches
# ----------------------------------------------------------------------
class TestElements:
    @pytest.mark.parametrize("elements", [
        [],
        [b"solo"],
        [b"a", b"b", b"a", b"a"],          # duplicate-heavy
        [b"", b"x", b""],                  # empty elements are elements
        ["str", b"bytes", 42],             # canonicalised kinds
    ])
    def test_round_trip(self, elements):
        from repro._util import to_bytes

        payload = protocol.encode_elements(elements)
        decoded, counts = protocol.decode_elements(payload)
        assert decoded == [to_bytes(e) for e in elements]
        assert counts is None

    def test_round_trip_with_counts(self):
        payload = protocol.encode_elements([b"a", b"b"], [3, 9])
        decoded, counts = protocol.decode_elements(payload)
        assert decoded == [b"a", b"b"]
        assert counts == [3, 9]

    def test_count_length_mismatch_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_elements([b"a", b"b"], [1])

    def test_truncated_batch_rejected(self):
        payload = protocol.encode_elements([b"alpha", b"beta"])
        for cut in (3, len(payload) - 1):
            with pytest.raises(ProtocolError):
                protocol.decode_elements(payload[:cut])

    def test_trailing_bytes_rejected(self):
        payload = protocol.encode_elements([b"alpha"])
        with pytest.raises(ProtocolError):
            protocol.decode_elements(payload + b"\x00")

    def test_bad_flag_rejected(self):
        payload = bytearray(protocol.encode_elements([b"a"]))
        payload[0] = 7
        with pytest.raises(ProtocolError):
            protocol.decode_elements(bytes(payload))


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------
class TestVerdicts:
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 500])
    def test_bool_round_trip(self, n):
        rng = np.random.default_rng(n)
        verdicts = rng.random(n) < 0.5
        decoded = protocol.decode_verdicts(
            protocol.encode_verdicts(verdicts))
        assert decoded.dtype == np.bool_
        assert (decoded == verdicts).all()

    def test_int64_round_trip(self):
        counts = np.array([0, 1, -3, 2**40], dtype=np.int64)
        decoded = protocol.decode_verdicts(
            protocol.encode_verdicts(counts))
        assert decoded.dtype == np.int64
        assert (decoded == counts).all()

    def test_object_dtype_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_verdicts(np.array([object()], dtype=object))

    def test_truncated_verdicts_rejected(self):
        payload = protocol.encode_verdicts(np.ones(16, dtype=bool))
        with pytest.raises(ProtocolError):
            protocol.decode_verdicts(payload[:-1])
        with pytest.raises(ProtocolError):
            protocol.decode_verdicts(b"\x00")

    def test_unknown_kind_rejected(self):
        payload = bytearray(
            protocol.encode_verdicts(np.ones(8, dtype=bool)))
        payload[0] = 9
        with pytest.raises(ProtocolError):
            protocol.decode_verdicts(bytes(payload))


# ----------------------------------------------------------------------
# Association answers
# ----------------------------------------------------------------------
class TestAssociationAnswers:
    def test_all_outcomes_round_trip(self):
        regions = (Association.S1_ONLY, Association.BOTH,
                   Association.S2_ONLY)
        answers = []
        for r in range(len(regions) + 1):
            for combo in itertools.combinations(regions, r):
                for clear in (False, True):
                    answers.append(AssociationAnswer(
                        candidates=frozenset(combo), clear=clear))
        decoded = protocol.decode_association_answers(
            protocol.encode_association_answers(answers))
        assert decoded == answers

    def test_empty_round_trip(self):
        assert protocol.decode_association_answers(
            protocol.encode_association_answers([])) == []

    def test_unknown_bits_rejected(self):
        payload = bytearray(protocol.encode_association_answers(
            [AssociationAnswer(candidates=frozenset(), clear=False)]))
        payload[-1] = 0x80
        with pytest.raises(ProtocolError):
            protocol.decode_association_answers(bytes(payload))

    def test_count_mismatch_rejected(self):
        payload = protocol.encode_association_answers(
            [AssociationAnswer(candidates=frozenset(), clear=True)])
        with pytest.raises(ProtocolError):
            protocol.decode_association_answers(payload + b"\x00")


# ----------------------------------------------------------------------
# Errors across the wire
# ----------------------------------------------------------------------
class TestErrors:
    def test_error_round_trip(self):
        exc = ConfigurationError("m must be positive, got -4")
        name, message = protocol.decode_error(protocol.encode_error(exc))
        assert name == "ConfigurationError"
        assert message == "m must be positive, got -4"

    def test_remote_error_maps_known_types(self):
        exc = remote_error("ServiceOverloadedError", "busy")
        assert isinstance(exc, ServiceOverloadedError)
        assert str(exc) == "busy"

    def test_remote_error_refuses_arbitrary_types(self):
        exc = remote_error("SystemExit", "nope")
        assert isinstance(exc, ProtocolError)
        assert "nope" in str(exc)
        exc = remote_error("ReproError", "base class is not a carrier")
        assert isinstance(exc, ProtocolError)

    def test_truncated_error_payload_rejected(self):
        payload = protocol.encode_error(ValueError("boom"))
        with pytest.raises(ProtocolError):
            protocol.decode_error(payload[:1])
        with pytest.raises(ProtocolError):
            protocol.decode_error(b"\x00\xffX")
