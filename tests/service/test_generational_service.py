"""Serving a generational TTL store: STATS, metrics, snapshots and the
rotation-aware stats cache."""

from __future__ import annotations

import json

import numpy as np

from repro.core.membership import ShiftingBloomFilter
from repro.service.client import ServiceClient
from repro.service.server import FilterService
from repro.store import GenerationalStore
from tests.conftest import make_elements

MEMBERS = make_elements(400, "svc-gen-member")
ABSENT = make_elements(400, "svc-gen-absent")


def make_store(generations=3, rotate_after_items=0, m=8192):
    return GenerationalStore(
        lambda seq: ShiftingBloomFilter(m=m, k=4),
        generations=generations,
        rotate_after_items=rotate_after_items)


class TestStats:
    def test_ttl_sections_exposed_over_wire(self, service_run):
        store = make_store(rotate_after_items=100)
        store.add_batch(MEMBERS[:40])

        async def scenario(client, service, port):
            return await client.stats()

        stats = service_run(store, scenario)
        assert stats["structure"] == "GenerationalStore"
        assert stats["ttl"] == {
            "generations": 3,
            "rotate_after_items": 100,
            "rotate_after_s": 0.0,
        }
        rows = stats["generations"]
        assert [row["n_items"] for row in rows] == [40, 0, 0]
        assert [row["seq"] for row in rows] == [2, 1, 0]
        assert all(row["age_s"] >= 0.0 for row in rows)
        assert stats["size_bits"] == store.size_bits
        assert stats["n_items"] == 40

    def test_non_generational_target_reports_none(self, service_run):
        async def scenario(client, service, port):
            return await client.stats()

        stats = service_run(ShiftingBloomFilter(m=4096, k=4), scenario)
        assert stats["ttl"] is None
        assert stats["generations"] is None

    def test_stats_cache_rekeys_on_rotation(self, service_run):
        """The satellite regression: rotation changes served geometry
        without changing the target's identity, so a STATS scrape after
        a rotation must not serve the stale static fragment."""
        m_cell = [4096]
        store = GenerationalStore(
            lambda seq: ShiftingBloomFilter(m=m_cell[0], k=4),
            generations=3)

        original_bits = store.size_bits

        async def scenario(client, service, port):
            before = await client.stats()
            m_cell[0] = 16384  # the next head rotates in 4x larger
            service.target.rotate()
            after = await client.stats()
            return before, after

        before, after = service_run(store, scenario)
        assert before["size_bits"] == original_bits
        assert after["size_bits"] == store.size_bits
        assert after["size_bits"] > before["size_bits"]

    def test_stats_json_matches_stats_dict_after_rotation(self):
        service = FilterService(make_store())
        service.stats_json()  # prime the static-fragment cache
        service.target.add_batch(MEMBERS[:10])
        service.target.rotate()

        def ageless(stats):
            # age_s advances between any two samples; everything else
            # must agree exactly
            for row in stats["generations"]:
                row.pop("age_s")
            return stats

        assert ageless(json.loads(service.stats_json())) \
            == ageless(service.stats())


class TestServing:
    def test_wire_verdicts_match_direct_across_rotations(self, service_run):
        direct = make_store()
        direct.add_batch(MEMBERS[:200])
        direct.rotate()
        direct.add_batch(MEMBERS[200:400])

        served = make_store()

        async def scenario(client, service, port):
            await client.add(MEMBERS[:200])
            service.target.rotate()
            await client.add(MEMBERS[200:400])
            return await client.query(MEMBERS + ABSENT)

        wire = service_run(served, scenario)
        assert wire.dtype == np.bool_
        assert wire.tolist() \
            == direct.query_batch(MEMBERS + ABSENT).tolist()
        assert wire[: len(MEMBERS)].all()

    def test_snapshot_restore_over_wire(self, service_run):
        store = make_store(rotate_after_items=500)
        store.add_batch(MEMBERS[:150])
        store.rotate()
        store.add_batch(MEMBERS[150:300])
        probe = MEMBERS[:300] + ABSENT[:300]

        async def scenario(client, service, port):
            blob = await client.snapshot()
            assert blob == service.target.snapshot()
            # restore the SHBG blob into a service hosting a plain filter
            standby = FilterService(ShiftingBloomFilter(m=4096, k=4))
            server = await standby.start(port=0)
            standby_port = server.sockets[0].getsockname()[1]
            other = await ServiceClient.connect(port=standby_port)
            try:
                await other.restore(blob)
                verdicts = await other.query(probe)
                stats = await other.stats()
                re_blob = await other.snapshot()
            finally:
                await other.close()
                server.close()
                await server.wait_closed()
            return blob, re_blob, verdicts, stats

        blob, re_blob, verdicts, stats = service_run(store, scenario)
        assert re_blob == blob
        assert stats["structure"] == "GenerationalStore"
        assert stats["ttl"]["rotate_after_items"] == 500
        assert verdicts.tolist() == store.query_batch(probe).tolist()


class TestRotationMetrics:
    def test_rotations_counter_stall_histogram_and_gauge(self, service_run):
        store = make_store(generations=4)

        async def scenario(client, service, port):
            service.target.rotate()
            service.target.rotate()
            return await client.metrics("text")

        text = service_run(store, scenario)
        assert "repro_ttl_rotations_total 2" in text
        assert "repro_ttl_live_generations 4" in text
        assert "repro_ttl_rotation_stall_seconds_count 2" in text

    def test_gauge_reads_zero_for_plain_targets(self, service_run):
        async def scenario(client, service, port):
            return await client.metrics("text")

        text = service_run(ShiftingBloomFilter(m=4096, k=4), scenario)
        assert "repro_ttl_live_generations 0" in text
        assert "repro_ttl_rotations_total 0" in text
