"""Client deadlines: ops against a stalled server must fail fast.

These tests run their own stub servers (a socket that accepts and then
never answers) rather than the ``service_run`` fixture — the point is
exactly the case where the real server machinery never replies.
"""

import asyncio
import time

import pytest

from repro.errors import DeadlineExceededError
from repro.service.client import ServiceClient, SyncServiceClient
from repro.service.server import FilterService
from repro.core.membership import ShiftingBloomFilter


def run(coro):
    return asyncio.run(coro)


async def start_black_hole():
    """A server that accepts, reads, and never writes back."""

    async def handler(reader, writer):
        try:
            while await reader.read(65536):
                pass
        except (ConnectionError, OSError):
            pass

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class TestOpDeadline:
    def test_stalled_server_trips_the_deadline(self):
        async def main():
            server, port = await start_black_hole()
            client = await ServiceClient.connect(
                port=port, op_timeout=0.15)
            try:
                start = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    await client.ping()
                return time.monotonic() - start
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        elapsed = run(main())
        assert 0.1 <= elapsed < 2.0

    def test_timed_out_request_leaves_no_pending_entry(self):
        async def main():
            server, port = await start_black_hole()
            client = await ServiceClient.connect(
                port=port, op_timeout=0.05)
            try:
                with pytest.raises(DeadlineExceededError):
                    await client.ping()
                return len(client._pending)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        assert run(main()) == 0

    def test_per_call_override_beats_the_connection_default(self):
        async def main():
            server, port = await start_black_hole()
            client = await ServiceClient.connect(
                port=port, op_timeout=30.0)
            try:
                start = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    await client.ping(timeout=0.1)
                return time.monotonic() - start
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        assert run(main()) < 2.0

    def test_deadline_does_not_fire_on_a_healthy_server(self):
        async def main():
            service = FilterService(ShiftingBloomFilter(m=1024, k=4))
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            client = await ServiceClient.connect(
                port=port, op_timeout=5.0)
            try:
                assert await client.add([b"a"]) == 1
                assert bool((await client.query([b"a"]))[0])
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(main())

    def test_deadline_error_is_oserror_compatible(self):
        # Transport handlers written as ``except OSError`` (the
        # pre-hardening idiom) must keep catching deadline misses.
        assert issubclass(DeadlineExceededError, TimeoutError)
        assert issubclass(DeadlineExceededError, OSError)


class TestSyncClientLifecycle:
    def test_sync_timeout_raises_not_hangs(self):
        loop = asyncio.new_event_loop()
        server, port = loop.run_until_complete(start_black_hole())
        try:
            client = SyncServiceClient(port=port, timeout=0.15)
            try:
                start = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    client.ping()
                assert time.monotonic() - start < 5.0
            finally:
                client.close()
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()

    def test_failed_connect_does_not_leak_a_thread(self):
        import threading

        before = threading.active_count()
        with pytest.raises((ConnectionError, OSError)):
            SyncServiceClient(host="127.0.0.1", port=1,
                              timeout=0.5)
        # The worker thread wound down with the failed connect.
        assert threading.active_count() <= before

    def test_context_manager_exit_safe_after_failed_connect(self):
        with pytest.raises((ConnectionError, OSError)):
            with SyncServiceClient(host="127.0.0.1", port=1,
                                   timeout=0.5):
                pass  # pragma: no cover - connect fails first

    def test_close_warns_instead_of_hanging_on_a_wedged_loop(self):
        async def main():
            service = FilterService(ShiftingBloomFilter(m=1024, k=4))
            server = await service.start(port=0)
            return service, server, server.sockets[0].getsockname()[1]

        loop = asyncio.new_event_loop()
        service, server, port = loop.run_until_complete(main())
        try:
            client = SyncServiceClient(port=port, timeout=0.2)
            # Wedge the worker loop in blocking (non-async) code so it
            # cannot answer the close() or the stop request in time.
            client._loop.call_soon_threadsafe(time.sleep, 2.0)
            with pytest.warns(ResourceWarning, match="worker thread"):
                try:
                    client.close()
                except DeadlineExceededError:
                    pass  # close's own op timing out is expected here
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            loop.close()
