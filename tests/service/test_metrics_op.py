"""The METRICS wire op and request tracing against a live server."""

from __future__ import annotations

import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.obs import names as metric_names
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, format_trace_id
from repro.service.server import CoalescerConfig, FilterService


def _filter():
    f = ShiftingBloomFilter(m=4096, k=4)
    f.add_batch([b"alpha", b"beta"])
    return f


class TestMetricsOp:
    def test_text_exposition_after_traffic(self, service_run):
        async def scenario(client, service, port):
            await client.query([b"alpha", b"nope"])
            await client.ping()
            return await client.metrics()

        text = service_run(_filter(), scenario)
        assert ('%s{op="QUERY"} 1'
                % metric_names.SERVER_REQUESTS) in text
        assert ('%s{op="PING"} 1'
                % metric_names.SERVER_REQUESTS) in text
        assert ("# TYPE %s histogram"
                % metric_names.SERVER_OP_LATENCY) in text

    def test_json_snapshot_merges_into_a_registry(self, service_run):
        async def scenario(client, service, port):
            await client.query([b"alpha"])
            return await client.metrics("json")

        snapshot = service_run(_filter(), scenario)
        assert isinstance(snapshot, dict) and "metrics" in snapshot
        aggregate = MetricsRegistry()
        aggregate.merge_dict(snapshot)
        aggregate.merge_dict(snapshot)  # two scrapes fold exactly
        assert aggregate.counter(
            metric_names.SERVER_REQUESTS, op="QUERY").value == 2
        hist = aggregate.histogram(
            metric_names.SERVER_OP_LATENCY, op="QUERY")
        assert hist.count == 2

    def test_unknown_format_refused_client_side(self, service_run):
        async def scenario(client, service, port):
            with pytest.raises(ValueError):
                await client.metrics("xml")
            return True

        assert service_run(_filter(), scenario)

    def test_element_sizes_and_coalescer_observed(self, service_run):
        async def scenario(client, service, port):
            await client.query([b"alpha", b"beta", b"nope"])
            return await client.metrics("json")

        snapshot = service_run(
            _filter(), scenario,
            CoalescerConfig(max_batch=64, max_delay_us=100))
        by_name = {}
        for entry in snapshot["metrics"]:
            by_name.setdefault(entry["name"], []).append(entry)
        (sizes,) = [e for e in by_name[metric_names.SERVER_OP_ELEMENTS]
                    if e["labels"] == {"op": "QUERY"}]
        assert sizes["count"] == 1 and sizes["sum"] == 3.0
        (batch,) = [
            e for e in by_name[metric_names.COALESCER_BATCH_ELEMENTS]
            if e["count"]]
        assert batch["sum"] == 3.0
        flushes = by_name[metric_names.COALESCER_FLUSHES]
        assert sum(entry["value"] for entry in flushes) >= 1


class TestTracedRequests:
    def test_traced_query_emits_server_spans(self, service_run):
        spans = []

        async def scenario(client, service, port):
            service.tracer = Tracer(component="node:test", sink=spans)
            await client.query([b"alpha"], trace_id=0xC0FFEE)
            await client.query([b"beta"])  # untraced: no span
            return await client.query([b"alpha"], trace_id=0xBEEF)

        service_run(_filter(), scenario,
                    CoalescerConfig(max_batch=64, max_delay_us=100))
        by_trace = {}
        for record in spans:
            by_trace.setdefault(record["trace"], []).append(record)
        assert set(by_trace) == {
            format_trace_id(0xC0FFEE), format_trace_id(0xBEEF)}
        names = {r["span"] for r in by_trace[format_trace_id(0xC0FFEE)]}
        assert "server.request" in names
        assert "coalescer.batch" in names

    def test_untraced_traffic_emits_nothing(self, service_run):
        spans = []

        async def scenario(client, service, port):
            service.tracer = Tracer(component="node:test", sink=spans)
            await client.query([b"alpha"])
            await client.add([b"gamma"])
            return True

        assert service_run(_filter(), scenario)
        assert spans == []


def test_metrics_disabled_service_serves_empty_exposition():
    # A disabled registry is a supported production mode: the server
    # still answers METRICS, with an empty exposition.
    import asyncio

    from repro.service.client import ServiceClient

    async def main():
        svc = FilterService(
            _filter(), metrics=MetricsRegistry(enabled=False))
        server = await svc.start(port=0)
        port = server.sockets[0].getsockname()[1]
        client = await ServiceClient.connect(port=port)
        try:
            await client.query([b"alpha"])
            return await client.metrics()
        finally:
            await client.close()
            server.close()
            await server.wait_closed()

    assert asyncio.run(main()) == ""
