"""Server-side frame robustness: bad bytes cost one connection, not
the server.

Every scenario drives a raw socket speaking deliberately broken wire
protocol at a live service while a healthy pipelined client shares the
server; the contract is that the poisoned connection is dropped with a
logged error and a counter bump, and the healthy client (and the
coalescer behind it) never notices.
"""

import asyncio
import logging
import struct

import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.server import FilterService


def robustness_run(scenario):
    """Run ``scenario(port, service)`` against a live service, then
    prove a healthy client still gets answers; returns the service."""

    async def main():
        service = FilterService(ShiftingBloomFilter(m=4096, k=4))
        server = await service.start(port=0)
        port = server.sockets[0].getsockname()[1]
        healthy = await ServiceClient.connect(port=port, op_timeout=5.0)
        try:
            await healthy.add([b"canary"])
            await scenario(port, service)
            # The healthy connection and the coalescer are undisturbed.
            verdicts = await healthy.query([b"canary"])
            assert bool(verdicts[0])
            assert await healthy.ping()
        finally:
            await healthy.close()
            server.close()
            await server.wait_closed()
        return service

    return asyncio.run(main())


async def read_until_closed(reader) -> bytes:
    data = b""
    while True:
        chunk = await asyncio.wait_for(reader.read(65536), timeout=5.0)
        if not chunk:
            return data
        data += chunk


class TestMalformedOp:
    def test_unknown_op_answers_err_then_drops_connection(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            # 0x6E keeps the high (trace-flag) bit clear: this is an
            # unknown *op*, not a malformed trace field.
            writer.write(protocol.encode_frame(7, 0x6E, b""))
            await writer.drain()
            data = await read_until_closed(reader)
            # One ERR frame came back before the close.
            request_id, status, payload, _trace = protocol.decode_frame(
                data)
            assert request_id == 7
            assert status == protocol.STATUS_ERR
            name, message = protocol.decode_error(payload)
            assert "op" in message
            writer.close()

        service = robustness_run(scenario)
        assert service.counters.protocol_errors >= 1
        assert service.counters.connections_dropped >= 1


class TestTraceFlagWithoutTraceId:
    def test_flagged_frame_too_short_drops_connection(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            # Trace flag set but no 8-byte trace id in the body: the
            # frame is structurally broken and costs the connection.
            body = struct.pack("!IB", 7, protocol.OP_PING
                               | protocol.TRACE_FLAG)
            writer.write(struct.pack("!I", len(body)) + body)
            await writer.drain()
            assert await read_until_closed(reader) == b""
            writer.close()

        service = robustness_run(scenario)
        assert service.counters.protocol_errors >= 1
        assert service.counters.connections_dropped >= 1


class TestTruncatedLengthPrefix:
    def test_partial_header_then_close_is_logged_not_fatal(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"\x00\x00")  # half a length prefix
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)

        service = robustness_run(scenario)
        assert service.counters.protocol_errors >= 1
        assert service.counters.connections_dropped >= 1


class TestClientKilledMidFrame:
    def test_death_between_header_and_body(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            # Promise a 100-byte body, send 10, die without FIN niceties.
            writer.write(struct.pack("!I", 100) + b"x" * 10)
            await writer.drain()
            writer.transport.abort()
            await asyncio.sleep(0.05)

        service = robustness_run(scenario)
        assert service.counters.protocol_errors >= 1
        assert service.counters.connections_dropped >= 1


class TestOversizedFrame:
    def test_length_prefix_beyond_limit_drops_connection(self):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(struct.pack(
                "!I", protocol.MAX_FRAME_BYTES + 1))
            await writer.drain()
            # The server must hang up without trying to buffer 256 MiB.
            assert await read_until_closed(reader) == b""
            writer.close()

        service = robustness_run(scenario)
        assert service.counters.protocol_errors >= 1
        assert service.counters.connections_dropped >= 1


class TestLogging:
    def test_dropped_connection_is_logged(self, caplog):
        async def scenario(port, service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            writer.write(b"\xFF")  # garbage, then vanish
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)

        with caplog.at_level(logging.WARNING, logger="repro.service"):
            robustness_run(scenario)
        assert any("dropping connection" in r.getMessage()
                   for r in caplog.records)


class TestBlastRadius:
    def test_many_poisoned_connections_leave_service_healthy(self):
        async def scenario(port, service):
            for i in range(8):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(struct.pack("!I", 50) + b"y" * (i % 5))
                await writer.drain()
                writer.transport.abort()
            await asyncio.sleep(0.1)

        service = robustness_run(scenario)
        assert service.counters.connections_dropped >= 8
