"""Circuit breaker, health-scored reads, and idempotent writes.

Complements ``test_failover_client.py`` (the PR-4 semantics, which
must keep holding): these tests cover the hardening added on top —
breaker state transitions under an injected clock, EWMA-scored read
ordering, deadline-triggered failover, and the ADD_IDEM dedup window
both server-side and across a replicated pair.
"""

import asyncio

import pytest

from repro.errors import DeadlineExceededError, FailoverExhaustedError
from repro.replication.failover import EndpointState, FailoverClient
from repro.retry import BackoffPolicy, RetryBudget
from repro.service.client import ServiceClient


def run(coro):
    return asyncio.run(coro)


async def start_black_hole():
    """Accepts and reads but never answers: a hung-but-up endpoint."""

    async def handler(reader, writer):
        try:
            while await reader.read(65536):
                pass
        except (ConnectionError, OSError):
            pass

    server = await asyncio.start_server(handler, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class TestEndpointState:
    def test_success_resets_failures_and_breaker(self):
        state = EndpointState(failures_row=5, open_until=99.0)
        state.record_success(0.01)
        assert state.failures_row == 0
        assert state.open_until == 0.0
        assert state.ewma_s == pytest.approx(0.01)

    def test_ewma_smooths_samples(self):
        state = EndpointState()
        state.record_success(0.1)
        state.record_success(0.2)
        assert 0.1 < state.ewma_s < 0.2

    def test_is_open_follows_the_clock(self):
        state = EndpointState(open_until=10.0)
        assert state.is_open(9.9)
        assert not state.is_open(10.0)


class TestCircuitBreaker:
    def make_client(self, now):
        # Endpoint port 1 never answers; all failures are real.
        return FailoverClient(
            [("127.0.0.1", 1)], breaker_failures=2, breaker_reset_s=5.0,
            op_timeout=0.2, connect_timeout=0.2, clock=lambda: now[0])

    def test_breaker_opens_after_consecutive_failures(self):
        async def main():
            now = [0.0]
            client = self.make_client(now)
            try:
                for _ in range(2):
                    with pytest.raises(FailoverExhaustedError):
                        await client.ping()
                return client.breaker_opens, client._states[0]
            finally:
                await client.close()

        opens, state = run(main())
        assert opens == 1
        assert state.is_open(0.0)
        assert state.open_until == pytest.approx(5.0)

    def test_open_breaker_endpoint_is_still_tried_when_alone(self):
        async def main():
            now = [0.0]
            client = self.make_client(now)
            try:
                for _ in range(3):
                    with pytest.raises(FailoverExhaustedError):
                        await client.ping()
                # Breaker open, but the walk still reached it (the
                # error list is never empty / never short-circuited).
                return client._states[0].failures_row
            finally:
                await client.close()

        assert run(main()) == 3

    def test_half_open_probe_failure_reopens(self):
        async def main():
            now = [0.0]
            client = self.make_client(now)
            try:
                for _ in range(2):
                    with pytest.raises(FailoverExhaustedError):
                        await client.ping()
                opened_at = client._states[0].open_until
                now[0] = 6.0  # past the reset window: half-open
                with pytest.raises(FailoverExhaustedError):
                    await client.ping()
                return opened_at, client._states[0].open_until
            finally:
                await client.close()

        first, second = run(main())
        assert first == pytest.approx(5.0)
        assert second == pytest.approx(11.0)  # re-opened from t=6


class TestScoredReadOrder:
    def make_client(self):
        return FailoverClient(
            [("127.0.0.1", 1), ("127.0.0.1", 2), ("127.0.0.1", 3)],
            clock=lambda: 0.0)

    def test_unknown_ewma_scores_neutral_not_first(self):
        client = self.make_client()
        client._states[0].ewma_s = 0.010
        # Endpoints 1 and 2 have no samples: they must not jump ahead
        # of the measured-and-preferred endpoint 0.
        assert client._read_order()[0] == 0

    def test_faster_standby_wins_beyond_hysteresis(self):
        client = self.make_client()
        client._states[0].ewma_s = 0.100
        client._states[1].ewma_s = 0.050  # >20% faster than preferred
        assert client._read_order()[0] == 1

    def test_hysteresis_keeps_near_equal_preferred_sticky(self):
        client = self.make_client()
        client._states[0].ewma_s = 0.100
        client._states[1].ewma_s = 0.090  # faster, but within 20%
        assert client._read_order()[0] == 0

    def test_open_breaker_sorts_last(self):
        client = self.make_client()
        client._states[0].ewma_s = 0.010
        client._states[0].open_until = 99.0  # open at clock=0
        client._states[1].ewma_s = 0.500
        client._states[2].ewma_s = 0.600
        order = client._read_order()
        assert order == [1, 2, 0]


class TestDeadlineFailover:
    def test_hung_endpoint_fails_over_within_budget(self, pair_run):
        async def scenario(ctx):
            hole, hole_port = await start_black_hole()
            client = FailoverClient(
                [("127.0.0.1", hole_port),
                 ("127.0.0.1", ctx.standby_port)],
                op_timeout=0.3, connect_timeout=0.3)
            try:
                banner = await client.ping()
                assert banner
                assert client.deadline_timeouts == 1
                assert client.failovers == 1
                assert client.preferred == 1
            finally:
                await client.close()
                hole.close()
                await hole.wait_closed()

        pair_run(scenario)


class TestMultiPassRetries:
    def test_passes_exhaust_budget_not_time(self):
        async def main():
            budget = RetryBudget(capacity=2, refill_per_s=0.0)
            client = FailoverClient(
                [("127.0.0.1", 1)], max_passes=10,
                backoff=BackoffPolicy(base=0.0, jitter="none"),
                budget=budget, op_timeout=0.2, connect_timeout=0.2)
            try:
                with pytest.raises(Exception) as info:
                    await client.ping()
                return type(info.value).__name__, client.retries
            finally:
                await client.close()

        name, retries = run(main())
        assert name == "RetryBudgetExceededError"
        assert retries == 2

    def test_second_pass_recovers_after_transient_outage(self, pair_run):
        async def scenario(ctx):
            # Pass 1 hits only a dead port; the walk is exhausted, the
            # backoff sleeps, and pass 2 is pointed at a live server by
            # then — the op succeeds without surfacing an error.
            client = FailoverClient(
                [("127.0.0.1", 1)], max_passes=2,
                backoff=BackoffPolicy(base=0.0, jitter="none"),
                op_timeout=0.3, connect_timeout=0.3)
            client._endpoints[0] = ("127.0.0.1", ctx.standby_port)

            # First, prove a genuine single-pass failure:
            failing = FailoverClient(
                [("127.0.0.1", 1)], op_timeout=0.2, connect_timeout=0.2)
            with pytest.raises(FailoverExhaustedError):
                await failing.ping()
            await failing.close()

            banner = await client.ping()
            assert banner
            await client.close()

        pair_run(scenario)


class TestIdempotentWrites:
    def test_server_dedups_same_key(self, pair_run):
        async def scenario(ctx):
            client = await ctx.connect_primary()
            try:
                first = await client.add_idem(9, 1, [b"x", b"y"])
                again = await client.add_idem(9, 1, [b"x", b"y"])
                assert first == again == 2
                stats = await client.stats()
                assert stats["n_items"] == 2  # applied once
                assert ctx.primary_service.counters.dedup_hits == 1
            finally:
                await client.close()

        pair_run(scenario)

    def test_failover_client_reuses_key_across_endpoints(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient(
                [("127.0.0.1", ctx.primary_port),
                 ("127.0.0.1", ctx.standby_port)],
                client_id=42, op_timeout=1.0)
            try:
                await client.add([b"a", b"b"])
                assert client.client_id == 42
                window = ctx.primary_service.idempotency
                assert len(window) == 1
                assert window.get(42, 1) is not None
            finally:
                await client.close()

        pair_run(scenario)

    def test_dedup_window_ships_to_the_standby(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient(
                [("127.0.0.1", ctx.primary_port),
                 ("127.0.0.1", ctx.standby_port)],
                client_id=7, op_timeout=1.0)
            try:
                await client.add([b"a", b"b", b"c"])
                await ctx.repl.ship()
                # The standby holds the key: a retry of the same write
                # after a promote must dedup there too.
                assert ctx.standby_service.idempotency.get(7, 1) \
                    is not None
                await ctx.kill_primary()
                await client.promote()
                n_before = ctx.standby_service.target.n_items
                again = await ServiceClient.connect(
                    port=ctx.standby_port, op_timeout=1.0)
                try:
                    result = await again.add_idem(7, 1, [b"a", b"b", b"c"])
                finally:
                    await again.close()
                assert result == 3  # the originally recorded count
                assert ctx.standby_service.target.n_items == n_before
            finally:
                await client.close()

        pair_run(scenario)
