"""Replication with a non-default hash family.

The replication contract is *bit-identical* verdicts, which only holds
if the standby hashes exactly like the primary.  Snapshots carry the
hash-family kind + seed (and the router's), so a SUBSCRIBE must leave
the standby on the primary's family even when it was started with a
different default — these tests pin that end to end over the wire.
"""

from __future__ import annotations

from repro.core.membership import ShiftingBloomFilter
from repro.hashing import VectorizedFamily, family_spec
from repro.store.router import ShardRouter
from repro.store.sharded import ShardedFilterStore
from repro.workloads.replication import build_replication_workload

N_SHARDS = 4
M_PER_SHARD = 16384
FAMILY_SEED = 5


def make_vector_store() -> ShardedFilterStore:
    family = VectorizedFamily(seed=FAMILY_SEED)
    return ShardedFilterStore(
        lambda shard: ShiftingBloomFilter(
            m=M_PER_SHARD, k=8, family=family),
        n_shards=N_SHARDS,
        router=ShardRouter(N_SHARDS, family_kind="vector64"))


def test_subscribe_adopts_primary_family(pair_run):
    """The standby was started on the BLAKE2b default; the shipped
    snapshot must flip it onto the primary's vector64 wiring."""

    async def scenario(ctx):
        target = ctx.standby_service.target
        assert isinstance(target, ShardedFilterStore)
        assert target.router.family_kind == "vector64"
        for shard in target.shards:
            assert family_spec(shard.family) == (
                "vector64", FAMILY_SEED)

    pair_run(scenario, primary_target=make_vector_store())


def test_vectorized_pair_is_bit_identical_over_the_wire(pair_run):
    workload = build_replication_workload(800, seed=7)

    async def scenario(ctx):
        primary = await ctx.connect_primary()
        standby = await ctx.connect_standby()
        try:
            await primary.add(list(workload.acknowledged))
            await ctx.repl.ship()
            mix = workload.read_mix()
            p = await primary.query(mix)
            s = await standby.query(mix)
            assert (p == s).all()
            # quiesced snapshots are byte-identical, family fields
            # included
            assert await primary.snapshot() == await standby.snapshot()
        finally:
            await primary.close()
            await standby.close()

    pair_run(scenario, primary_target=make_vector_store(),
             standby_target=make_vector_store())


def test_delta_stream_after_family_snapshot(pair_run):
    """Deltas built from vector64 ``empty_like`` clones merge into the
    standby and keep verdicts and n_items exact across several ships."""
    workload = build_replication_workload(900, seed=11)
    writes = list(workload.acknowledged)

    async def scenario(ctx):
        primary = await ctx.connect_primary()
        standby = await ctx.connect_standby()
        try:
            for lo in range(0, len(writes), 300):
                await primary.add(writes[lo : lo + 300])
                await ctx.repl.ship()
            stats = await standby.stats()
            assert stats["n_items"] == len(writes)
            mix = workload.read_mix()
            p = await primary.query(mix)
            s = await standby.query(mix)
            assert (p == s).all()
        finally:
            await primary.close()
            await standby.close()

    pair_run(scenario, primary_target=make_vector_store())
