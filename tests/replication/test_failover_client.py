"""FailoverClient behaviour: dead primaries, shedding, promotion.

The pair here is real (two services over loopback TCP); primary death
is a closed listener plus aborted connections — the same failure a
killed process presents to clients.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import FailoverExhaustedError, ProtocolError
from repro.replication.failover import FailoverClient, parse_endpoint
from repro.service.server import CoalescerConfig
from repro.workloads.replication import build_replication_workload


def _workload(n=400, seed=5):
    return build_replication_workload(n, seed=seed)


class TestParseEndpoint:
    def test_string_and_tuple(self):
        assert parse_endpoint("10.0.0.1:4000") == ("10.0.0.1", 4000)
        assert parse_endpoint(("h", 1)) == ("h", 1)

    def test_malformed_rejected(self):
        for bad in ("no-port-here", "10.0.0.1:", "host:not-a-number",
                    ":4000"):
            with pytest.raises(ProtocolError, match="host:port"):
                parse_endpoint(bad)


class TestReadFailover:
    def test_reads_survive_primary_death(self, pair_run):
        workload = _workload()

        async def scenario(ctx):
            client = FailoverClient([("127.0.0.1", ctx.primary_port),
                                     ("127.0.0.1", ctx.standby_port)])
            try:
                await client.add(list(workload.acknowledged))
                await ctx.repl.ship()
                mix = workload.read_mix()
                before = await client.query(mix)  # warm, via primary
                assert client.preferred == 0
                await ctx.kill_primary()
                after = await client.query(mix)   # transparent retry
                assert client.preferred == 1
                assert client.failovers == 1
                assert (before == after).all()
            finally:
                await client.close()

        pair_run(scenario)

    def test_all_endpoints_dead_is_explicit(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient(
                [("127.0.0.1", ctx.primary_port)], op_timeout=2.0)
            try:
                await ctx.kill_primary()
                with pytest.raises(FailoverExhaustedError,
                                   match="all 1 endpoints"):
                    await client.query([b"x"])
            finally:
                await client.close()

        pair_run(scenario)

    def test_shedding_primary_hands_reads_to_standby(self, pair_run):
        workload = _workload(n=100)

        async def scenario(ctx):
            raw = await ctx.connect_primary()
            client = FailoverClient([("127.0.0.1", ctx.primary_port),
                                     ("127.0.0.1", ctx.standby_port)])
            try:
                await raw.add(list(workload.acknowledged))
                await ctx.repl.ship()
                # Occupy the primary's single admission slot: this query
                # parks in the coalescer (max_batch is huge, the delay
                # window long), so the next request is shed.
                parked = asyncio.ensure_future(raw.query([b"parked"]))
                await asyncio.sleep(0.01)
                verdicts = await client.query(
                    list(workload.acknowledged[:8]))
                assert verdicts.all()
                assert client.preferred == 1  # standby served the read
                await parked
            finally:
                await client.close()
                await raw.close()

        pair_run(scenario, coalescer=CoalescerConfig(
            max_batch=1_000_000, max_delay_us=200_000, max_inflight=1))

    def test_overload_retry_can_be_disabled(self, pair_run):
        from repro.errors import ServiceOverloadedError

        async def scenario(ctx):
            raw = await ctx.connect_primary()
            client = FailoverClient(
                [("127.0.0.1", ctx.primary_port),
                 ("127.0.0.1", ctx.standby_port)],
                retry_overload=False)
            try:
                parked = asyncio.ensure_future(raw.query([b"parked"]))
                await asyncio.sleep(0.01)
                with pytest.raises(ServiceOverloadedError):
                    await client.query([b"x"])
                await parked
            finally:
                await client.close()
                await raw.close()

        pair_run(scenario, coalescer=CoalescerConfig(
            max_batch=1_000_000, max_delay_us=200_000, max_inflight=1))


class TestRemoteRejections:
    def test_live_server_rejection_does_not_fail_over(self, pair_run):
        """A deterministic rejection from a healthy primary (here: a
        RESTORE with garbage bytes) must surface to the caller, not
        burn through the endpoint list — and certainly not promote."""

        async def scenario(ctx):
            client = FailoverClient(
                [("127.0.0.1", ctx.primary_port),
                 ("127.0.0.1", ctx.standby_port)],
                auto_promote=True)
            try:
                with pytest.raises(ProtocolError, match="bad magic"):
                    await client.restore(b"not-a-snapshot")
                assert client.preferred == 0
                assert client.failovers == 0
                standby = await ctx.connect_standby()
                try:
                    assert (await standby.stats())[
                        "replication"]["role"] == "standby"
                finally:
                    await standby.close()
            finally:
                await client.close()

        pair_run(scenario)


class TestWritePath:
    def test_writes_never_land_on_a_standby(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient([("127.0.0.1", ctx.primary_port),
                                     ("127.0.0.1", ctx.standby_port)])
            try:
                await ctx.kill_primary()
                with pytest.raises(FailoverExhaustedError,
                                   match="promote a standby"):
                    await client.add([b"write-during-outage"])
                # The refused write left no trace on the follower.
                assert not (await client.query(
                    [b"write-during-outage"])).any()
            finally:
                await client.close()

        pair_run(scenario)

    def test_write_walks_to_the_primary_role(self, pair_run):
        """Endpoint order wrong (standby listed first): the write must
        skip the follower and land on the primary."""

        async def scenario(ctx):
            client = FailoverClient([("127.0.0.1", ctx.standby_port),
                                     ("127.0.0.1", ctx.primary_port)])
            try:
                await client.add([b"routed-to-primary"])
                primary = await ctx.connect_primary()
                try:
                    assert (await primary.query(
                        [b"routed-to-primary"])).all()
                finally:
                    await primary.close()
            finally:
                await client.close()

        pair_run(scenario)

    def test_auto_promote_completes_the_failover(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient(
                [("127.0.0.1", ctx.primary_port),
                 ("127.0.0.1", ctx.standby_port)],
                auto_promote=True)
            try:
                await ctx.kill_primary()
                await client.add([b"write-after-auto-promote"])
                assert (await client.query(
                    [b"write-after-auto-promote"])).all()
                standby = await ctx.connect_standby()
                try:
                    stats = await standby.stats()
                    assert stats["replication"]["role"] == "primary"
                finally:
                    await standby.close()
            finally:
                await client.close()

        pair_run(scenario)


class TestPromotionAndHealth:
    def test_explicit_promote_prefers_survivor(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient([("127.0.0.1", ctx.primary_port),
                                     ("127.0.0.1", ctx.standby_port)])
            try:
                await ctx.kill_primary()
                banner = await client.promote()
                assert "promoted" in banner
                assert client.preferred == 1
                await client.add([b"post-promote"])
            finally:
                await client.close()

        pair_run(scenario)

    def test_health_reports_roles_and_death(self, pair_run):
        async def scenario(ctx):
            client = FailoverClient([("127.0.0.1", ctx.primary_port),
                                     ("127.0.0.1", ctx.standby_port)])
            try:
                health = await client.health()
                assert [h["role"] for h in health] == [
                    "primary", "standby"]
                assert all(h["alive"] for h in health)
                await ctx.kill_primary()
                health = await client.health()
                assert health[0]["alive"] is False
                assert "error" in health[0]
                assert health[1]["role"] == "standby"
            finally:
                await client.close()

        pair_run(scenario)
