"""The ``python -m repro.replication`` entry points.

``drill`` is the acceptance test in CLI form, so it runs for real
(in-process pair, killed primary, promoted standby).  ``probe`` and
``verify`` are exercised against a live pair on a background thread —
the same blocking-caller shape the CI job uses across processes —
including the tampered-record failure path.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.replication.__main__ import _drill, build_parser, main
from repro.replication.replicator import (
    ReplicatedFilterService,
    ReplicationConfig,
)
from repro.service.server import FilterService


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv, command in [
            (["serve", "--role", "standby"], "serve"),
            (["serve-pair", "--kill-primary-after", "5"], "serve-pair"),
            (["probe", "--write"], "probe"),
            (["verify", "--endpoints", "a:1,b:2"], "verify"),
            (["drill", "--n", "100"], "drill"),
        ]:
            assert parser.parse_args(argv).command == command

    def test_defaults(self):
        args = build_parser().parse_args(["drill"])
        assert args.failover_at == -1   # 3/4 of --n
        assert args.interval_ms == 200
        assert args.shards == 4

    def test_role_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--role", "observer"])


class TestDrill:
    def test_drill_passes_end_to_end(self, capsys):
        args = build_parser().parse_args(
            ["drill", "--n", "400", "--seed", "3", "--m", "16384"])
        assert asyncio.run(_drill(args)) == 0
        out = capsys.readouterr().out
        assert "bit-identical: True" in out
        assert "DRILL OK" in out

    def test_drill_via_main(self):
        assert main(["drill", "--n", "200", "--m", "16384"]) == 0


def _start_pair_in_background():
    """A live attached pair on a daemon-thread event loop.

    Returns ``(primary_port, standby_port, kill_primary, stop)`` for
    blocking callers — the shape probe/verify meet in the field.
    """
    started = threading.Event()
    box = {}

    async def pair():
        from repro.core.membership import ShiftingBloomFilter
        from repro.store.sharded import ShardedFilterStore

        def store():
            return ShardedFilterStore(
                lambda s: ShiftingBloomFilter(m=16384, k=8), n_shards=4)

        standby_service = FilterService(store())
        standby_server = await standby_service.start(port=0)
        primary_service = FilterService(store())
        repl = ReplicatedFilterService(
            primary_service, ReplicationConfig(interval_ms=50))
        primary_server = await repl.start(port=0)
        await repl.attach_standby(
            "127.0.0.1", standby_server.sockets[0].getsockname()[1])
        box["loop"] = asyncio.get_running_loop()
        box["primary_port"] = primary_server.sockets[0].getsockname()[1]
        box["standby_port"] = standby_server.sockets[0].getsockname()[1]
        box["stopped"] = asyncio.Event()

        async def kill_primary():
            await repl.close()
            primary_server.close()
            await primary_server.wait_closed()
            primary_service.abort_connections()

        box["kill_primary"] = kill_primary
        started.set()
        await box["stopped"].wait()
        standby_server.close()
        await standby_server.wait_closed()

    thread = threading.Thread(
        target=lambda: asyncio.run(pair()), daemon=True)
    thread.start()
    assert started.wait(10)

    def kill_primary():
        asyncio.run_coroutine_threadsafe(
            box["kill_primary"](), box["loop"]).result(10)

    def stop():
        box["loop"].call_soon_threadsafe(box["stopped"].set)
        thread.join(10)

    return box["primary_port"], box["standby_port"], kill_primary, stop


class TestProbeVerify:
    def test_probe_then_kill_then_verify(self, tmp_path):
        primary_port, standby_port, kill_primary, stop = (
            _start_pair_in_background())
        record = tmp_path / "verdicts.json"
        try:
            endpoints = "127.0.0.1:%d,127.0.0.1:%d" % (
                primary_port, standby_port)
            workload_args = ["--n", "600", "--seed", "11"]
            assert main(["probe", "--port", str(primary_port),
                         "--write", "--sync",
                         "127.0.0.1:%d" % standby_port,
                         "--out", str(record)] + workload_args) == 0
            kill_primary()
            assert main(["verify", "--endpoints", endpoints,
                         "--expected", str(record), "--promote"]
                        + workload_args) == 0
        finally:
            stop()

    def test_verify_catches_tampered_record(self, tmp_path):
        primary_port, standby_port, kill_primary, stop = (
            _start_pair_in_background())
        record = tmp_path / "verdicts.json"
        try:
            endpoints = "127.0.0.1:%d,127.0.0.1:%d" % (
                primary_port, standby_port)
            workload_args = ["--n", "300", "--seed", "23"]
            assert main(["probe", "--port", str(primary_port),
                         "--write", "--sync",
                         "127.0.0.1:%d" % standby_port,
                         "--out", str(record)] + workload_args) == 0
            data = json.loads(record.read_text())
            data["verdicts"][0] ^= 1  # flip one recorded verdict
            record.write_text(json.dumps(data))
            assert main(["verify", "--endpoints", endpoints,
                         "--expected", str(record)]
                        + workload_args) == 1
        finally:
            stop()


def _free_port() -> int:
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestServeCommands:
    def test_serve_standby_then_primary_attaches(self):
        from repro.replication.__main__ import _serve
        from repro.service.client import ServiceClient

        async def scenario():
            sport, pport = _free_port(), _free_port()
            standby_task = asyncio.ensure_future(_serve(
                build_parser().parse_args(
                    ["serve", "--role", "standby", "--port", str(sport),
                     "--m", "16384"])))
            primary_task = asyncio.ensure_future(_serve(
                build_parser().parse_args(
                    ["serve", "--role", "primary", "--port", str(pport),
                     "--standby", "127.0.0.1:%d" % sport,
                     "--preload", "30", "--m", "16384",
                     "--attach-delay", "0.05"])))
            try:
                for _ in range(200):
                    try:
                        standby = await ServiceClient.connect(port=sport)
                    except OSError:
                        await asyncio.sleep(0.05)
                        continue
                    stats = await standby.stats()
                    await standby.close()
                    if (stats["n_items"] == 30
                            and stats["replication"]["role"] == "standby"):
                        return True
                    await asyncio.sleep(0.05)
                return False
            finally:
                for task in (primary_task, standby_task):
                    task.cancel()
                await asyncio.gather(primary_task, standby_task,
                                     return_exceptions=True)

        assert asyncio.run(scenario())

    def test_serve_pair_with_scripted_kill(self):
        from repro.replication.__main__ import _serve_pair
        from repro.service.client import ServiceClient

        async def scenario():
            pport, sport = _free_port(), _free_port()
            task = asyncio.ensure_future(_serve_pair(
                build_parser().parse_args(
                    ["serve-pair", "--primary-port", str(pport),
                     "--standby-port", str(sport), "--preload", "50",
                     "--kill-primary-after", "0.3", "--m", "16384"])))
            try:
                client = None
                for _ in range(200):
                    try:
                        client = await ServiceClient.connect(port=pport)
                        break
                    except OSError:
                        await asyncio.sleep(0.05)
                assert client is not None
                assert (await client.stats())["n_items"] == 50
                await client.close()
                # The scripted kill must take the primary's listener
                # down while the standby keeps serving, fully synced.
                for _ in range(200):
                    try:
                        probe = await ServiceClient.connect(port=pport)
                        await probe.close()
                        await asyncio.sleep(0.05)
                    except OSError:
                        break
                else:
                    raise AssertionError("primary never died")
                standby = await ServiceClient.connect(port=sport)
                stats = await standby.stats()
                await standby.close()
                assert stats["n_items"] == 50
                assert stats["replication"]["role"] == "standby"
                return True
            finally:
                task.cancel()
                await asyncio.gather(task, return_exceptions=True)

        assert asyncio.run(scenario())
