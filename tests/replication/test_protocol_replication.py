"""Codec tests for the replication wire additions.

SUBSCRIBE/DELTA payloads follow the same strictness rules as the rest
of the protocol: declared lengths must match the bytes present, and a
malformed payload raises :class:`~repro.errors.ProtocolError` before
touching any filter state.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.service import protocol


class TestSubscribeCodec:
    def test_roundtrip(self):
        payload = protocol.encode_subscribe(42, b"SNAPSHOT-BYTES")
        epoch, blob = protocol.decode_subscribe(payload)
        assert epoch == 42
        assert blob == b"SNAPSHOT-BYTES"

    def test_empty_blob_roundtrips(self):
        epoch, blob = protocol.decode_subscribe(
            protocol.encode_subscribe(0, b""))
        assert (epoch, blob) == (0, b"")

    def test_large_epoch(self):
        epoch, _ = protocol.decode_subscribe(
            protocol.encode_subscribe(2**63, b"x"))
        assert epoch == 2**63

    def test_truncated_epoch_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.decode_subscribe(b"\x00\x01\x02")


class TestDeltaCodec:
    def test_full_roundtrip(self):
        payload = protocol.encode_delta(7, full_blob=b"WHOLE-STORE")
        epoch, full, entries = protocol.decode_delta(payload)
        assert epoch == 7
        assert full == b"WHOLE-STORE"
        assert entries is None

    def test_shards_roundtrip(self):
        wanted = [(0, protocol.MODE_MERGE, b"delta-0"),
                  (3, protocol.MODE_REPLACE, b"rebuilt-3"),
                  (1, protocol.MODE_MERGE, b"")]
        payload = protocol.encode_delta(9, entries=wanted)
        epoch, full, entries = protocol.decode_delta(payload)
        assert epoch == 9
        assert full is None
        assert entries == wanted

    def test_empty_entries_is_a_heartbeat(self):
        epoch, full, entries = protocol.decode_delta(
            protocol.encode_delta(1, entries=[]))
        assert (epoch, full, entries) == (1, None, [])

    def test_exactly_one_kind_required(self):
        with pytest.raises(ProtocolError, match="not both"):
            protocol.encode_delta(1, entries=[], full_blob=b"x")
        with pytest.raises(ProtocolError, match="not both"):
            protocol.encode_delta(1)

    def test_bad_mode_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="mode"):
            protocol.encode_delta(1, entries=[(0, 9, b"x")])

    def test_bad_mode_rejected_on_decode(self):
        good = protocol.encode_delta(
            1, entries=[(0, protocol.MODE_MERGE, b"x")])
        # mode byte sits right after epoch(8) + kind(1) + count(4) +
        # shard id(4).
        bad = good[:17] + bytes([7]) + good[18:]
        with pytest.raises(ProtocolError, match="unknown mode"):
            protocol.decode_delta(bad)

    def test_unknown_kind_rejected(self):
        payload = protocol.encode_delta(1, full_blob=b"x")
        bad = payload[:8] + bytes([9]) + payload[9:]
        with pytest.raises(ProtocolError, match="unknown delta kind"):
            protocol.decode_delta(bad)

    def test_truncated_entry_rejected(self):
        payload = protocol.encode_delta(
            1, entries=[(0, protocol.MODE_MERGE, b"0123456789")])
        with pytest.raises(ProtocolError, match="blob bytes"):
            protocol.decode_delta(payload[:-3])

    def test_trailing_garbage_rejected(self):
        payload = protocol.encode_delta(
            1, entries=[(0, protocol.MODE_MERGE, b"x")])
        with pytest.raises(ProtocolError, match="trailing"):
            protocol.decode_delta(payload + b"zz")

    def test_truncated_header_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            protocol.decode_delta(b"\x00" * 5)


class TestOpcodes:
    def test_replication_ops_are_known(self):
        for op in (protocol.OP_SUBSCRIBE, protocol.OP_DELTA,
                   protocol.OP_PROMOTE):
            assert protocol.require_known_op(op) == op

    def test_replication_ops_are_distinct(self):
        ops = {protocol.OP_PING, protocol.OP_ADD, protocol.OP_QUERY,
               protocol.OP_QUERY_MULTI, protocol.OP_SNAPSHOT,
               protocol.OP_RESTORE, protocol.OP_STATS,
               protocol.OP_SUBSCRIBE, protocol.OP_DELTA,
               protocol.OP_PROMOTE}
        assert len(ops) == 10
