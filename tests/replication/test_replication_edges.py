"""Snapshot/delta edge cases on the replication path.

The awkward corners: a standby attaching while a write burst is in
flight, a merge-mode delta hitting a standby whose shard geometry is
stale (it missed a ``rotate_shard``), counting variants that cannot
snapshot at all, and non-sharded targets that can only ship whole.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import persistence
from repro.core.membership import (
    CountingShiftingBloomFilter,
    ShiftingBloomFilter,
)
from repro.errors import ReplicationError, UnsupportedSnapshotError
from repro.service import protocol
from repro.store.sharded import ShardedFilterStore
from repro.workloads.replication import build_replication_workload
from repro.workloads.sharded import partition_by_shard


def _counting_store(n_shards=2, m=4096):
    return ShardedFilterStore(
        lambda shard: CountingShiftingBloomFilter(m=m, k=8),
        n_shards=n_shards)


class TestCountingVariants:
    def test_attach_propagates_unsupported_snapshot(self, pair_run):
        """A counting store cannot seed a standby: the attach fails
        with the dedicated error and leaves no half-attached link."""

        async def scenario(ctx):
            with pytest.raises(UnsupportedSnapshotError):
                await ctx.repl.attach_standby(
                    "127.0.0.1", ctx.standby_port)
            assert ctx.repl.standbys == ()

        pair_run(scenario, primary_target=_counting_store(),
                 attach=False)

    def test_delta_build_propagates_unsupported_snapshot(self, pair_run):
        """A counting shard swapped in *after* attach poisons the next
        delta build the moment that shard takes writes: shipping would
        need its snapshot, which must raise, not silently skip."""

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            try:
                store = ctx.primary_service.target
                store.replace_shard(
                    0, CountingShiftingBloomFilter(m=4096, k=8))
                # Enough writes that some land on shard 0.
                workload = build_replication_workload(64, seed=9)
                await primary.add(list(workload.members))
                with pytest.raises(UnsupportedSnapshotError):
                    await ctx.repl.ship()
            finally:
                await primary.close()

        pair_run(scenario)

    def test_ship_loop_records_error_instead_of_dying(self, pair_run):
        """The background loop survives an unsnapshotable target and
        surfaces the failure through STATS."""
        from repro.replication.replicator import ReplicationConfig

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            try:
                store = ctx.primary_service.target
                store.replace_shard(
                    0, CountingShiftingBloomFilter(m=4096, k=8))
                workload = build_replication_workload(64, seed=9)
                await primary.add(list(workload.members))
                for _ in range(100):
                    if ctx.repl.last_ship_error:
                        break
                    await asyncio.sleep(0.01)
                assert "UnsupportedSnapshotError" in (
                    ctx.repl.last_ship_error or "")
                stats = await primary.stats()
                assert stats["replication"]["last_ship_error"]
            finally:
                await primary.close()

        pair_run(scenario,
                 repl_config=ReplicationConfig(interval_ms=10))


class TestAttachMidWriteBurst:
    def test_attach_during_burst_loses_nothing(self, pair_run):
        """Writers hammer the primary while the standby attaches; after
        a quiesce the pair must be byte-identical — nothing may fall
        between the attach snapshot and the journal."""
        workload = build_replication_workload(800, seed=13)

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                batches = [list(workload.members[i : i + 20])
                           for i in range(0, len(workload.members), 20)]

                async def burst():
                    for batch in batches:
                        await primary.add(batch)

                writer = asyncio.ensure_future(burst())
                # Attach while the burst is mid-flight.
                await asyncio.sleep(0.005)
                await ctx.repl.attach_standby(
                    "127.0.0.1", ctx.standby_port)
                await writer
                await ctx.repl.ship()
                assert (await primary.snapshot()
                        == await standby.snapshot())
                mix = workload.members + workload.absent
                assert ((await primary.query(list(mix)))
                        == (await standby.query(list(mix)))).all()
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, attach=False)


class TestMissedRotation:
    def test_merge_delta_with_stale_geometry_forces_resync(self, pair_run):
        """A merge-mode delta that no longer matches the standby's
        shard geometry (the standby missed a rotate_shard) must be
        refused — a merge blob holds only the newest writes, so
        swapping it in would drop every earlier key.  The refusal is
        what drives the primary's full-snapshot resync."""
        workload = build_replication_workload(400, seed=17)

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(list(workload.acknowledged))
                await ctx.repl.ship()
                # A delta clone in the primary's *post-rotation*
                # geometry, as if the replace marker from the rotation
                # epoch had been lost.
                store = ctx.primary_service.target
                slices = partition_by_shard(
                    workload.acknowledged, store.router)
                stale = ShiftingBloomFilter(
                    m=2 * store.shards[0].m, k=8)
                stale.add_batch([b"late-write"])
                epoch = (await standby.stats())["replication"]["epoch"]
                with pytest.raises(ReplicationError,
                                   match="full resync required"):
                    await standby.delta(epoch + 1, entries=[
                        (0, protocol.MODE_MERGE,
                         persistence.dumps(stale))])
                # The shard was left untouched: every acknowledged key
                # still answers, and the epoch did not advance.
                stats = await standby.stats()
                assert stats["replication"]["epoch"] == epoch
                assert stats["replication"]["shards_replaced"] == 0
                assert (await standby.query(slices[0])).all()
                # The real pipeline's reaction: the failed send marks
                # the link, and the next ship resyncs in full.
                ctx.repl.standbys[0].needs_full = True
                await primary.add([b"post-refusal-write"])
                await ctx.repl.ship()
                assert (await primary.snapshot()
                        == await standby.snapshot())
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)


class TestSingleFilterTargets:
    def test_single_filter_replicates_via_full_ships(self, pair_run):
        workload = build_replication_workload(300, seed=21)

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(list(workload.acknowledged))
                await ctx.repl.ship()
                link = ctx.repl.standbys[0]
                assert link.deltas_sent == 0
                assert link.full_snapshots_sent == 2  # attach + ship
                assert (await primary.snapshot()
                        == await standby.snapshot())
                mix = workload.read_mix()
                assert ((await primary.query(mix))
                        == (await standby.query(mix))).all()
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario,
                 primary_target=ShiftingBloomFilter(m=32768, k=8),
                 standby_target=ShiftingBloomFilter(m=32768, k=8))

    def test_shard_delta_against_single_filter_refused(self, pair_run):
        async def scenario(ctx):
            standby = await ctx.connect_standby()
            try:
                epoch = (await standby.stats())["replication"]["epoch"]
                donor = ShiftingBloomFilter(m=32768, k=8)
                with pytest.raises(ReplicationError,
                                   match="non-sharded"):
                    await standby.delta(epoch + 1, entries=[
                        (0, protocol.MODE_MERGE,
                         persistence.dumps(donor))])
            finally:
                await standby.close()

        pair_run(scenario,
                 primary_target=ShiftingBloomFilter(m=32768, k=8),
                 standby_target=ShiftingBloomFilter(m=32768, k=8))
