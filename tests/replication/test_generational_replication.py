"""Replicating a generational TTL store: merge deltas between
rotations, replace-all-slots after one, byte-identical standbys."""

from __future__ import annotations

import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.store import GenerationalStore
from tests.conftest import make_elements

MEMBERS = make_elements(600, "repl-gen-member")
ABSENT = make_elements(600, "repl-gen-absent")


def make_gen_store(generations=3, m=8192):
    return GenerationalStore(
        lambda seq: ShiftingBloomFilter(m=m, k=4),
        generations=generations)


def gen_pair():
    """Identical primary/standby targets for the pair fixture."""
    return make_gen_store(), make_gen_store()


class TestSteadyState:
    def test_writes_ship_as_one_head_merge_delta(self, pair_run):
        primary_target, standby_target = gen_pair()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(MEMBERS[:200])
                summary = await ctx.repl.ship()
                assert summary == {
                    "epoch": 1, "shipped": 1, "standbys": 1}
                mix = MEMBERS[:200] + ABSENT[:200]
                p = await primary.query(mix)
                s = await standby.query(mix)
                assert (p == s).all()
                stats = await standby.stats()
                assert stats["structure"] == "GenerationalStore"
                assert stats["n_items"] == 200
                # between rotations only the head slot receives a delta
                assert stats["replication"]["shards_merged"] == 1
                assert stats["replication"]["shards_replaced"] == 0
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, primary_target=primary_target,
                 standby_target=standby_target)

    def test_quiesced_snapshots_are_byte_identical(self, pair_run):
        primary_target, standby_target = gen_pair()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                for start in range(0, 300, 100):
                    await primary.add(MEMBERS[start : start + 100])
                    await ctx.repl.ship()
                assert (await primary.snapshot()
                        == await standby.snapshot())
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, primary_target=primary_target,
                 standby_target=standby_target)


class TestRotation:
    def test_rotation_ships_replace_blobs_for_every_slot(self, pair_run):
        primary_target, standby_target = gen_pair()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(MEMBERS[:150])
                await ctx.repl.ship()
                # rotation shifts every slot's identity: the next ship
                # must send authoritative blobs for all of them
                ctx.primary_service.target.rotate()
                await primary.add(MEMBERS[150:300])
                await ctx.repl.ship()
                stats = await standby.stats()
                assert stats["replication"]["shards_replaced"] == 3
                rows = stats["generations"]
                assert [row["n_items"] for row in rows] == [150, 150, 0]
                assert (await primary.snapshot()
                        == await standby.snapshot())
                mix = MEMBERS[:300] + ABSENT[:300]
                p = await primary.query(mix)
                s = await standby.query(mix)
                assert (p == s).all()
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, primary_target=primary_target,
                 standby_target=standby_target)

    def test_expiry_reaches_the_standby(self, pair_run):
        """An element rotated off the primary's ring stops answering
        MAYBE on the standby too — expiry replicates."""
        primary_target, standby_target = gen_pair()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(MEMBERS[:50])
                await ctx.repl.ship()
                assert (await standby.query(MEMBERS[:50])).all()
                for _ in range(3):  # walk the batch off the 3-slot ring
                    ctx.primary_service.target.rotate()
                await ctx.repl.ship()
                assert not (await primary.query(MEMBERS[:50])).any()
                assert not (await standby.query(MEMBERS[:50])).any()
                assert (await standby.stats())["n_items"] == 0
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, primary_target=primary_target,
                 standby_target=standby_target)

    def test_standby_promote_serves_the_window(self, pair_run):
        primary_target, standby_target = gen_pair()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(MEMBERS[:100])
                ctx.primary_service.target.rotate()
                await primary.add(MEMBERS[100:200])
                await ctx.repl.ship()
                await ctx.kill_primary()
                assert "promoted to primary" in await standby.promote()
                verdicts = await standby.query(MEMBERS[:200])
                assert verdicts.all()
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, primary_target=primary_target,
                 standby_target=standby_target)


class TestAttach:
    def test_attach_ships_full_generational_snapshot(self, pair_run):
        primary_target = make_gen_store()
        primary_target.add_batch(MEMBERS[:120])
        primary_target.rotate()
        primary_target.add_batch(MEMBERS[120:240])
        standby_target = make_gen_store()

        async def scenario(ctx):
            standby = await ctx.connect_standby()
            try:
                stats = await standby.stats()
                assert stats["n_items"] == 240
                rows = stats["generations"]
                assert [row["n_items"] for row in rows] == [120, 120, 0]
                assert (await standby.query(MEMBERS[:240])).all()
            finally:
                await standby.close()

        pair_run(scenario, primary_target=primary_target,
                 standby_target=standby_target)
