"""Primary→standby synchronisation: the bit-identical contract.

These tests drive writes over the wire into the primary, ship deltas
explicitly, and assert the standby's verdicts — and after a quiesce
its whole SNAPSHOT blob — are identical to the primary's.  They also
pin the epoch discipline (no-op ships are free, retries are
idempotent, gaps force a resync), the staleness trigger, role gating
and promotion.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.errors import ReplicationError, StandbyReadOnlyError
from repro.replication.replicator import ReplicationConfig
from repro.workloads.replication import build_replication_workload
from repro.workloads.sharded import partition_by_shard

#: Must match the pair_run fixture's default geometry.
M_PER_SHARD = 16384


def _workload(n=600, seed=3):
    return build_replication_workload(n, seed=seed)


class TestAttachAndShip:
    def test_attach_ships_full_snapshot_and_role(self, pair_run):
        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                stats = await standby.stats()
                assert stats["replication"]["role"] == "standby"
                assert stats["replication"]["full_snapshots_applied"] == 1
                assert (await primary.stats())[
                    "replication"]["role"] == "primary"
                link = ctx.repl.standbys[0]
                assert link.full_snapshots_sent == 1
                assert link.bytes_sent > 0
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_delta_ship_is_bit_identical(self, pair_run):
        workload = _workload()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(list(workload.acknowledged))
                summary = await ctx.repl.ship()
                assert summary == {
                    "epoch": 1, "shipped": 1, "standbys": 1}
                mix = workload.read_mix()
                p = await primary.query(mix)
                s = await standby.query(mix)
                assert (p == s).all()
                # Exact-n_items deltas: the standby is a clone, not an
                # approximation.
                assert (await standby.stats())["n_items"] == len(
                    workload.acknowledged)
                # Both sides publish the same epoch — the staleness
                # probe the CLI's --sync flag polls.
                assert (await primary.stats())[
                    "replication"]["epoch"] == 1
                assert (await standby.stats())[
                    "replication"]["epoch"] == 1
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_quiesced_snapshots_are_byte_identical(self, pair_run):
        workload = _workload()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                # Several write rounds, shipped separately.
                chunk = len(workload.acknowledged) // 3
                for start in range(0, 3 * chunk, chunk):
                    await primary.add(
                        list(workload.acknowledged[start:start + chunk]))
                    await ctx.repl.ship()
                assert (await primary.snapshot()
                        == await standby.snapshot())
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_standby_access_stats_survive_merges(self, pair_run):
        """Applying a merge delta swaps the shard object, but the
        serving shard's access counters must stay monotonic — STATS
        going backwards would break the paper's accounting."""

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add([b"first-%d" % i for i in range(50)])
                await ctx.repl.ship()
                await standby.query([b"first-%d" % i for i in range(50)])
                billed = (await standby.stats())["access"]["read_words"]
                assert billed > 0
                await primary.add([b"second-%d" % i for i in range(50)])
                await ctx.repl.ship()  # merge deltas swap shard objects
                assert (await standby.stats())[
                    "access"]["read_words"] == billed
                await standby.query([b"first-0"])
                assert (await standby.stats())[
                    "access"]["read_words"] > billed
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_noop_ship_consumes_no_epoch(self, pair_run):
        async def scenario(ctx):
            assert (await ctx.repl.ship())["shipped"] == 0
            assert ctx.repl.epoch == 0
            primary = await ctx.connect_primary()
            try:
                await primary.add([b"one-key"])
                assert (await ctx.repl.ship())["shipped"] == 1
                assert ctx.repl.epoch == 1
                assert (await ctx.repl.ship())["shipped"] == 0
                assert ctx.repl.epoch == 1
            finally:
                await primary.close()

        pair_run(scenario)

    def test_staleness_trigger_ships_without_timer(self, pair_run):
        async def scenario(ctx):
            primary = await ctx.connect_primary()
            try:
                for i in range(3):
                    await primary.add([b"burst-%d" % i])
                for _ in range(100):
                    if ctx.repl.standbys[0].epoch_acked >= 1:
                        break
                    await asyncio.sleep(0.01)
                assert ctx.repl.standbys[0].epoch_acked >= 1
            finally:
                await primary.close()

        # Timer is effectively off (1 hour): only the staleness wake-up
        # can have shipped.
        pair_run(scenario, repl_config=ReplicationConfig(
            interval_ms=3_600_000, max_staleness_batches=2))

    def test_periodic_full_snapshot_resync(self, pair_run):
        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                for i in range(3):
                    await primary.add([b"k-%d" % i])
                    await ctx.repl.ship()
                link = ctx.repl.standbys[0]
                # full_snapshot_every=1: attach + every ship is full.
                assert link.full_snapshots_sent == 4
                assert link.deltas_sent == 0
                stats = await standby.stats()
                assert stats["replication"][
                    "full_snapshots_applied"] == 4
                assert stats["n_items"] == 3
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario, repl_config=ReplicationConfig(
            interval_ms=3_600_000, full_snapshot_every=1))


class TestRotationAndRestore:
    def test_rotated_shard_ships_as_replacement(self, pair_run):
        workload = _workload()

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add(list(workload.acknowledged))
                await ctx.repl.ship()
                # Grow shard 0 on the primary: new geometry, new object.
                store = ctx.primary_service.target
                slices = partition_by_shard(
                    workload.acknowledged, store.router)
                store.rotate_shard(
                    0, slices[0],
                    factory=lambda s: ShiftingBloomFilter(
                        m=2 * M_PER_SHARD, k=8))
                await ctx.repl.ship()
                mix = workload.read_mix()
                assert ((await primary.query(mix))
                        == (await standby.query(mix))).all()
                stats = await standby.stats()
                assert stats["replication"]["shards_replaced"] >= 1
                assert (await primary.snapshot()
                        == await standby.snapshot())
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_restored_target_forces_full_ship(self, pair_run,
                                              store_factory):
        workload = _workload(n=200)

        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                donor = store_factory()
                donor.add_batch(list(workload.acknowledged))
                await primary.restore(donor.snapshot())
                await ctx.repl.ship()
                link = ctx.repl.standbys[0]
                assert link.full_snapshots_sent == 2  # attach + resync
                assert (await primary.snapshot()
                        == await standby.snapshot())
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)


class TestEpochDiscipline:
    def test_gap_is_refused_and_resynced(self, pair_run):
        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                with pytest.raises(ReplicationError, match="epoch gap"):
                    await standby.delta(5, entries=[])
                # The primary's own pipeline self-heals the same way:
                # mark the link stale and ship — it must fall back to a
                # full snapshot.
                ctx.repl.standbys[0].needs_full = True
                await primary.add([b"after-the-gap"])
                await ctx.repl.ship()
                assert ctx.repl.standbys[0].full_snapshots_sent == 2
                assert (await standby.query([b"after-the-gap"])).all()
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_stale_epoch_retry_is_idempotent(self, pair_run):
        async def scenario(ctx):
            primary = await ctx.connect_primary()
            standby = await ctx.connect_standby()
            try:
                await primary.add([b"only-once"])
                await ctx.repl.ship()
                before = await standby.stats()
                # A duplicate of the already-applied epoch: acknowledged,
                # not re-applied (re-merging would inflate n_items).
                await standby.delta(1, entries=[])
                after = await standby.stats()
                assert after["n_items"] == before["n_items"] == 1
                assert (after["replication"]["deltas_applied"]
                        == before["replication"]["deltas_applied"])
            finally:
                await primary.close()
                await standby.close()

        pair_run(scenario)

    def test_delta_requires_subscription(self, pair_run):
        async def scenario(ctx):
            primary = await ctx.connect_primary()
            try:
                with pytest.raises(ReplicationError, match="SUBSCRIBE"):
                    await primary.delta(1, entries=[])
            finally:
                await primary.close()

        pair_run(scenario, attach=False)


class TestRolesAndPromotion:
    def test_standby_refuses_writes(self, pair_run, store_factory):
        async def scenario(ctx):
            standby = await ctx.connect_standby()
            try:
                with pytest.raises(StandbyReadOnlyError):
                    await standby.add([b"illegal-write"])
                with pytest.raises(StandbyReadOnlyError):
                    await standby.restore(store_factory().snapshot())
                # Reads stay open on a follower.
                assert len(await standby.query([b"x"])) == 1
            finally:
                await standby.close()

        pair_run(scenario)

    def test_promote_reopens_writes(self, pair_run):
        async def scenario(ctx):
            standby = await ctx.connect_standby()
            try:
                banner = await standby.promote()
                assert "promoted" in banner
                assert (await standby.stats())[
                    "replication"]["role"] == "primary"
                await standby.add([b"post-promotion-write"])
                assert (await standby.query(
                    [b"post-promotion-write"])).all()
            finally:
                await standby.close()

        pair_run(scenario)
