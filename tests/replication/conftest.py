"""Shared plumbing for the replication tests.

Same single-``asyncio.run`` style as ``tests/service``: the
:func:`pair_run` fixture stands up a full primary→standby pair — a
standby :class:`~repro.service.FilterService`, a primary wrapped in a
:class:`~repro.replication.ReplicatedFilterService`, both on ephemeral
loopback ports, with the standby attached (full snapshot shipped) —
hands a context object to the test's async scenario, and tears
everything down inside the same event loop.

The default :class:`~repro.replication.ReplicationConfig` uses a very
long interval so the background loop never ships on its own: tests
drive ``ctx.repl.ship()`` explicitly and assert exact epochs.  Tests
of the cadence/staleness machinery pass their own config.
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import pytest

from repro.core.membership import ShiftingBloomFilter
from repro.replication.replicator import (
    ReplicatedFilterService,
    ReplicationConfig,
)
from repro.service.client import ServiceClient
from repro.service.server import CoalescerConfig, FilterService
from repro.store.sharded import ShardedFilterStore

N_SHARDS = 4
M_PER_SHARD = 16384
K = 8

#: Effectively "never ship on the timer" — tests ship explicitly.
MANUAL = ReplicationConfig(interval_ms=3_600_000)


def make_store(n_shards: int = N_SHARDS,
               m: int = M_PER_SHARD) -> ShardedFilterStore:
    return ShardedFilterStore(
        lambda shard: ShiftingBloomFilter(m=m, k=K), n_shards=n_shards)


@pytest.fixture
def store_factory():
    """The pair's store builder, for tests that need donors/clones.

    ``store_factory(n_shards=..., m=...)`` mirrors the geometry the
    :func:`pair_run` services host by default (test dirs are not
    packages, so helpers travel as fixtures rather than imports).
    """
    return make_store


@pytest.fixture
def pair_run():
    """Run ``scenario(ctx)`` against a live attached primary→standby
    pair; returns the scenario's result."""

    def runner(scenario, *, repl_config: ReplicationConfig = None,
               primary_target=None, standby_target=None,
               coalescer: CoalescerConfig = None, attach: bool = True):
        async def main():
            standby_service = FilterService(
                standby_target if standby_target is not None
                else make_store(), coalescer)
            standby_server = await standby_service.start(port=0)
            standby_port = standby_server.sockets[0].getsockname()[1]

            primary_service = FilterService(
                primary_target if primary_target is not None
                else make_store(), coalescer)
            repl = ReplicatedFilterService(
                primary_service,
                repl_config if repl_config is not None else MANUAL)
            primary_server = await repl.start(port=0)
            primary_port = primary_server.sockets[0].getsockname()[1]
            if attach:
                await repl.attach_standby("127.0.0.1", standby_port)

            ctx = SimpleNamespace(
                repl=repl,
                primary_service=primary_service,
                standby_service=standby_service,
                primary_server=primary_server,
                standby_server=standby_server,
                primary_port=primary_port,
                standby_port=standby_port,
            )

            async def connect_primary():
                return await ServiceClient.connect(port=primary_port)

            async def connect_standby():
                return await ServiceClient.connect(port=standby_port)

            async def kill_primary():
                """Listener closed + connections aborted: process death
                as seen from any client."""
                await repl.close()
                primary_server.close()
                await primary_server.wait_closed()
                primary_service.abort_connections()

            ctx.connect_primary = connect_primary
            ctx.connect_standby = connect_standby
            ctx.kill_primary = kill_primary

            try:
                return await scenario(ctx)
            finally:
                await repl.close()
                for server in (primary_server, standby_server):
                    server.close()
                    try:
                        await server.wait_closed()
                    except (ConnectionError, OSError):  # pragma: no cover
                        pass

        return asyncio.run(main())

    return runner
