"""The ``python -m repro.cluster`` entry points.

``bootstrap`` and ``drill`` run for real (the drill boots its own
in-process cluster); ``status``/``reshard`` error paths run against
dead endpoints so the operator-facing failure modes stay typed and
non-zero.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.__main__ import build_parser, main
from repro.cluster.shardmap import ShardMap


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for argv, command in [
            (["bootstrap", "--node", "a:1"], "bootstrap"),
            (["serve", "--map", "m.json", "--self", "a:1"], "serve"),
            (["status", "--map", "m.json"], "status"),
            (["reshard", "--map", "m.json", "--shard", "0",
              "--target", "b:2"], "reshard"),
            (["drill"], "drill"),
        ]:
            assert parser.parse_args(argv).command == command

    def test_defaults(self):
        args = build_parser().parse_args(["drill"])
        assert args.nodes == 3
        assert args.shards == 8
        assert args.family == "vector64"
        assert args.stall_budget == 5.0

    def test_serve_structure_is_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--map", "m", "--self", "a:1",
                 "--structure", "btree"])


class TestBootstrap:
    def test_writes_a_loadable_map(self, tmp_path, capsys):
        path = tmp_path / "map.json"
        code = main(["bootstrap", "--shards", "6",
                     "--node", "127.0.0.1:4100",
                     "--node", "127.0.0.1:4101",
                     "--output", str(path)])
        assert code == 0
        shard_map = ShardMap.from_json(path.read_text())
        assert shard_map.epoch == 1
        assert shard_map.n_shards == 6
        assert set(shard_map.nodes()) \
            == {"127.0.0.1:4100", "127.0.0.1:4101"}

    def test_prints_to_stdout_without_output(self, capsys):
        assert main(["bootstrap", "--node", "127.0.0.1:4100"]) == 0
        shard_map = ShardMap.from_json(capsys.readouterr().out)
        assert shard_map.epoch == 1

    def test_duplicate_nodes_refused(self, capsys):
        code = main(["bootstrap", "--node", "a:1", "--node", "a:1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestDrillCommand:
    def test_drill_passes_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "drill.json"
        code = main(["drill", "--nodes", "2", "--shards", "4",
                     "--m", "8192", "--members", "300", "--ops", "12",
                     "--migrate-after", "4", "--per-request", "32",
                     "--output", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"]
        assert report["mode"] == "in-process"
        assert "drill OK" in capsys.readouterr().out

    def test_external_requires_map(self):
        with pytest.raises(SystemExit):
            main(["drill", "--external"])


class TestOperatorErrorPaths:
    def test_status_with_dead_nodes_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "map.json"
        main(["bootstrap", "--shards", "2", "--node", "127.0.0.1:9",
              "--output", str(path)])
        capsys.readouterr()  # drop the bootstrap confirmation line
        code = main(["status", "--map", str(path),
                     "--connect-timeout", "0.2"])
        assert code == 1
        # Unreachable nodes surface as error entries, not a crash.
        payload = json.loads(capsys.readouterr().out)
        assert "error" in payload["nodes"]["127.0.0.1:9"]

    def test_reshard_against_dead_cluster_errors(self, tmp_path, capsys):
        path = tmp_path / "map.json"
        main(["bootstrap", "--shards", "2", "--node", "127.0.0.1:9",
              "--node", "127.0.0.1:10", "--output", str(path)])
        code = main(["reshard", "--map", str(path), "--shard", "0",
                     "--target", "127.0.0.1:10",
                     "--connect-timeout", "0.2"])
        assert code == 1
