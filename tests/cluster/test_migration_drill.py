"""The seeded end-to-end migration drill as the acceptance test.

Continuous reads+writes through a :class:`ClusterClient` while a hot
shard migrates between live in-process nodes; every verdict replayed
against a fault-free single-store reference.  The drill's invariants
are the PR's acceptance bar, so the test asserts each one separately —
a failure names the broken guarantee, not just ``ok == False``.
"""

from __future__ import annotations

import pytest

from repro.cluster.drill import ClusterDrillConfig, run_cluster_drill
from repro.errors import ConfigurationError

SMALL = dict(n_nodes=3, n_shards=8, m=16384, k=4, n_members=900,
             n_ops=36, per_request=48, migrate_after_ops=8)


class TestDrillInvariants:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_drill_holds_every_invariant(self, seed):
        report = run_cluster_drill(ClusterDrillConfig(seed=seed, **SMALL))
        invariants = report["invariants"]
        assert invariants["zero_wrong_verdicts"], report["ops"]
        assert invariants["zero_lost_or_duplicate_writes"], \
            report["writes_accounting"]
        assert invariants["bounded_stall"], report["ops"]
        assert invariants["epoch_advanced"], report["epochs"]
        assert report["ok"]

    def test_drill_really_migrated(self):
        report = run_cluster_drill(ClusterDrillConfig(seed=1, **SMALL))
        migration = report["migration"]
        assert migration["to_epoch"] == migration["from_epoch"] + 1
        assert migration["source"] != migration["target"]
        assert migration["snapshot_bytes"] > 0
        # Every node ends at the successor epoch.
        assert set(report["epochs"].values()) == {migration["to_epoch"]}

    def test_drill_exercises_load_during_migration(self):
        report = run_cluster_drill(ClusterDrillConfig(seed=2, **SMALL))
        assert report["ops"]["reads"] > 0
        assert report["ops"]["writes"] > 0
        assert report["ops"]["max_stall_op_latency_s"] \
            <= report["config"]["stall_budget_s"]
        # The full sweep re-checked the whole universe.
        assert report["ops"]["wrong_verdicts_sweep"] == 0

    def test_accounting_is_exact_not_approximate(self):
        report = run_cluster_drill(ClusterDrillConfig(seed=3, **SMALL))
        accounting = report["writes_accounting"]
        assert accounting["cluster_n_items"] \
            == accounting["reference_n_items"] \
            == report["config"]["n_members"]


class TestDrillConfig:
    def test_single_node_refused(self):
        with pytest.raises(ConfigurationError):
            ClusterDrillConfig(n_nodes=1)

    def test_bad_write_fraction_refused(self):
        with pytest.raises(ConfigurationError):
            ClusterDrillConfig(write_fraction=1.5)

    def test_bad_stall_budget_refused(self):
        with pytest.raises(ConfigurationError):
            ClusterDrillConfig(stall_budget_s=0)
