"""Property suite for the versioned shard map.

Hypothesis drives randomized split/merge/drain sequences (every
reshape is a :meth:`ShardMap.move`) and checks the structural
invariants the cluster's correctness rests on: ownership is always a
total partition of the shard ids, epochs only move forward, and
serialisation round-trips exactly.  The installation rules — stale
epochs refused, identical same-epoch maps acked, conflicting
same-epoch maps refused as split-brain — are exercised against a real
:class:`ClusterState`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import ClusterState
from repro.cluster.shardmap import ShardMap, bootstrap_map
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    StaleShardMapError,
)

ENDPOINT_POOL = tuple("10.0.0.%d:4000" % i for i in range(1, 9))


def endpoints_strategy(min_size=1, max_size=4):
    return st.lists(st.sampled_from(ENDPOINT_POOL), min_size=min_size,
                    max_size=max_size, unique=True)


@st.composite
def map_with_moves(draw):
    """A bootstrap map plus a random reshape sequence applied to it."""
    n_shards = draw(st.integers(min_value=1, max_value=24))
    nodes = draw(endpoints_strategy())
    base = bootstrap_map(n_shards, nodes)
    n_moves = draw(st.integers(min_value=0, max_value=6))
    current = base
    for _ in range(n_moves):
        shard_ids = draw(st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            min_size=1, max_size=n_shards))
        target = draw(st.sampled_from(ENDPOINT_POOL))
        current = current.move(shard_ids, target)
    return base, current, n_moves


class TestPartitionInvariant:
    @given(map_with_moves())
    @settings(max_examples=60, deadline=None)
    def test_ownership_is_a_total_partition(self, data):
        _, shard_map, _ = data
        claimed = [shard
                   for endpoint in shard_map.nodes()
                   for shard in shard_map.shards_of(endpoint)]
        # Union covers every id exactly once: total and disjoint.
        assert sorted(claimed) == list(range(shard_map.n_shards))
        for shard_id in range(shard_map.n_shards):
            assert shard_map.owner(shard_id) \
                == shard_map.assignments[shard_id]

    @given(map_with_moves())
    @settings(max_examples=60, deadline=None)
    def test_epochs_only_move_forward(self, data):
        base, shard_map, n_moves = data
        assert base.epoch == 1
        assert shard_map.epoch == 1 + n_moves
        assert base.same_cluster(shard_map)

    @given(map_with_moves())
    @settings(max_examples=60, deadline=None)
    def test_serialisation_round_trips(self, data):
        _, shard_map, _ = data
        assert ShardMap.from_json(shard_map.to_json()) == shard_map
        assert ShardMap.from_bytes(shard_map.to_bytes()) == shard_map

    @given(map_with_moves())
    @settings(max_examples=40, deadline=None)
    def test_move_is_pure(self, data):
        _, shard_map, _ = data
        before = tuple(shard_map.assignments)
        successor = shard_map.move([0], ENDPOINT_POOL[0])
        assert shard_map.assignments == before
        assert successor.owner(0) == ENDPOINT_POOL[0]
        assert successor.epoch == shard_map.epoch + 1


class TestInstallationRules:
    def setup_method(self):
        self.base = bootstrap_map(8, list(ENDPOINT_POOL[:3]))
        self.state = ClusterState(self.base, ENDPOINT_POOL[0])

    def test_get_returns_installed_map(self):
        assert ShardMap.from_bytes(
            self.state.handle_shard_map(b"")) == self.base

    def test_newer_epoch_installs(self):
        successor = self.base.move([0], ENDPOINT_POOL[1])
        self.state.handle_shard_map(successor.to_bytes())
        assert self.state.map == successor
        assert 0 not in self.state.owned_shards

    def test_stale_epoch_refused(self):
        successor = self.base.move([0], ENDPOINT_POOL[1])
        self.state.handle_shard_map(successor.to_bytes())
        with pytest.raises(StaleShardMapError):
            self.state.handle_shard_map(self.base.to_bytes())

    def test_identical_same_epoch_acked(self):
        answer = self.state.handle_shard_map(self.base.to_bytes())
        assert ShardMap.from_bytes(answer) == self.base
        assert self.state.counters["maps_installed"] == 0

    def test_conflicting_same_epoch_refused_as_split_brain(self):
        conflicting = ShardMap(
            epoch=self.base.epoch,
            assignments=tuple(reversed(self.base.assignments)),
            router_seed=self.base.router_seed,
            router_family=self.base.router_family)
        with pytest.raises(StaleShardMapError):
            self.state.handle_shard_map(conflicting.to_bytes())

    def test_foreign_cluster_refused(self):
        foreign = bootstrap_map(8, list(ENDPOINT_POOL[:3]),
                                router_seed=self.base.router_seed + 1)
        with pytest.raises(ConfigurationError):
            self.state.handle_shard_map(foreign.to_bytes())

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_randomized_install_sequences_end_at_max_epoch(self, moves):
        state = ClusterState(self.base, ENDPOINT_POOL[0])
        current = self.base
        history = [current]
        for i in range(moves):
            current = current.move(
                [i % current.n_shards],
                ENDPOINT_POOL[i % len(ENDPOINT_POOL)])
            history.append(current)
        state.handle_shard_map(current.to_bytes())
        for old in history[:-1]:
            with pytest.raises(StaleShardMapError):
                state.handle_shard_map(old.to_bytes())
        assert state.map.epoch == current.epoch


class TestValidation:
    def test_epoch_below_one_refused(self):
        with pytest.raises(ConfigurationError):
            ShardMap(epoch=0, assignments=(ENDPOINT_POOL[0],))

    def test_empty_assignments_refused(self):
        with pytest.raises(ConfigurationError):
            ShardMap(epoch=1, assignments=())

    def test_malformed_endpoint_refused(self):
        with pytest.raises(ProtocolError):
            ShardMap(epoch=1, assignments=("no-port",))

    def test_bootstrap_round_robin(self):
        shard_map = bootstrap_map(5, list(ENDPOINT_POOL[:2]))
        assert shard_map.assignments == (
            ENDPOINT_POOL[0], ENDPOINT_POOL[1], ENDPOINT_POOL[0],
            ENDPOINT_POOL[1], ENDPOINT_POOL[0])

    def test_bootstrap_duplicate_endpoints_refused(self):
        with pytest.raises(ConfigurationError):
            bootstrap_map(4, [ENDPOINT_POOL[0], ENDPOINT_POOL[0]])

    def test_move_out_of_range_refused(self):
        shard_map = bootstrap_map(4, [ENDPOINT_POOL[0]])
        with pytest.raises(ConfigurationError):
            shard_map.move([4], ENDPOINT_POOL[1])

    @pytest.mark.parametrize("text", [
        "not json", "[]", '{"type": "other"}',
        '{"type": "shard_map", "epoch": 1}',
        '{"type": "shard_map", "epoch": 1, "router_seed": 0, '
        '"router_family": "vector64", "assignments": [1, 2]}',
    ])
    def test_bad_json_refused(self, text):
        with pytest.raises(ConfigurationError):
            ShardMap.from_json(text)

    def test_router_pin(self):
        shard_map = bootstrap_map(6, [ENDPOINT_POOL[0]],
                                  router_seed=7, router_family="blake2b")
        router = shard_map.make_router()
        assert router.n_shards == 6
        assert router.seed == 7
        assert router.family_kind == "blake2b"
        assert not shard_map.same_cluster(
            bootstrap_map(6, [ENDPOINT_POOL[0]], router_seed=8,
                          router_family="blake2b"))
