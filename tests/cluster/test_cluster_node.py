"""Unit tests for the node-side cluster state: ownership + MIGRATE ops.

These drive :class:`ClusterState`'s handlers directly (no sockets):
the ownership contract, the journal lifecycle of a shard move, and the
exactness of blob + catch-up install on the receiving side.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import ClusterState
from repro.cluster.shardmap import bootstrap_map
from repro.core import ShiftingBloomFilter
from repro.errors import ConfigurationError, WrongOwnerError
from repro.hashing.family import make_family
from repro.service import protocol
from repro.service.server import FilterService
from repro.store.sharded import ShardedFilterStore
from tests.conftest import make_elements

N_SHARDS = 6
NODE_A = "10.0.0.1:4000"
NODE_B = "10.0.0.2:4000"


def build_node(endpoint, shard_map):
    family = make_family(shard_map.router_family, seed=0)
    store = ShardedFilterStore(
        lambda s: ShiftingBloomFilter(m=4096, k=4, family=family),
        n_shards=shard_map.n_shards, router=shard_map.make_router())
    service = FilterService(store)
    state = ClusterState(shard_map, endpoint).attach(service)
    return service, state


def elements_for_shard(router, shard_id, count, prefix="mig"):
    out = []
    i = 0
    while len(out) < count:
        candidate = ("%s-%06d" % (prefix, i)).encode()
        if router.route(candidate) == shard_id:
            out.append(candidate)
        i += 1
    return out


@pytest.fixture
def pair():
    shard_map = bootstrap_map(N_SHARDS, [NODE_A, NODE_B])
    service_a, state_a = build_node(NODE_A, shard_map)
    service_b, state_b = build_node(NODE_B, shard_map)
    return shard_map, (service_a, state_a), (service_b, state_b)


class TestAttach:
    def test_requires_sharded_store(self):
        shard_map = bootstrap_map(N_SHARDS, [NODE_A])
        service = FilterService(ShiftingBloomFilter(m=1024, k=4))
        with pytest.raises(ConfigurationError):
            ClusterState(shard_map, NODE_A).attach(service)

    def test_requires_map_compatible_router(self):
        shard_map = bootstrap_map(N_SHARDS, [NODE_A])
        store = ShardedFilterStore(
            lambda s: ShiftingBloomFilter(m=1024, k=4),
            n_shards=N_SHARDS)  # default seed != the map's pinned spec?
        other_map = bootstrap_map(N_SHARDS, [NODE_A], router_seed=99)
        service = FilterService(store)
        with pytest.raises(ConfigurationError):
            ClusterState(other_map, NODE_A).attach(service)

    def test_attach_sets_cluster_and_chains_hook(self, pair):
        _, (service_a, state_a), _ = pair
        assert service_a.cluster is state_a
        assert service_a.on_write is not None


class TestOwnership:
    def test_owned_elements_pass(self, pair):
        shard_map, (service_a, state_a), _ = pair
        router = service_a.target.router
        owned = state_a.owned_shards[0]
        batch = elements_for_shard(router, owned, 5)
        state_a.check_elements(batch)  # no raise

    def test_unowned_elements_refused_with_epoch(self, pair):
        shard_map, (service_a, state_a), _ = pair
        router = service_a.target.router
        foreign = next(s for s in range(N_SHARDS)
                       if s not in state_a.owned_shards)
        batch = elements_for_shard(router, foreign, 3)
        with pytest.raises(WrongOwnerError) as excinfo:
            state_a.check_elements(batch)
        assert "epoch %d" % shard_map.epoch in str(excinfo.value)
        assert state_a.counters["wrong_owner_rejections"] == 1

    def test_empty_batch_passes(self, pair):
        _, (_, state_a), _ = pair
        state_a.check_elements([])


class TestMigrateSourceSide:
    def test_begin_requires_ownership(self, pair):
        _, (service_a, state_a), _ = pair
        foreign = next(s for s in range(N_SHARDS)
                       if s not in state_a.owned_shards)
        with pytest.raises(WrongOwnerError):
            state_a.handle_migrate(
                protocol.encode_migrate(protocol.MIGRATE_BEGIN, foreign))

    def test_double_begin_refused(self, pair):
        _, (service_a, state_a), _ = pair
        shard = state_a.owned_shards[0]
        state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_BEGIN, shard))
        with pytest.raises(ConfigurationError):
            state_a.handle_migrate(
                protocol.encode_migrate(protocol.MIGRATE_BEGIN, shard))

    def test_delta_requires_begin(self, pair):
        _, (_, state_a), _ = pair
        with pytest.raises(ConfigurationError):
            state_a.handle_migrate(protocol.encode_migrate(
                protocol.MIGRATE_DELTA, state_a.owned_shards[0]))

    def test_journal_captures_only_migrating_shard(self, pair):
        _, (service_a, state_a), _ = pair
        router = service_a.target.router
        shard = state_a.owned_shards[0]
        other = state_a.owned_shards[1]
        state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_BEGIN, shard))
        moving = elements_for_shard(router, shard, 4)
        staying = elements_for_shard(router, other, 4, prefix="stay")
        service_a.on_write(moving + staying, None)
        delta = state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_DELTA, shard))
        batches = protocol.decode_element_batches(delta)
        assert [elements for elements, _ in batches] == [moving]
        # A second drain is empty: the journal was handed over.
        again = protocol.decode_element_batches(state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_DELTA, shard)))
        assert again == []

    def test_end_retires_copy_and_returns_residual(self, pair):
        _, (service_a, state_a), _ = pair
        store = service_a.target
        router = store.router
        shard = state_a.owned_shards[0]
        seed_batch = elements_for_shard(router, shard, 8)
        store.shards[shard].add_batch(seed_batch)
        state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_BEGIN, shard))
        late = elements_for_shard(router, shard, 3, prefix="late")
        service_a.on_write(late, None)
        residual = protocol.decode_element_batches(
            state_a.handle_migrate(protocol.encode_migrate(
                protocol.MIGRATE_END, shard)))
        assert [elements for elements, _ in residual] == [late]
        assert store.shards[shard].n_items == 0  # retired via empty_like
        with pytest.raises(ConfigurationError):  # journal gone
            state_a.handle_migrate(protocol.encode_migrate(
                protocol.MIGRATE_DELTA, shard))


class TestMigrateTargetSide:
    def test_blob_plus_catchup_is_bit_identical(self, pair):
        _, (service_a, state_a), (service_b, state_b) = pair
        src, dst = service_a.target, service_b.target
        router = src.router
        shard = state_a.owned_shards[0]
        seed_batch = elements_for_shard(router, shard, 10)
        src.shards[shard].add_batch(seed_batch)

        blob = state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_BEGIN, shard))
        late = elements_for_shard(router, shard, 5, prefix="late")
        service_a.on_write(late, None)
        src.shards[shard].add_batch(late)  # what the service would do

        state_b.handle_migrate(protocol.encode_migrate(
            protocol.MIGRATE_INSTALL_REPLACE, shard, blob))
        delta = state_a.handle_migrate(
            protocol.encode_migrate(protocol.MIGRATE_DELTA, shard))
        state_b.handle_migrate(protocol.encode_migrate(
            protocol.MIGRATE_INSTALL_MERGE, shard, delta))

        assert dst.shards[shard].n_items == src.shards[shard].n_items
        probe = seed_batch + late + elements_for_shard(
            router, shard, 50, prefix="absent")
        np.testing.assert_array_equal(
            dst.shards[shard].query_batch(probe),
            src.shards[shard].query_batch(probe))

    def test_install_merge_refuses_misrouted_elements(self, pair):
        _, (service_a, state_a), (service_b, state_b) = pair
        router = service_b.target.router
        shard = state_a.owned_shards[0]
        wrong = elements_for_shard(
            router, (shard + 1) % N_SHARDS, 2, prefix="wrong")
        payload = protocol.encode_element_batches([(wrong, None)])
        with pytest.raises(ConfigurationError):
            state_b.handle_migrate(protocol.encode_migrate(
                protocol.MIGRATE_INSTALL_MERGE, shard, payload))

    def test_keys_ship_and_install(self, pair):
        _, (service_a, state_a), (service_b, state_b) = pair
        service_a.idempotency.put(7, 1, 42)
        service_a.idempotency.put(7, 2, 43)
        blob = state_a.handle_migrate(protocol.encode_migrate(
            protocol.MIGRATE_KEYS, state_a.owned_shards[0]))
        state_b.handle_migrate(protocol.encode_migrate(
            protocol.MIGRATE_INSTALL_KEYS, state_a.owned_shards[0], blob))
        assert service_b.idempotency.get(7, 1) == 42
        assert service_b.idempotency.get(7, 2) == 43

    def test_shard_id_out_of_range_refused(self, pair):
        _, (_, state_a), _ = pair
        with pytest.raises(ConfigurationError):
            state_a.handle_migrate(protocol.encode_migrate(
                protocol.MIGRATE_BEGIN, N_SHARDS))


class TestStats:
    def test_stats_dict_shape(self, pair):
        shard_map, (service_a, state_a), _ = pair
        stats = state_a.stats_dict()
        assert stats["self"] == NODE_A
        assert stats["epoch"] == shard_map.epoch
        assert stats["owned_shards"] == list(state_a.owned_shards)
        assert stats["migrating_shards"] == []
        service_stats = service_a.stats()
        assert service_stats["cluster"]["self"] == NODE_A
