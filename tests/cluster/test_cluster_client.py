"""The shard-map-aware cluster client against live in-process nodes.

Covers split/fan-out/reassembly equivalence with a single reference
store (bit-for-bit, false positives included), the association
QUERY_MULTI path across owners, and the staleness contract: a client
holding a predecessor map is refused and recovers by refreshing —
never silently served from the wrong node.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import fetch_live_map, migrate_shard
from repro.cluster.drill import (
    ClusterDrillConfig,
    _make_store,
    _pick_migration,
    start_local_cluster,
)
from repro.cluster.node import ClusterState
from repro.cluster.shardmap import bootstrap_map
from repro.core import ShiftingAssociationFilter
from repro.errors import WrongOwnerError
from repro.hashing.family import make_family
from repro.service.server import FilterService
from repro.store.sharded import ShardedFilterStore
from repro.workloads.service import build_service_workload
from repro.workloads.sharded import partition_by_shard

CONFIG = ClusterDrillConfig(n_nodes=3, n_shards=6, m=8192, k=4,
                            n_members=400)


def run(scenario):
    """One event loop per test: boot a cluster, run, tear down."""

    async def main():
        cluster = await start_local_cluster(CONFIG)
        client = ClusterClient(cluster.shard_map)
        try:
            return await scenario(cluster, client)
        finally:
            await client.close()
            await cluster.close()

    return asyncio.run(main())


class TestEquivalence:
    def test_add_then_query_matches_reference_bit_for_bit(self):
        async def scenario(cluster, client):
            reference = _make_store(CONFIG, cluster.shard_map)
            workload = build_service_workload(CONFIG.n_members, seed=1)
            members = list(workload.members)
            await client.add(members)
            reference.add_batch(members)
            universe = members + list(workload.absent)
            got = await client.query(universe)
            expected = reference.query_batch(universe)
            np.testing.assert_array_equal(got, expected)
            # Fan-out really split the batch across every node.
            assert client.counters["sub_requests"] >= 2 * len(
                cluster.shard_map.nodes())

        run(scenario)

    def test_query_multi_association_across_owners(self):
        async def scenario(cluster, client):
            workload = build_service_workload(200, seed=2)
            s1 = list(workload.members)
            s2 = s1[::2]
            router = cluster.shard_map.make_router()
            family = make_family(CONFIG.family, seed=0)

            def build(store, owned):
                parts1 = partition_by_shard(s1, router)
                parts2 = partition_by_shard(s2, router)
                for shard_id in owned:
                    store.shards[shard_id].build_batch(
                        parts1[shard_id], parts2[shard_id])

            # Swap every node's membership store for an association one.
            for service, state in zip(cluster.services, cluster.states):
                store = ShardedFilterStore(
                    lambda s: ShiftingAssociationFilter(
                        m=CONFIG.m, k=CONFIG.k, family=family),
                    n_shards=cluster.shard_map.n_shards,
                    router=cluster.shard_map.make_router())
                build(store, state.owned_shards)
                service._target = store

            reference = ShardedFilterStore(
                lambda s: ShiftingAssociationFilter(
                    m=CONFIG.m, k=CONFIG.k, family=family),
                n_shards=cluster.shard_map.n_shards,
                router=cluster.shard_map.make_router())
            reference.build_batch(s1, s2)

            universe = s1 + list(workload.absent)
            got = await client.query_multi(universe)
            assert got == list(reference.query_batch(universe))

        run(scenario)

    def test_empty_batches(self):
        async def scenario(cluster, client):
            assert (await client.query([])).shape == (0,)
            assert await client.query_multi([]) == []
            assert await client.add([]) == 0

        run(scenario)


class TestStaleness:
    def test_stale_client_refreshes_after_migration(self):
        async def scenario(cluster, client):
            workload = build_service_workload(CONFIG.n_members, seed=3)
            members = list(workload.members)
            await client.add(members)
            stale_map = client.shard_map

            shard_id, target = _pick_migration(stale_map, members)
            new_map, report = await migrate_shard(
                stale_map, shard_id, target)
            assert new_map.epoch == stale_map.epoch + 1
            assert report["source"] != report["target"]

            # The client still routes with the predecessor map; a batch
            # aimed at the moved shard must be refused by the old owner
            # and transparently recovered via a map refresh.
            router = stale_map.make_router()
            routed = router.route_batch(members)
            moved = [m for m, s in zip(members, routed) if s == shard_id]
            assert moved
            got = await client.query(moved)
            assert bool(got.all())
            assert client.counters["wrong_owner_retries"] >= 1
            assert client.counters["map_refreshes"] >= 1
            assert client.shard_map.epoch == new_map.epoch

        run(scenario)

    def test_refused_never_silently_served(self):
        async def scenario(cluster, client):
            workload = build_service_workload(CONFIG.n_members, seed=4)
            members = list(workload.members)
            await client.add(members)
            stale_map = client.shard_map
            shard_id, target = _pick_migration(stale_map, members)
            await migrate_shard(stale_map, shard_id, target)

            # A client with a zero refresh budget surfaces the typed
            # refusal instead of a wrong answer.
            frozen = ClusterClient(stale_map, max_map_refreshes=0)
            try:
                router = stale_map.make_router()
                routed = router.route_batch(members)
                moved = [m for m, s in zip(members, routed)
                         if s == shard_id]
                with pytest.raises(WrongOwnerError):
                    await frozen.query(moved)
            finally:
                await frozen.close()

        run(scenario)

    def test_fetch_live_map_adopts_newest_epoch(self):
        async def scenario(cluster, client):
            workload = build_service_workload(CONFIG.n_members, seed=5)
            members = list(workload.members)
            await client.add(members)
            stale_map = client.shard_map
            shard_id, target = _pick_migration(stale_map, members)
            new_map, _ = await migrate_shard(stale_map, shard_id, target)
            live = await fetch_live_map(stale_map)
            assert live == new_map

        run(scenario)


class TestWrites:
    def test_writes_are_idempotent_per_sub_batch(self):
        async def scenario(cluster, client):
            workload = build_service_workload(100, seed=6)
            members = list(workload.members)
            applied = await client.add(members)
            assert applied == len(members)
            total = sum(service.target.n_items
                        for service in cluster.services)
            assert total == len(members)

        run(scenario)

    def test_distinct_clients_use_distinct_ids(self):
        a = ClusterClient(bootstrap_map(2, ["127.0.0.1:1"]))
        b = ClusterClient(bootstrap_map(2, ["127.0.0.1:1"]))
        assert a._client_id != b._client_id
