"""The tracing acceptance bar: one request's path from span logs alone.

A seeded cluster drill runs with a span sink attached; afterwards the
records are serialised to JSON lines — exactly what each process's
``--trace-log`` file would hold — re-parsed with nothing but the
offline tooling, and one traced request's full
client → sub-request → server → ownership-check → coalescer path must
reconstruct from those lines alone.  No in-memory object sharing: if
the wire ever dropped the trace id between hops, this is the test
that fails.
"""

from __future__ import annotations

import asyncio
import json

from repro.cluster.drill import ClusterDrillConfig, run_cluster_drill_async
from repro.obs.tracing import (
    load_span_records,
    parse_trace_id,
    reconstruct,
    render_trace,
)

SMALL = ClusterDrillConfig(
    n_nodes=3, n_shards=8, m=16384, k=4, n_members=900,
    n_ops=36, per_request=48, migrate_after_ops=8, seed=7)

#: The hop names a full fan-out must touch, edge to kernel.
FULL_PATH = ("client.request", "client.sub_request", "server.request",
             "node.ownership_check", "coalescer.batch")


def _drill_span_lines():
    spans = []
    report = asyncio.run(run_cluster_drill_async(SMALL, span_sink=spans))
    assert report["ok"], report["invariants"]
    assert report["tracing"]["spans_recorded"] == len(spans)
    # The trace-log serialisation boundary: JSON lines out, strings in.
    return report, [json.dumps(record, sort_keys=True)
                    for record in spans]


class TestTraceReconstruction:
    def test_full_path_reconstructs_from_span_logs_alone(self):
        report, lines = _drill_span_lines()
        records = load_span_records(lines)
        assert len(records) == len(lines)

        by_trace = {}
        for record in records:
            by_trace.setdefault(record["trace"], []).append(record)
        assert len(by_trace) == report["tracing"]["traces"]

        # Every drill op minted one trace; find one whose fan-out
        # touched every hop level and check the reconstructed order.
        full = None
        for trace_hex in by_trace:
            path = reconstruct(records, parse_trace_id(trace_hex))
            names = [r["span"] for r in path]
            if all(name in names for name in FULL_PATH):
                full = (trace_hex, path, names)
                break
        assert full is not None, (
            "no trace touched all of %s" % (FULL_PATH,))
        trace_hex, path, names = full

        # Depth order: the reconstruction must walk edge -> kernel.
        ranks = [FULL_PATH.index(n) for n in names if n in FULL_PATH]
        assert ranks == sorted(ranks)
        # Every hop of this trace agrees on the id, across processes
        # (client component vs per-node components).
        components = {r["component"] for r in path}
        assert "client" in components
        assert any(c.startswith("node:") for c in components)

        # The human rendering names every hop level, with durations.
        text = render_trace(records, parse_trace_id(trace_hex))
        for name in FULL_PATH:
            assert name in text

    def test_every_client_request_traced_and_server_hops_follow(self):
        report, lines = _drill_span_lines()
        records = load_span_records(lines)
        client_roots = [r for r in records if r["span"] == "client.request"]
        # One root span per drill op (preload + ops + post-drain + sweep
        # all go through the traced client).
        assert len(client_roots) == report["tracing"]["traces"]
        # Each root's trace id shows up in at least one server-side hop
        # (the request crossed the wire with its id intact).
        server_traces = {r["trace"] for r in records
                         if r["span"] == "server.request"}
        missing = [r["trace"] for r in client_roots
                   if r["trace"] not in server_traces]
        assert not missing, "traces never seen server-side: %r" % (
            missing[:3],)
