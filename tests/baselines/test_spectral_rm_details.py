"""Focused tests for the recurring-minimum Spectral BF mechanics.

The RM variant's defining behaviours (Cohen & Matias §RM): elements
whose primary minimum does not recur are tracked in the secondary
filter, queries consult the secondary only in that case, and deletions
keep both layers consistent.
"""

import pytest

from repro.baselines import SpectralBloomFilter
from repro.hashing import Blake2Family
from tests.conftest import make_elements


@pytest.fixture
def crowded_rm():
    """A deliberately small RM filter where collisions are common."""
    filt = SpectralBloomFilter(
        m=128, k=4, variant="rm", counter_bits=8,
        family=Blake2Family(seed=13))
    return filt


class TestRecurringMinimumLogic:
    def test_secondary_engages_under_collisions(self, crowded_rm):
        """With heavy collisions some elements must spill to secondary."""
        for i, element in enumerate(make_elements(60, "rm")):
            crowded_rm.add(element, count=(i % 5) + 1)
        assert crowded_rm._secondary is not None
        assert crowded_rm._secondary.nonzero_count() > 0

    def test_rm_no_less_accurate_than_ms_when_crowded(self):
        """RM's raison d'etre: better estimates at the same density."""
        members = make_elements(120, "flow")
        counts = {e: (i % 6) + 1 for i, e in enumerate(members)}
        ms = SpectralBloomFilter(
            m=160, k=4, variant="ms", counter_bits=8,
            family=Blake2Family(seed=17))
        rm = SpectralBloomFilter(
            m=160, k=4, variant="rm", counter_bits=8,
            family=Blake2Family(seed=17))
        for element, count in counts.items():
            ms.add(element, count=count)
            rm.add(element, count=count)
        ms_error = sum(
            abs(ms.estimate(e) - c) for e, c in counts.items())
        rm_error = sum(
            abs(rm.estimate(e) - c) for e, c in counts.items())
        # RM uses extra memory (secondary) to be at least as accurate on
        # average; allow a small band for unlucky hash draws
        assert rm_error <= ms_error * 1.1

    def test_estimates_never_below_truth_without_deletes(self, crowded_rm):
        members = make_elements(40, "rm")
        counts = {e: (i % 4) + 1 for i, e in enumerate(members)}
        for element, count in counts.items():
            crowded_rm.add(element, count=count)
        for element, count in counts.items():
            assert crowded_rm.estimate(element) >= count

    def test_delete_keeps_layers_consistent(self):
        filt = SpectralBloomFilter(
            m=256, k=4, variant="rm", counter_bits=8)
        for element in make_elements(30, "rm"):
            filt.add(element, count=3)
        target = make_elements(30, "rm")[0]
        filt.remove(target)
        assert filt.estimate(target) >= 2  # one removed, two remain

    def test_sparse_rm_is_exact(self):
        """No collisions -> recurring minima everywhere -> exact counts."""
        filt = SpectralBloomFilter(m=4096, k=4, variant="rm")
        counts = {b"a": 2, b"b": 9, b"c": 1}
        for element, count in counts.items():
            filt.add(element, count=count)
        for element, count in counts.items():
            assert filt.estimate(element) == count
