"""Tests for the standard Bloom filter baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BloomFilter
from repro.errors import ConfigurationError, UnsupportedOperationError
from tests.conftest import make_elements


class TestBasics:
    def test_no_false_negatives(self, elements):
        bf = BloomFilter(m=4096, k=6)
        bf.update(elements)
        assert all(e in bf for e in elements)

    def test_empty_filter_rejects_everything(self, negatives):
        bf = BloomFilter(m=4096, k=6)
        assert not any(e in bf for e in negatives)

    def test_str_and_bytes_equivalent(self):
        bf = BloomFilter(m=1024, k=4)
        bf.add("host:443")
        assert b"host:443" in bf

    def test_int_elements(self):
        bf = BloomFilter(m=1024, k=4)
        bf.add(123456)
        assert 123456 in bf
        assert 123457 not in bf

    def test_n_items_tracks_inserts(self, elements):
        bf = BloomFilter(m=4096, k=6)
        bf.update(elements)
        assert bf.n_items == len(elements)

    def test_remove_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            BloomFilter(m=64, k=2).remove(b"x")

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(m=0, k=3)
        with pytest.raises(ConfigurationError):
            BloomFilter(m=64, k=0)

    def test_properties(self):
        bf = BloomFilter(m=1000, k=5)
        assert bf.m == 1000
        assert bf.k == 5
        assert bf.size_bits == 1000
        assert bf.hash_ops_per_query == 5


class TestSizing:
    def test_for_capacity_hits_target_fpr(self):
        members = make_elements(1000, "cap")
        probes = make_elements(20000, "probe")
        bf = BloomFilter.for_capacity(1000, fpr=0.01)
        bf.update(members)
        fp = sum(1 for e in probes if e in bf)
        measured = fp / len(probes)
        assert measured < 0.02  # within 2x of target

    def test_for_capacity_optimal_shape(self):
        bf = BloomFilter.for_capacity(1000, fpr=0.01)
        # textbook: m/n ~ 9.6 bits/element, k ~ 7 at 1% FPR
        assert 9 <= bf.m / 1000 <= 11
        assert bf.k == 7

    def test_for_capacity_validates_fpr(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, fpr=1.5)


class TestAccessAccounting:
    def test_member_query_costs_k_accesses(self):
        bf = BloomFilter(m=4096, k=6)
        bf.add(b"x")
        bf.memory.reset()
        assert bf.query(b"x")
        assert bf.memory.stats.read_ops == 6
        assert bf.memory.stats.read_words == 6

    def test_negative_query_early_exits(self, negatives):
        bf = BloomFilter(m=4096, k=8)
        bf.update(make_elements(100))
        bf.memory.reset()
        for e in negatives[:500]:
            bf.query(e)
        mean_reads = bf.memory.stats.read_words / 500
        # mostly-empty filter: negatives die after ~1 probe
        assert mean_reads < 2.5

    def test_insert_costs_k_writes(self):
        bf = BloomFilter(m=4096, k=6)
        bf.add(b"x")
        assert bf.memory.stats.write_ops == 6


class TestStatistics:
    def test_fill_ratio_grows(self):
        bf = BloomFilter(m=2048, k=4)
        assert bf.fill_ratio() == 0.0
        bf.update(make_elements(100))
        assert 0.0 < bf.fill_ratio() < 0.5

    def test_fpr_estimate_tracks_measurement(self):
        bf = BloomFilter(m=4096, k=4)
        bf.update(make_elements(700))
        probes = make_elements(20000, "probe")
        measured = sum(1 for e in probes if e in bf) / len(probes)
        assert bf.fpr_estimate() == pytest.approx(measured, rel=0.35)


@settings(max_examples=25, deadline=None)
@given(
    members=st.sets(st.binary(min_size=1, max_size=16), max_size=50),
)
def test_property_no_false_negatives(members):
    """Property: every inserted element is always found."""
    bf = BloomFilter(m=2048, k=5)
    for element in members:
        bf.add(element)
    assert all(bf.query(element) for element in members)


class TestEmptyLike:
    def test_clone_is_union_compatible_and_empty(self):
        original = BloomFilter(m=4096, k=5)
        original.add_batch(make_elements(100, "orig"))
        clone = original.empty_like()
        assert (clone.m, clone.k) == (4096, 5)
        assert clone.n_items == 0
        clone.add_batch(make_elements(50, "delta"))
        merged = original.union(clone)
        assert merged.n_items == 150
        assert merged.query_batch(make_elements(50, "delta")).all()
