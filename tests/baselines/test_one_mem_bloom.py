"""Tests for the 1MemBF baseline (Qiao et al.)."""

import pytest

from repro.analysis import bf_fpr, one_mem_bf_fpr
from repro.baselines import BloomFilter, OneMemoryBloomFilter
from repro.errors import UnsupportedOperationError
from tests.conftest import make_elements


class TestBasics:
    def test_no_false_negatives(self, elements):
        f = OneMemoryBloomFilter(m=8192, k=8)
        f.update(elements)
        assert all(e in f for e in elements)

    def test_empty_rejects(self, negatives):
        f = OneMemoryBloomFilter(m=8192, k=8)
        assert not any(e in f for e in negatives)

    def test_m_rounds_up_to_words(self):
        f = OneMemoryBloomFilter(m=100, k=4, word_bits=64)
        assert f.m == 128
        assert f.n_groups == 2

    def test_remove_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            OneMemoryBloomFilter(m=64, k=2).remove(b"x")

    def test_hash_ops_is_k_plus_one(self):
        assert OneMemoryBloomFilter(m=64, k=8).hash_ops_per_query == 9

    def test_multi_word_groups(self, elements):
        f = OneMemoryBloomFilter(m=8192, k=8, words_per_element=2)
        f.update(elements)
        assert all(e in f for e in elements)


class TestOneAccessProperty:
    def test_every_query_is_exactly_one_access(self, elements, negatives):
        f = OneMemoryBloomFilter(m=8192, k=8)
        f.update(elements)
        f.memory.reset()
        queries = elements[:100] + negatives[:100]
        for e in queries:
            f.query(e)
        assert f.memory.stats.read_ops == len(queries)
        assert f.memory.stats.read_words == len(queries)

    def test_insert_is_one_write(self):
        f = OneMemoryBloomFilter(m=8192, k=8)
        f.add(b"x")
        assert f.memory.stats.write_ops == 1
        assert f.memory.stats.write_words == 1


class TestAccuracyVsStandardBF:
    """The paper's point: one-word packing costs accuracy."""

    def test_higher_fpr_than_standard_bf(self):
        members = make_elements(2000, "m")
        probes = make_elements(30000, "p")
        m, k = 22976, 8
        one_mem = OneMemoryBloomFilter(m=m, k=k)
        bf = BloomFilter(m=m, k=k)
        one_mem.update(members)
        bf.update(members)
        fpr_one_mem = sum(1 for e in probes if e in one_mem) / len(probes)
        fpr_bf = sum(1 for e in probes if e in bf) / len(probes)
        assert fpr_one_mem > fpr_bf * 1.5

    def test_matches_poisson_model(self):
        members = make_elements(1500, "m")
        probes = make_elements(40000, "p")
        m, k = 22016, 8
        f = OneMemoryBloomFilter(m=m, k=k)
        f.update(members)
        measured = sum(1 for e in probes if e in f) / len(probes)
        modelled = one_mem_bf_fpr(m, len(members), k)
        assert measured == pytest.approx(modelled, rel=0.30)

    def test_model_exceeds_bloom_model(self):
        """Jensen's inequality: load imbalance strictly hurts."""
        for n in (500, 1000, 2000):
            assert one_mem_bf_fpr(22016, n, 8) > bf_fpr(22016, n, 8)
