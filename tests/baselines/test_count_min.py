"""Tests for the count-min sketch baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CountMinSketch
from repro.errors import UnsupportedOperationError
from tests.conftest import make_elements


class TestBasics:
    def test_exact_on_sparse_sketch(self):
        cm = CountMinSketch(d=4, r=1024)
        counts = {b"a": 3, b"b": 1, b"c": 40}
        for element, count in counts.items():
            cm.add(element, count=count)
        for element, count in counts.items():
            assert cm.estimate(element) == count

    def test_never_underestimates(self):
        cm = CountMinSketch(d=3, r=32)  # tiny: collisions guaranteed
        members = make_elements(200, "flow")
        for i, element in enumerate(members):
            cm.add(element, count=(i % 4) + 1)
        for i, element in enumerate(members):
            assert cm.estimate(element) >= (i % 4) + 1

    def test_absent_mostly_zero_when_sparse(self, negatives):
        cm = CountMinSketch(d=4, r=4096)
        cm.update(make_elements(100))
        zero = sum(1 for e in negatives if cm.estimate(e) == 0)
        assert zero / len(negatives) > 0.95

    def test_update_counts_each_occurrence(self):
        cm = CountMinSketch(d=4, r=256)
        cm.update([b"x", b"x", b"y"])
        assert cm.estimate(b"x") == 2
        assert cm.estimate(b"y") == 1

    def test_remove_unsupported(self):
        with pytest.raises(UnsupportedOperationError):
            CountMinSketch(d=2, r=16).remove(b"x")

    def test_properties(self):
        cm = CountMinSketch(d=4, r=256, counter_bits=6)
        assert cm.d == 4
        assert cm.r == 256
        assert cm.size_bits == 4 * 256 * 6
        assert cm.hash_ops_per_query == 4

    def test_query_answer_format(self):
        cm = CountMinSketch(d=4, r=256)
        cm.add(b"x", count=2)
        answer = cm.query(b"x")
        assert answer.candidates == (2,)
        assert answer.reported == 2
        assert answer.correct(2)


class TestConservativeUpdate:
    def test_conservative_never_exceeds_classic(self):
        members = make_elements(300, "flow")
        classic = CountMinSketch(d=4, r=64)
        conservative = CountMinSketch(d=4, r=64, conservative=True)
        for i, element in enumerate(members):
            count = (i % 3) + 1
            classic.add(element, count=count)
            conservative.add(element, count=count)
        for element in members:
            assert conservative.estimate(element) <= classic.estimate(
                element)

    def test_conservative_never_underestimates(self):
        cm = CountMinSketch(d=3, r=32, conservative=True)
        members = make_elements(150, "flow")
        truth: dict[bytes, int] = {}
        for i, element in enumerate(members):
            count = (i % 4) + 1
            cm.add(element, count=count)
            truth[element] = count
        for element, count in truth.items():
            assert cm.estimate(element) >= count


class TestAccounting:
    def test_query_costs_at_most_d_reads(self):
        cm = CountMinSketch(d=5, r=256)
        cm.add(b"x")
        cm.memory.reset()
        cm.estimate(b"x")
        assert cm.memory.stats.read_ops == 5


@settings(max_examples=20, deadline=None)
@given(counts=st.dictionaries(
    st.integers(0, 30), st.integers(1, 8), max_size=15))
def test_property_upper_bound(counts):
    cm = CountMinSketch(d=4, r=128)
    for key, count in counts.items():
        cm.add(b"k%d" % key, count=count)
    for key, count in counts.items():
        assert cm.estimate(b"k%d" % key) >= count
