"""Tests for the cuckoo filter baseline."""

import pytest

from repro.baselines import CuckooFilter
from repro.errors import CapacityError
from tests.conftest import make_elements


class TestBasics:
    def test_no_false_negatives(self, elements):
        cf = CuckooFilter(capacity=400)
        cf.update(elements)
        assert all(e in cf for e in elements)

    def test_empty_rejects(self, negatives):
        cf = CuckooFilter(capacity=400)
        assert not any(e in cf for e in negatives)

    def test_delete(self):
        cf = CuckooFilter(capacity=100)
        cf.add(b"x")
        assert cf.remove(b"x")
        assert b"x" not in cf

    def test_delete_absent_returns_false(self):
        cf = CuckooFilter(capacity=100)
        assert not cf.remove(b"never")

    def test_delete_preserves_others(self, elements):
        cf = CuckooFilter(capacity=400)
        cf.update(elements)
        for e in elements[:50]:
            cf.remove(e)
        assert all(e in cf for e in elements[50:])

    def test_low_fpr_at_12_bit_fingerprints(self):
        members = make_elements(900, "m")
        probes = make_elements(50000, "p")
        cf = CuckooFilter(capacity=1000, fingerprint_bits=12)
        cf.update(members)
        fpr = sum(1 for e in probes if e in cf) / len(probes)
        # theory ~ 2 * 4 / 2^12 ~ 0.002
        assert fpr < 0.01

    def test_load_factor(self):
        cf = CuckooFilter(capacity=100)
        for e in make_elements(50):
            cf.add(e)
        assert cf.load_factor == pytest.approx(
            50 / (cf.n_buckets * 4))

    def test_buckets_power_of_two(self):
        cf = CuckooFilter(capacity=1000)
        assert cf.n_buckets & (cf.n_buckets - 1) == 0


class TestCapacityFailure:
    def test_overfill_raises_capacity_error(self):
        """The paper's noted cuckoo weakness: inserts can fail."""
        cf = CuckooFilter(capacity=16, max_kicks=50, seed=1)
        with pytest.raises(CapacityError):
            # 10x the capacity must eventually fail
            for e in make_elements(200, "overflow"):
                cf.add(e)
        assert cf.load_factor > 0.9  # it failed *because* it was full

    def test_previous_elements_survive_failed_insert(self):
        cf = CuckooFilter(capacity=16, max_kicks=50, seed=1)
        inserted = []
        try:
            for e in make_elements(200, "overflow"):
                cf.add(e)
                inserted.append(e)
        except CapacityError:
            pass
        # all but at most one displaced victim must still be present
        missing = sum(1 for e in inserted if e not in cf)
        assert missing <= 1


class TestDeterminism:
    def test_same_seed_same_behaviour(self):
        a = CuckooFilter(capacity=64, seed=7)
        b = CuckooFilter(capacity=64, seed=7)
        for e in make_elements(60):
            a.add(e)
            b.add(e)
        for e in make_elements(60):
            assert (e in a) == (e in b)
