"""Tests for the iBF association baseline."""

import pytest

from repro.baselines import IndividualBloomFilters
from repro.core.association_types import Association
from tests.conftest import make_elements


@pytest.fixture
def three_regions():
    s1_only = make_elements(300, "s1only")
    both = make_elements(300, "both")
    s2_only = make_elements(300, "s2only")
    return s1_only, both, s2_only


@pytest.fixture
def scheme(three_regions):
    s1_only, both, s2_only = three_regions
    return IndividualBloomFilters.for_sets(
        s1_only + both, s2_only + both, k=10)


class TestAnswers:
    def test_answers_follow_ibf_semantics(self, scheme, three_regions):
        """Difference elements are either clear-correct or inflated to
        BOTH by a false positive — the failure mode the paper attributes
        to iBF.  Intersection elements always read as BOTH."""
        s1_only, both, s2_only = three_regions
        for e in s1_only:
            answer = scheme.query(e)
            assert answer.candidates in (
                {Association.S1_ONLY}, {Association.BOTH})
        for e in both:
            assert scheme.query(e).candidates == {Association.BOTH}
        for e in s2_only:
            answer = scheme.query(e)
            assert answer.candidates in (
                {Association.S2_ONLY}, {Association.BOTH})

    def test_intersection_answers_never_clear(self, scheme, three_regions):
        """The paper's accounting: iBF 'in both' may be an FP, never clear."""
        _, both, _ = three_regions
        for e in both:
            answer = scheme.query(e)
            assert not answer.clear

    def test_difference_answers_mostly_clear(self, scheme, three_regions):
        s1_only, _, s2_only = three_regions
        clear = sum(
            1 for e in s1_only + s2_only if scheme.query(e).clear
        )
        # optimal fill: P(clear | difference region) = 1 - 0.5^k ~ 0.999
        assert clear / (len(s1_only) + len(s2_only)) > 0.98

    def test_wrong_single_region_never_reported(
            self, scheme, three_regions):
        """iBF can inflate S1-only to BOTH, but never to S2-only."""
        s1_only, _, _ = three_regions
        for e in s1_only:
            assert scheme.query(e).candidates != {Association.S2_ONLY}

    def test_outside_universe_gives_empty_or_both(self, scheme):
        foreign = make_elements(200, "foreign")
        for e in foreign:
            answer = scheme.query(e)
            assert answer.outcome in (0, 1, 2, 3)  # any single or empty


class TestSizing:
    def test_memory_split_proportional(self):
        scheme = IndividualBloomFilters.for_sets(
            make_elements(100, "a"), make_elements(300, "b"), k=8)
        assert scheme.bf2.m == pytest.approx(3 * scheme.bf1.m, rel=0.05)

    def test_memory_scale(self):
        base = IndividualBloomFilters.for_sets(
            make_elements(100, "a"), make_elements(100, "b"), k=8)
        scaled = IndividualBloomFilters.for_sets(
            make_elements(100, "a"), make_elements(100, "b"), k=8,
            memory_scale=2.0)
        assert scaled.size_bits == pytest.approx(2 * base.size_bits, rel=0.02)

    def test_hash_ops(self):
        scheme = IndividualBloomFilters(m1=512, m2=512, k=8)
        assert scheme.hash_ops_per_query == 16


class TestIndependence:
    def test_filters_use_disjoint_hash_indices(self):
        scheme = IndividualBloomFilters(m1=1024, m2=1024, k=4)
        scheme.add_to_s1(b"x")
        # identical m: if families were shared, S2 would also match
        assert scheme.bf1.query(b"x")
        assert not scheme.bf2.query(b"x")

    def test_access_accounting_shared(self):
        scheme = IndividualBloomFilters(m1=1024, m2=1024, k=4)
        scheme.add_to_s1(b"x")
        scheme.memory.reset()
        scheme.query(b"x")
        # k reads in BF1 (all ones) + >= 1 read in BF2
        assert scheme.memory.stats.read_ops >= 5
