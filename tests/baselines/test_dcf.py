"""Tests for the Dynamic Count Filter baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DynamicCountFilter
from repro.errors import CounterUnderflowError
from tests.conftest import make_elements


class TestBasics:
    def test_exact_on_sparse_filter(self):
        dcf = DynamicCountFilter(m=4096, k=4)
        counts = {b"a": 3, b"b": 1, b"c": 11}
        for element, count in counts.items():
            dcf.add(element, count=count)
        for element, count in counts.items():
            assert dcf.estimate(element) == count

    def test_never_underestimates(self):
        dcf = DynamicCountFilter(m=128, k=3)
        members = make_elements(100, "flow")
        for i, element in enumerate(members):
            dcf.add(element, count=(i % 5) + 1)
        for i, element in enumerate(members):
            assert dcf.estimate(element) >= (i % 5) + 1

    def test_remove(self):
        dcf = DynamicCountFilter(m=1024, k=4)
        dcf.add(b"x", count=5)
        dcf.remove(b"x", count=2)
        assert dcf.estimate(b"x") == 3

    def test_remove_absent_raises(self):
        dcf = DynamicCountFilter(m=1024, k=4)
        with pytest.raises(CounterUnderflowError):
            dcf.remove(b"never")

    def test_remove_too_many_raises(self):
        dcf = DynamicCountFilter(m=1024, k=4)
        dcf.add(b"x", count=2)
        with pytest.raises(CounterUnderflowError):
            dcf.remove(b"x", count=3)


class TestDynamicGrowth:
    def test_overflow_vector_grows(self):
        """The defining DCF behaviour: counter width expands on demand."""
        dcf = DynamicCountFilter(m=256, k=3, fixed_bits=2, overflow_bits=1)
        initial = dcf.overflow_bits
        dcf.add(b"elephant", count=100)
        assert dcf.overflow_bits > initial
        assert dcf.rebuilds >= 1
        assert dcf.estimate(b"elephant") == 100

    def test_growth_preserves_existing_counts(self):
        dcf = DynamicCountFilter(m=512, k=3, fixed_bits=2, overflow_bits=1)
        members = make_elements(40, "mouse")
        for element in members:
            dcf.add(element, count=2)
        dcf.add(b"elephant", count=500)  # forces rebuilds
        for element in members:
            assert dcf.estimate(element) >= 2

    def test_size_reflects_growth(self):
        dcf = DynamicCountFilter(m=256, k=3, fixed_bits=2, overflow_bits=1)
        before = dcf.size_bits
        dcf.add(b"elephant", count=1000)
        assert dcf.size_bits > before


@settings(max_examples=15, deadline=None)
@given(counts=st.dictionaries(
    st.integers(0, 15), st.integers(1, 30), max_size=10))
def test_property_upper_bound_with_growth(counts):
    dcf = DynamicCountFilter(m=512, k=3, fixed_bits=2, overflow_bits=1)
    for key, count in counts.items():
        dcf.add(b"k%d" % key, count=count)
    for key, count in counts.items():
        assert dcf.estimate(b"k%d" % key) >= count
