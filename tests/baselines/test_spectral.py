"""Tests for the Spectral Bloom filter baseline (all three variants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SpectralBloomFilter, SpectralVariant
from repro.errors import UnsupportedOperationError
from tests.conftest import make_elements


@pytest.fixture(params=["ms", "mi", "rm"])
def variant(request):
    return request.param


class TestAllVariants:
    def test_estimate_upper_bounds_truth(self, variant):
        sbf = SpectralBloomFilter(m=4096, k=5, variant=variant)
        counts = {b"a": 3, b"b": 1, b"c": 7}
        for element, count in counts.items():
            for _ in range(count):
                sbf.add(element)
        for element, count in counts.items():
            assert sbf.estimate(element) >= count

    def test_absent_elements_mostly_zero(self, variant, negatives):
        sbf = SpectralBloomFilter(m=8192, k=5, variant=variant)
        sbf.update(make_elements(200))
        zero = sum(1 for e in negatives if sbf.estimate(e) == 0)
        assert zero / len(negatives) > 0.95

    def test_exact_on_sparse_filter(self, variant):
        sbf = SpectralBloomFilter(m=8192, k=5, variant=variant)
        counts = {(b"elem-%d" % i): (i % 5) + 1 for i in range(50)}
        for element, count in counts.items():
            for _ in range(count):
                sbf.add(element)
        correct = sum(
            1 for element, count in counts.items()
            if sbf.estimate(element) == count
        )
        assert correct / len(counts) > 0.9

    def test_query_answer_format(self, variant):
        sbf = SpectralBloomFilter(m=1024, k=4, variant=variant)
        sbf.add(b"x")
        answer = sbf.query(b"x")
        assert answer.present
        assert answer.reported >= 1
        absent = sbf.query(b"only-fp-could-find-me")
        assert absent.reported == 0 or absent.reported >= 1  # no crash

    def test_contains(self, variant):
        sbf = SpectralBloomFilter(m=1024, k=4, variant=variant)
        sbf.add(b"x")
        assert b"x" in sbf


class TestVariantSpecifics:
    def test_mi_rejects_deletion(self):
        sbf = SpectralBloomFilter(m=1024, k=4, variant="mi")
        sbf.add(b"x")
        with pytest.raises(UnsupportedOperationError):
            sbf.remove(b"x")

    def test_ms_supports_deletion(self):
        sbf = SpectralBloomFilter(m=1024, k=4, variant="ms")
        sbf.add(b"x")
        sbf.add(b"x")
        sbf.remove(b"x")
        assert sbf.estimate(b"x") == 1

    def test_rm_supports_deletion(self):
        sbf = SpectralBloomFilter(m=1024, k=4, variant="rm")
        sbf.add(b"x")
        sbf.add(b"x")
        sbf.remove(b"x")
        assert sbf.estimate(b"x") == 1

    def test_mi_is_at_least_as_tight_as_ms(self):
        """MI increments fewer counters, so its estimates can't exceed MS."""
        members = make_elements(400, "flow")
        counts = {e: (i % 7) + 1 for i, e in enumerate(members)}
        ms = SpectralBloomFilter(m=2048, k=4, variant="ms")
        mi = SpectralBloomFilter(m=2048, k=4, variant="mi",
                                 family=ms._family)
        for element, count in counts.items():
            for _ in range(count):
                ms.add(element)
                mi.add(element)
        for element in members:
            assert mi.estimate(element) <= ms.estimate(element)

    def test_rm_uses_more_memory_and_hashes(self):
        rm = SpectralBloomFilter(m=1024, k=4, variant="rm")
        ms = SpectralBloomFilter(m=1024, k=4, variant="ms")
        assert rm.size_bits > ms.size_bits
        assert rm.hash_ops_per_query == 2 * ms.hash_ops_per_query

    def test_variant_enum_accepted(self):
        sbf = SpectralBloomFilter(
            m=256, k=2, variant=SpectralVariant.MINIMUM_INCREASE)
        assert sbf.variant is SpectralVariant.MINIMUM_INCREASE


class TestAccounting:
    def test_ms_query_costs_at_most_k_reads(self):
        sbf = SpectralBloomFilter(m=4096, k=6, variant="ms")
        sbf.add(b"x")
        sbf.memory.reset()
        sbf.estimate(b"x")
        assert sbf.memory.stats.read_ops == 6

    def test_absent_query_early_exits(self, negatives):
        sbf = SpectralBloomFilter(m=8192, k=8, variant="ms")
        sbf.update(make_elements(50))
        sbf.memory.reset()
        for e in negatives[:300]:
            sbf.estimate(e)
        assert sbf.memory.stats.read_ops / 300 < 2.5


@settings(max_examples=20, deadline=None)
@given(counts=st.dictionaries(
    st.integers(0, 20), st.integers(1, 6), max_size=12))
def test_property_ms_never_underestimates(counts):
    sbf = SpectralBloomFilter(m=2048, k=4, variant="ms")
    for key, count in counts.items():
        for _ in range(count):
            sbf.add(b"k%d" % key)
    for key, count in counts.items():
        assert sbf.estimate(b"k%d" % key) >= count
