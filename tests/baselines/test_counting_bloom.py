"""Tests for the counting Bloom filter baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CountingBloomFilter
from repro.errors import CounterUnderflowError
from tests.conftest import make_elements


class TestBasics:
    def test_no_false_negatives(self, elements):
        cbf = CountingBloomFilter(m=4096, k=6)
        cbf.update(elements)
        assert all(e in cbf for e in elements)

    def test_delete_removes(self):
        cbf = CountingBloomFilter(m=2048, k=5)
        cbf.add(b"x")
        cbf.remove(b"x")
        assert b"x" not in cbf

    def test_delete_preserves_others(self, elements):
        cbf = CountingBloomFilter(m=8192, k=5)
        cbf.update(elements)
        for e in elements[:100]:
            cbf.remove(e)
        assert all(e in cbf for e in elements[100:])

    def test_double_insert_needs_double_delete(self):
        cbf = CountingBloomFilter(m=2048, k=5)
        cbf.add(b"x")
        cbf.add(b"x")
        cbf.remove(b"x")
        assert b"x" in cbf
        cbf.remove(b"x")
        assert b"x" not in cbf

    def test_delete_absent_raises(self):
        cbf = CountingBloomFilter(m=2048, k=5)
        with pytest.raises(CounterUnderflowError):
            cbf.remove(b"never-inserted")

    def test_count_estimate(self):
        cbf = CountingBloomFilter(m=2048, k=5)
        for _ in range(3):
            cbf.add(b"x")
        assert cbf.count_estimate(b"x") >= 3

    def test_n_items_net(self):
        cbf = CountingBloomFilter(m=2048, k=4)
        cbf.add(b"a")
        cbf.add(b"b")
        cbf.remove(b"a")
        assert cbf.n_items == 1

    def test_size_bits(self):
        cbf = CountingBloomFilter(m=1000, k=4, counter_bits=4)
        assert cbf.size_bits == 4000

    def test_for_capacity(self):
        cbf = CountingBloomFilter.for_capacity(500, fpr=0.01)
        assert cbf.k == 7

    def test_saturation_is_conservative(self):
        """A saturated counter never decrements, so no false negatives."""
        cbf = CountingBloomFilter(m=64, k=1, counter_bits=2)
        for _ in range(10):
            cbf.add(b"hot")
        for _ in range(3):
            cbf.remove(b"hot")
        assert b"hot" in cbf  # stuck at max, still positive


class TestAgainstReference:
    @settings(max_examples=20, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(0, 9)), max_size=60
        )
    )
    def test_matches_multiset_semantics(self, ops):
        """Property: CBF membership == multiset membership (no FN)."""
        cbf = CountingBloomFilter(m=4096, k=4)
        reference: dict[int, int] = {}
        for insert, key in ops:
            element = b"key-%d" % key
            if insert:
                cbf.add(element)
                reference[key] = reference.get(key, 0) + 1
            elif reference.get(key, 0) > 0:
                cbf.remove(element)
                reference[key] -= 1
        for key, count in reference.items():
            if count > 0:
                assert b"key-%d" % key in cbf
