"""Tests for the hash-based shard router."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.store import ShardRouter
from tests.conftest import make_elements

ELEMENTS = make_elements(2000, "route")


class TestRouting:
    def test_route_is_deterministic(self):
        router = ShardRouter(n_shards=8)
        again = ShardRouter(n_shards=8)
        assert [router.route(e) for e in ELEMENTS[:100]] \
            == [again.route(e) for e in ELEMENTS[:100]]

    def test_route_in_range(self):
        router = ShardRouter(n_shards=5)
        assert all(0 <= router.route(e) < 5 for e in ELEMENTS[:200])

    def test_batch_equals_scalar(self):
        router = ShardRouter(n_shards=7)
        assert router.route_batch(ELEMENTS).tolist() \
            == [router.route(e) for e in ELEMENTS]

    def test_empty_batch(self):
        router = ShardRouter(n_shards=3)
        assert router.route_batch([]).shape == (0,)
        assert list(router.group([])) == []

    def test_seed_changes_routing(self):
        a = ShardRouter(n_shards=8, seed=1)
        b = ShardRouter(n_shards=8, seed=2)
        assert a.route_batch(ELEMENTS).tolist() \
            != b.route_batch(ELEMENTS).tolist()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardRouter(n_shards=4, seed=-1)


class TestGrouping:
    def test_groups_partition_preserving_order(self):
        router = ShardRouter(n_shards=6)
        groups = list(router.group(ELEMENTS))
        seen = np.concatenate([idx for _, idx in groups])
        assert sorted(seen.tolist()) == list(range(len(ELEMENTS)))
        shard_ids = router.route_batch(ELEMENTS)
        for shard_id, idx in groups:
            assert (shard_ids[idx] == shard_id).all()
            # order inside a bucket is input order (stable sort)
            assert (np.diff(idx) > 0).all()

    def test_histogram_matches_groups(self):
        router = ShardRouter(n_shards=4)
        hist = router.histogram(ELEMENTS)
        assert hist.sum() == len(ELEMENTS)
        by_group = dict(
            (sid, len(idx)) for sid, idx in router.group(ELEMENTS))
        assert hist.tolist() == [by_group.get(s, 0) for s in range(4)]

    def test_load_is_roughly_balanced(self):
        router = ShardRouter(n_shards=4)
        hist = router.histogram(ELEMENTS)
        mean = len(ELEMENTS) / 4
        assert hist.max() < 1.25 * mean
        assert hist.min() > 0.75 * mean


class TestCompatibility:
    def test_compatible_iff_seed_and_count_match(self):
        base = ShardRouter(n_shards=4, seed=9)
        assert base.is_compatible(ShardRouter(n_shards=4, seed=9))
        assert not base.is_compatible(ShardRouter(n_shards=5, seed=9))
        assert not base.is_compatible(ShardRouter(n_shards=4, seed=8))


@settings(max_examples=25, deadline=None)
@given(
    elements=st.lists(st.binary(min_size=0, max_size=16), min_size=1,
                      max_size=50),
    n_shards=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=10),
)
def test_property_batch_routing_matches_scalar(elements, n_shards, seed):
    """Scalar and vectorised routing agree on arbitrary byte elements
    (duplicates included), for any shard count and seed."""
    router = ShardRouter(n_shards=n_shards, seed=seed)
    assert router.route_batch(elements).tolist() \
        == [router.route(e) for e in elements]
    scattered = np.empty(len(elements), dtype=np.int64)
    for shard_id, idx in router.group(elements):
        scattered[idx] = shard_id
    assert scattered.tolist() == [router.route(e) for e in elements]
