"""Tests for the generational TTL store: triggers, rotation atomicity,
batch/scalar equivalence, slot operations and serde — plus a hypothesis
model check over randomized add/query/trigger schedules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShiftingBloomFilter
from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.store import GenerationalStore, RotationEvent
from tests.conftest import make_elements

ELEMENTS = make_elements(600, "gen-member")
ABSENT = make_elements(600, "gen-absent")


class ManualClock:
    """An injectable monotonic clock the tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def tick(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def shbf_factory(seq):
    return ShiftingBloomFilter(m=8192, k=4)


def make_store(generations=3, **kwargs):
    return GenerationalStore(shbf_factory, generations=generations,
                             **kwargs)


class TestConstruction:
    def test_needs_two_generations(self):
        with pytest.raises(ConfigurationError, match=">= 2"):
            make_store(generations=1)
        with pytest.raises(ConfigurationError):
            make_store(generations=0)

    def test_negative_triggers_rejected(self):
        with pytest.raises(ConfigurationError):
            make_store(rotate_after_items=-1)
        with pytest.raises(ConfigurationError):
            make_store(rotate_after_s=-0.5)

    def test_initial_ring_shape(self):
        store = make_store(generations=4)
        assert store.n_generations == store.n_shards == 4
        assert store.n_items == 0
        assert store.rotations == 0
        # seqs descend head-first so recency is readable pre-rotation
        assert [row.seq for row in store.generation_stats()] == [3, 2, 1, 0]

    def test_size_bits_and_memory_aggregate(self):
        store = make_store(generations=3)
        assert store.size_bits == sum(
            gen.size_bits for gen in store.generations)
        store.add_batch(ELEMENTS[:50])
        assert store.memory.stats.write_ops > 0
        store.memory.reset()
        assert store.memory.stats.total_words == 0


class TestTriggers:
    def test_cardinality_trigger_rotates_on_next_write(self):
        store = make_store(rotate_after_items=10)
        store.add_batch(ELEMENTS[:10])
        assert store.rotations == 0  # batch is atomic, overshoot allowed
        store.add(ELEMENTS[10])
        assert store.rotations == 1
        assert store.head.n_items == 1

    def test_time_trigger_uses_injected_clock_only(self):
        clock = ManualClock()
        store = make_store(rotate_after_s=5.0, clock=clock)
        store.add(ELEMENTS[0])
        assert store.rotations == 0
        clock.tick(4.999)
        assert store.maybe_rotate() is False
        clock.tick(0.001)
        assert store.maybe_rotate() is True
        assert store.rotations == 1

    def test_no_triggers_means_manual_rotation_only(self):
        store = make_store()
        store.add_batch(ELEMENTS[:100])
        assert store.maybe_rotate() is False
        store.rotate()
        assert store.rotations == 1

    def test_pure_reads_never_mutate_the_ring(self):
        clock = ManualClock()
        store = make_store(rotate_after_s=1.0, clock=clock)
        store.add(ELEMENTS[0])
        clock.tick(100.0)
        before = store.generations
        store.query(ELEMENTS[0])
        store.query_batch(ELEMENTS[:20])
        assert store.generations == before
        assert store.rotations == 0


class TestExpiry:
    def test_element_expires_after_g_rotations(self):
        store = make_store(generations=3)
        store.add(ELEMENTS[0])
        for _ in range(2):
            store.rotate()
            assert store.query(ELEMENTS[0])  # still in the window
        store.rotate()
        assert not store.query(ELEMENTS[0])
        assert store.n_items == 0

    def test_rotation_event_payload(self):
        events = []
        store = make_store(generations=3, on_rotate=events.append)
        store.add_batch(ELEMENTS[:7])
        retired = store.rotate()
        assert retired.n_items == 0  # the oldest (empty) slot retires
        event = events[0]
        assert isinstance(event, RotationEvent)
        assert event.retired_n_items == 0
        assert event.retired_seq == 0
        assert event.seq == 3
        assert event.live_generations == 3
        assert event.stall_s >= 0.0
        # two more rotations walk the loaded generation off the ring
        store.rotate()
        retired = store.rotate()
        assert retired.n_items == 7
        assert events[-1].retired_n_items == 7
        assert events[-1].retired_seq == 2

    def test_rotate_requires_factory_after_restore(self):
        store = make_store()
        store.add_batch(ELEMENTS[:20])
        clone = GenerationalStore.restore(store.snapshot())
        with pytest.raises(ConfigurationError, match="factory"):
            clone.rotate()
        again = GenerationalStore.restore(
            store.snapshot(), factory=shbf_factory)
        again.rotate()
        assert again.rotations == 1


class TestQueryPaths:
    def test_batch_equals_scalar_across_generations(self):
        store = make_store(generations=3)
        store.add_batch(ELEMENTS[:100])
        store.rotate()
        store.add_batch(ELEMENTS[100:200])
        store.rotate()
        store.add_batch(ELEMENTS[200:300])
        mixed = ELEMENTS[:300] + ABSENT[:300]
        verdicts = store.query_batch(mixed)
        assert verdicts.tolist() == [store.query(e) for e in mixed]
        assert verdicts[:300].all()  # in-window: no false negatives

    def test_batch_billing_matches_scalar(self):
        """The pending-mask sweep must cost what the scalar loop costs:
        a hit stops probing, a miss sweeps every generation."""
        batch, scalar = make_store(), make_store()
        for store in (batch, scalar):
            store.add_batch(ELEMENTS[:100])
            store.rotate()
            store.add_batch(ELEMENTS[100:200])
            store.memory.reset()
        mixed = ELEMENTS[:200] + ABSENT[:200]
        batch.query_batch(mixed)
        for element in mixed:
            scalar.query(element)
        assert batch.memory.stats.read_words \
            == scalar.memory.stats.read_words

    def test_empty_batches_are_noops(self):
        store = make_store()
        store.add_batch([])
        assert store.n_items == 0
        assert store.query_batch([]).shape == (0,)

    def test_update_and_contains(self):
        store = make_store()
        store.update(ELEMENTS[:5])
        assert store.n_items == 5
        assert ELEMENTS[0] in store

    def test_counts_length_mismatch_rejected(self):
        store = make_store()
        with pytest.raises(ConfigurationError, match="counts"):
            store.add_batch(ELEMENTS[:3], [1, 2])


class TestSlotOperations:
    def test_replace_shard_swaps_and_bumps_swap_count(self):
        store = make_store()
        store.add_batch(ELEMENTS[:30])
        before = store.swap_count
        fresh = shbf_factory(0)
        retired = store.replace_shard(0, fresh)
        assert retired.n_items == 30
        assert store.head is fresh
        assert store.swap_count == before + 1
        with pytest.raises(ConfigurationError, match="out of range"):
            store.replace_shard(9, fresh)

    def test_rotation_bumps_swap_count(self):
        store = make_store()
        before = store.swap_count
        store.rotate()
        assert store.swap_count == before + 1

    def test_merge_shard_unions_in_place(self):
        store, donor = make_store(), shbf_factory(0)
        store.add_batch(ELEMENTS[:50])
        donor.add_batch(ELEMENTS[50:100])
        store.merge_shard(0, donor)
        assert store.query_batch(ELEMENTS[:100]).all()
        direct = shbf_factory(0)
        direct.add_batch(ELEMENTS[:50])
        direct.add_batch(ELEMENTS[50:100])
        assert store.head.bits.to_bytes() == direct.bits.to_bytes()

    def test_merge_shard_geometry_mismatch_surfaces(self):
        store = make_store()
        with pytest.raises(ConfigurationError, match="incompatible"):
            store.merge_shard(0, ShiftingBloomFilter(m=16384, k=4))
        with pytest.raises(ConfigurationError, match="out of range"):
            store.merge_shard(-1, None)


class TestSerde:
    def test_round_trip_is_byte_identical(self):
        store = make_store()
        store.add_batch(ELEMENTS[:100])
        store.rotate()
        store.add_batch(ELEMENTS[100:150])
        blob = store.snapshot()
        clone = GenerationalStore.restore(blob)
        assert clone.snapshot() == blob
        assert clone.n_generations == store.n_generations
        assert clone.rotate_after_items == store.rotate_after_items
        assert clone.rotate_after_s == store.rotate_after_s
        mixed = ELEMENTS[:150] + ABSENT[:150]
        assert clone.query_batch(mixed).tolist() \
            == store.query_batch(mixed).tolist()

    def test_snapshot_carries_no_clock_state(self):
        """Ages restart on restore: two stores with identical bits but
        wildly different clocks snapshot byte-identically."""
        young, old = ManualClock(0.0), ManualClock(1e6)
        a = make_store(rotate_after_s=3600.0, clock=young)
        b = make_store(rotate_after_s=3600.0, clock=old)
        a.add_batch(ELEMENTS[:40])
        b.add_batch(ELEMENTS[:40])
        assert a.snapshot() == b.snapshot()


# ----------------------------------------------------------------------
# Hypothesis: the store vs a transparent reference model
# ----------------------------------------------------------------------
def _ops():
    add = st.tuples(st.just("add"), st.integers(0, 59))
    tick = st.tuples(st.just("tick"), st.integers(1, 9))
    batch = st.tuples(
        st.just("batch"),
        st.lists(st.integers(0, 59), min_size=0, max_size=8))
    poke = st.tuples(st.just("poke"), st.just(0))
    return st.lists(st.one_of(add, tick, batch, poke),
                    min_size=1, max_size=40)


@st.composite
def _schedules(draw):
    return (draw(_ops()),
            draw(st.sampled_from([0, 3, 5, 8])),      # rotate_after_items
            draw(st.sampled_from([0.0, 5.0, 12.0])),  # rotate_after_s
            draw(st.integers(2, 4)))                  # generations


class _Model:
    """Exact mirror of the trigger/rotation semantics using sets."""

    def __init__(self, generations, rotate_items, rotate_s):
        self.rotate_items = rotate_items
        self.rotate_s = rotate_s
        self.now = 0.0
        # head first: [inserted_count, born, set_of_elements]
        self.ring = [[0, 0.0, set()] for _ in range(generations)]

    def _due(self):
        head = self.ring[0]
        if self.rotate_s > 0 and self.now - head[1] >= self.rotate_s:
            return True
        return self.rotate_items > 0 and head[0] >= self.rotate_items

    def maybe_rotate(self):
        if self._due():
            self.ring = [[0, self.now, set()]] + self.ring[:-1]

    def add(self, element):
        self.maybe_rotate()
        self.ring[0][0] += 1
        self.ring[0][2].add(element)

    def add_batch(self, elements):
        if not elements:
            return
        self.maybe_rotate()
        self.ring[0][0] += len(elements)
        self.ring[0][2].update(elements)

    @property
    def live(self):
        out = set()
        for _, _, members in self.ring:
            out |= members
        return out


@given(_schedules())
@settings(max_examples=40, deadline=None)
def test_store_matches_reference_model(schedule):
    ops, rotate_items, rotate_s, generations = schedule
    alphabet = make_elements(60, "hyp")
    clock = ManualClock()
    store = GenerationalStore(
        lambda seq: ShiftingBloomFilter(m=16384, k=4),
        generations=generations,
        rotate_after_items=rotate_items,
        rotate_after_s=rotate_s,
        clock=clock)
    model = _Model(generations, rotate_items, rotate_s)
    for op, arg in ops:
        if op == "add":
            store.add(alphabet[arg])
            model.add(alphabet[arg])
        elif op == "tick":
            clock.tick(float(arg))
            model.now += float(arg)
        elif op == "batch":
            chunk = [alphabet[i] for i in arg]
            store.add_batch(chunk)
            model.add_batch(chunk)
        else:  # poke
            store.maybe_rotate()
            model.maybe_rotate()

    # no false negatives anywhere in the live window
    live = sorted(model.live)
    if live:
        assert store.query_batch(live).all()
        assert all(store.query(e) for e in live)

    # exact n_items accounting, per generation and in total
    rows = store.generation_stats()
    assert [row.n_items for row in rows] \
        == [count for count, _, _ in model.ring]
    assert store.n_items == sum(count for count, _, _ in model.ring)
    # seqs stay strictly descending head-first through any schedule
    seqs = [row.seq for row in rows]
    assert seqs == sorted(seqs, reverse=True)

    # serde round-trip preserves bits and verdicts exactly
    blob = store.snapshot()
    clone = GenerationalStore.restore(blob)
    assert clone.snapshot() == blob
    assert clone.query_batch(alphabet).tolist() \
        == store.query_batch(alphabet).tolist()
