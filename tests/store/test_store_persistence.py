"""Round-trip and rejection tests for the store container format."""

import json
import struct

import pytest

from repro import persistence
from repro.baselines import BloomFilter, OneMemoryBloomFilter
from repro.core import CountingShiftingBloomFilter, ShiftingBloomFilter
from repro.errors import ConfigurationError, UnsupportedSnapshotError
from repro.hashing import Blake2Family, VectorizedFamily, family_spec
from repro.store import ShardedFilterStore, ShardRouter
from tests.conftest import make_elements

MEMBERS = make_elements(800, "member")
PROBES = MEMBERS + make_elements(800, "absent")


def build_store(factory=lambda s: ShiftingBloomFilter(m=8192, k=8),
                n_shards=4, **kwargs):
    store = ShardedFilterStore(factory, n_shards=n_shards, **kwargs)
    store.add_batch(MEMBERS)
    return store


def reforge(blob: bytes, mutate_header) -> bytes:
    """Rewrite a snapshot's JSON header and re-sign the digest.

    ``mutate_header(dict)`` edits the decoded header in place; the
    payload is untouched, so the result is a *validly signed* blob with
    forged metadata — the shape of attack the header fields themselves
    (not the digest) must defend against.
    """
    import hashlib

    _, header_len = struct.unpack("<HI", blob[4:10])
    header = json.loads(blob[10 : 10 + header_len])
    mutate_header(header)
    new_header = json.dumps(header, sort_keys=True).encode()
    payload = blob[10 + header_len + 16 :]
    digest = hashlib.blake2b(new_header + payload, digest_size=16).digest()
    return (blob[:4] + struct.pack("<HI", 1, len(new_header))
            + new_header + digest + payload)


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [
        pytest.param(lambda s: BloomFilter(m=8192, k=6), id="bf"),
        pytest.param(lambda s: ShiftingBloomFilter(m=8192, k=8),
                     id="shbf_m"),
        pytest.param(lambda s: OneMemoryBloomFilter(m=8192, k=8),
                     id="one_mem_bf"),
    ])
    def test_restore_is_bit_identical_across_all_shards(self, factory):
        original = build_store(factory=factory)
        clone = ShardedFilterStore.restore(original.snapshot())
        assert clone.n_shards == original.n_shards
        assert clone.router.is_compatible(original.router)
        for ours, theirs in zip(clone.shards, original.shards):
            assert type(ours) is type(theirs)
            assert ours.bits.to_bytes() == theirs.bits.to_bytes()
            assert ours.n_items == theirs.n_items
        # the acceptance bar: restored verdicts are bit-identical
        assert clone.query_batch(PROBES).tolist() \
            == original.query_batch(PROBES).tolist()

    def test_router_seed_round_trips(self):
        original = build_store(router=ShardRouter(4, seed=123))
        clone = ShardedFilterStore.restore(original.snapshot())
        assert clone.router.seed == 123

    def test_module_level_functions_match_methods(self):
        store = build_store()
        assert persistence.loads_store(
            persistence.dumps_store(store)).query_batch(PROBES).tolist() \
            == store.query_batch(PROBES).tolist()


class TestFamilyRoundTrip:
    """Snapshots carry the hash-family kind + seed: a restore hashes —
    and therefore answers — identically whatever family the filters
    (and the router) were wired with."""

    @pytest.mark.parametrize("family_maker,kind", [
        pytest.param(lambda: VectorizedFamily(seed=5), "vector64",
                     id="vector64"),
        pytest.param(lambda: Blake2Family(seed=5, batch_lanes=False),
                     "blake2b-per-index", id="blake2b-per-index"),
    ])
    def test_single_filter_family_round_trips(self, family_maker, kind):
        original = ShiftingBloomFilter(m=8192, k=8, family=family_maker())
        original.add_batch(MEMBERS)
        clone = persistence.loads(persistence.dumps(original))
        assert family_spec(clone.family) == (kind, 5)
        assert clone.bits.to_bytes() == original.bits.to_bytes()
        assert clone.query_batch(PROBES).tolist() \
            == original.query_batch(PROBES).tolist()

    def test_store_of_vectorized_shards_round_trips(self):
        original = build_store(
            factory=lambda s: ShiftingBloomFilter(
                m=8192, k=8, family=VectorizedFamily(seed=9)),
            router=ShardRouter(4, seed=77, family_kind="vector64"))
        clone = ShardedFilterStore.restore(original.snapshot())
        assert clone.router.family_kind == "vector64"
        assert clone.router.seed == 77
        assert clone.router.is_compatible(original.router)
        for shard in clone.shards:
            assert family_spec(shard.family) == ("vector64", 9)
        assert clone.query_batch(PROBES).tolist() \
            == original.query_batch(PROBES).tolist()
        # byte-identical re-snapshot: the format is deterministic in
        # the family fields too
        assert clone.snapshot() == original.snapshot()

    def test_mixed_family_shards_round_trip(self):
        """Each shard blob carries its own family spec."""
        families = [Blake2Family(seed=1), VectorizedFamily(seed=2),
                    Blake2Family(seed=3), VectorizedFamily(seed=4)]
        original = build_store(
            factory=lambda s: ShiftingBloomFilter(
                m=8192, k=8, family=families[s]))
        clone = ShardedFilterStore.restore(original.snapshot())
        assert [family_spec(s.family) for s in clone.shards] == [
            ("blake2b", 1), ("vector64", 2), ("blake2b", 3),
            ("vector64", 4)]
        assert clone.query_batch(PROBES).tolist() \
            == original.query_batch(PROBES).tolist()

    def test_unknown_family_rejected_with_clear_error(self):
        """A blob declaring a family this build can't reconstruct must
        refuse loudly — restoring under a different family would not
        error, it would just answer wrongly."""
        blob = persistence.dumps(ShiftingBloomFilter(
            m=512, k=4, family=VectorizedFamily(seed=0)))
        forged = reforge(
            blob, lambda h: h.__setitem__("family", "quantum128"))
        with pytest.raises(ConfigurationError,
                           match="family 'quantum128'.*mis-hash"):
            persistence.loads(forged)

    def test_unknown_router_family_rejected(self):
        forged = reforge(
            build_store().snapshot(),
            lambda h: h.__setitem__("router_family", "quantum128"))
        with pytest.raises(ConfigurationError,
                           match="router family 'quantum128'"):
            persistence.loads_store(forged)

    def test_legacy_header_without_family_is_blake2b(self):
        """Pre-registry blobs carry only a seed; they were always
        BLAKE2b lanes and must keep restoring that way."""
        original = BloomFilter(m=4096, k=6, family=Blake2Family(seed=13))
        original.add_batch(MEMBERS[:100])
        legacy = reforge(
            persistence.dumps(original),
            lambda h: h.__delitem__("family"))
        clone = persistence.loads(legacy)
        assert family_spec(clone.family) == ("blake2b", 13)
        assert clone.query_batch(MEMBERS[:100]).all()


class TestRejection:
    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigurationError, match="magic"):
            persistence.loads_store(b"NOPE" + b"\x00" * 64)

    def test_single_filter_blob_is_not_a_container(self):
        blob = persistence.dumps(ShiftingBloomFilter(m=512, k=4))
        with pytest.raises(ConfigurationError, match="magic"):
            persistence.loads_store(blob)

    def test_unsupported_version_rejected(self):
        blob = bytearray(build_store().snapshot())
        blob[4:6] = struct.pack("<H", 99)
        with pytest.raises(ConfigurationError, match="version"):
            persistence.loads_store(bytes(blob))

    def test_corrupted_digest_rejected(self):
        blob = bytearray(build_store().snapshot())
        _, header_len = struct.unpack("<HI", blob[4:10])
        blob[10 + header_len] ^= 0xFF  # first digest byte
        with pytest.raises(ConfigurationError, match="integrity"):
            persistence.loads_store(bytes(blob))

    def test_corrupted_payload_rejected(self):
        blob = bytearray(build_store().snapshot())
        blob[-1] ^= 0xFF
        with pytest.raises(ConfigurationError, match="integrity"):
            persistence.loads_store(bytes(blob))

    def test_truncated_blob_rejected(self):
        blob = build_store().snapshot()
        # cuts inside the payload, the header, and the fixed 10-byte
        # prefix (the last would reach struct.unpack unguarded)
        for cut in (len(blob) - 1, len(blob) // 2, 30, 8, 5):
            with pytest.raises(ConfigurationError):
                persistence.loads_store(blob[:cut])

    def test_truncated_single_filter_blob_rejected(self):
        blob = persistence.dumps(ShiftingBloomFilter(m=512, k=4))
        for cut in (len(blob) - 1, 20, 8, 5):
            with pytest.raises(ConfigurationError):
                persistence.loads(blob[:cut])

    def test_tampered_header_rejected(self):
        """Rewriting the header (e.g. lying about blob sizes) breaks the
        digest even when the payload is untouched."""
        blob = build_store().snapshot()
        _, header_len = struct.unpack("<HI", blob[4:10])
        header = json.loads(blob[10 : 10 + header_len])
        header["blob_bytes"][0] -= 1
        new_header = json.dumps(header, sort_keys=True).encode()
        forged = (blob[:4] + struct.pack("<HI", 1, len(new_header))
                  + new_header + blob[10 + header_len :])
        with pytest.raises(ConfigurationError):
            persistence.loads_store(forged)

    def test_non_store_input_to_dumps_store(self):
        with pytest.raises(ConfigurationError, match="ShardedFilterStore"):
            persistence.dumps_store(ShiftingBloomFilter(m=512, k=4))


class TestCountingVariantsTypedError:
    """Satellite fix: counting variants now fail with a dedicated error
    type and an actionable message instead of the generic catch-all."""

    def test_counting_filter_raises_typed_error(self):
        filt = CountingShiftingBloomFilter(m=1024, k=8)
        with pytest.raises(UnsupportedSnapshotError,
                           match="counter array is DRAM-tier"):
            persistence.dumps(filt)

    def test_counting_baseline_raises_typed_error(self):
        from repro.baselines import CountingBloomFilter

        with pytest.raises(UnsupportedSnapshotError):
            persistence.dumps(CountingBloomFilter(m=1024, k=4))

    def test_typed_error_is_still_a_configuration_error(self):
        """Existing ``except ConfigurationError`` callers keep working."""
        assert issubclass(UnsupportedSnapshotError, ConfigurationError)

    def test_store_of_counting_shards_raises_typed_error(self):
        store = ShardedFilterStore(
            lambda s: CountingShiftingBloomFilter(m=1024, k=8), n_shards=2)
        with pytest.raises(UnsupportedSnapshotError):
            store.snapshot()

    def test_unknown_type_keeps_generic_error(self):
        with pytest.raises(ConfigurationError) as excinfo:
            persistence.dumps(object())
        assert not isinstance(excinfo.value, UnsupportedSnapshotError)
