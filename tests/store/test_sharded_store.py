"""Tests for the sharded filter store: routing, batching, accounting,
rotation and merges."""

import numpy as np
import pytest

from repro.baselines import BloomFilter, OneMemoryBloomFilter
from repro.core import (
    CountingShiftingBloomFilter,
    ShiftingAssociationFilter,
    ShiftingBloomFilter,
    ShiftingMultiplicityFilter,
)
from repro.errors import ConfigurationError, UnsupportedOperationError
from repro.harness.metrics import measure_accesses_per_query
from repro.store import ShardedFilterStore, ShardRouter
from repro.workloads import partition_by_shard, shard_load_factors
from tests.conftest import make_elements

MEMBERS = make_elements(1500, "member")
ABSENT = make_elements(1500, "absent")
MIXED = [e for pair in zip(MEMBERS, ABSENT) for e in pair]


def shbf_factory(shard):
    return ShiftingBloomFilter(m=16384, k=8)


def make_store(n_shards=4, factory=shbf_factory, **kwargs):
    return ShardedFilterStore(factory, n_shards=n_shards, **kwargs)


MEMBERSHIP_FACTORIES = [
    pytest.param(lambda s: BloomFilter(m=16384, k=6), id="bf"),
    pytest.param(shbf_factory, id="shbf_m"),
    pytest.param(lambda s: CountingShiftingBloomFilter(m=16384, k=8),
                 id="cshbf_m"),
    pytest.param(lambda s: OneMemoryBloomFilter(m=16384, k=8),
                 id="one_mem_bf"),
]


class TestScalarBatchEquivalence:
    @pytest.mark.parametrize("factory", MEMBERSHIP_FACTORIES)
    def test_store_batch_equals_store_scalar(self, factory):
        batch = make_store(factory=factory)
        scalar = make_store(factory=factory)
        batch.add_batch(MEMBERS)
        for element in MEMBERS:
            scalar.add(element)
        for ours, theirs in zip(batch.shards, scalar.shards):
            assert ours.bits.to_bytes() == theirs.bits.to_bytes()
        assert batch.n_items == scalar.n_items == len(MEMBERS)
        assert batch.memory.stats == scalar.memory.stats

        verdicts = batch.query_batch(MIXED)
        assert isinstance(verdicts, np.ndarray)
        assert verdicts.tolist() == [scalar.query(q) for q in MIXED]
        assert batch.memory.stats == scalar.memory.stats

    def test_no_false_negatives_and_contains(self):
        store = make_store()
        store.add_batch(MEMBERS)
        assert store.query_batch(MEMBERS).all()
        assert MEMBERS[0] in store
        assert store.query_batch(ABSENT).mean() < 0.01

    def test_empty_batches_are_noops(self):
        store = make_store()
        store.add_batch([])
        assert store.n_items == 0
        before = store.memory.stats
        assert store.query_batch([]).shape == (0,)
        assert store.memory.stats == before

    def test_update_routes_scalars(self):
        store = make_store()
        store.update(MEMBERS[:50])
        assert store.n_items == 50
        assert all(store.query(e) for e in MEMBERS[:50])


class TestWorkerFanout:
    def test_threaded_dispatch_matches_serial(self):
        serial = make_store()
        threaded = make_store(max_workers=4)
        serial.add_batch(MEMBERS)
        threaded.add_batch(MEMBERS)
        for ours, theirs in zip(serial.shards, threaded.shards):
            assert ours.bits.to_bytes() == theirs.bits.to_bytes()
        assert (threaded.query_batch(MIXED)
                == serial.query_batch(MIXED)).all()
        assert threaded.memory.stats == serial.memory.stats


class TestConstruction:
    def test_router_shard_count_must_match(self):
        with pytest.raises(ConfigurationError):
            ShardedFilterStore(
                shbf_factory, n_shards=4, router=ShardRouter(3))

    def test_single_shard_store_degenerates_to_one_filter(self):
        store = make_store(n_shards=1)
        solo = shbf_factory(0)
        store.add_batch(MEMBERS[:200])
        solo.add_batch(MEMBERS[:200])
        assert store.shards[0].bits.to_bytes() == solo.bits.to_bytes()

    def test_size_bits_sums_shards(self):
        store = make_store(n_shards=3)
        assert store.size_bits == sum(
            shard.size_bits for shard in store.shards)


class TestAccounting:
    def test_report_aggregates_per_shard_traffic(self):
        store = make_store()
        store.add_batch(MEMBERS)
        store.query_batch(MIXED)
        report = store.report()
        assert report.n_items == len(MEMBERS)
        assert len(report.shards) == 4
        assert report.total.read_words == sum(
            s.stats.read_words for s in report.shards)
        assert report.total.write_ops == sum(
            s.stats.write_ops for s in report.shards)
        assert 1.0 <= report.imbalance < 1.5

    def test_empty_store_report(self):
        report = make_store().report()
        assert report.n_items == 0
        assert report.imbalance == 0.0
        assert report.total.total_words == 0

    def test_memory_view_reset(self):
        store = make_store()
        store.add_batch(MEMBERS[:100])
        assert store.memory.stats.write_ops > 0
        store.memory.reset()
        assert store.memory.stats.total_words == 0

    def test_measure_accesses_per_query_works_on_store(self):
        """The harness metric treats a store like any filter, and at
        equal *total* bits (4 shards of m vs one filter of 4m) the
        per-query figure matches the unsharded filter: sharding
        redistributes accesses, it does not add any."""
        store = make_store()  # 4 shards of m=16384
        solo = ShiftingBloomFilter(m=4 * 16384, k=8)
        store.add_batch(MEMBERS)
        solo.add_batch(MEMBERS)
        got = measure_accesses_per_query(store, MIXED, batch_size=512)
        want = measure_accesses_per_query(solo, MIXED, batch_size=512)
        assert got == pytest.approx(want, rel=0.05)


class TestRotation:
    def test_rotate_grows_one_shard_only(self):
        store = make_store()
        store.add_batch(MEMBERS)
        others = [s for i, s in enumerate(store.shards) if i != 1]
        parts = partition_by_shard(MEMBERS, store.router)
        retired = store.rotate_shard(
            1, parts[1],
            factory=lambda s: ShiftingBloomFilter(m=65536, k=8))
        assert retired.m == 16384
        assert store.shards[1].m == 65536
        # untouched shards are the same objects, still serving
        assert [s for i, s in enumerate(store.shards) if i != 1] == others
        assert store.query_batch(MEMBERS).all()
        assert store.n_items == len(MEMBERS)

    def test_rotate_rejects_misrouted_elements(self):
        store = make_store()
        store.add_batch(MEMBERS)
        with pytest.raises(ConfigurationError, match="route"):
            store.rotate_shard(0, MEMBERS)  # spans all shards

    def test_rotate_requires_a_factory_after_restore(self):
        store = make_store()
        store.add_batch(MEMBERS[:200])
        clone = ShardedFilterStore.restore(store.snapshot())
        with pytest.raises(ConfigurationError, match="factory"):
            clone.rotate_shard(0, [])

    def test_rotate_bad_shard_id(self):
        with pytest.raises(ConfigurationError):
            make_store().rotate_shard(9, [])

    def test_rotate_counts_length_mismatch_rejected_before_rebuild(self):
        """Regression: a rebuild stream with misaligned counts must be
        refused up front (naming the shard), not partially applied."""
        store = ShardedFilterStore(
            lambda s: ShiftingMultiplicityFilter(m=16384, k=4, c_max=16),
            n_shards=4)
        counts = [(i % 16) + 1 for i in range(len(MEMBERS))]
        store.add_batch(MEMBERS, counts)
        parts = partition_by_shard(MEMBERS, store.router)
        before = store.shards[2].bits.to_bytes()
        with pytest.raises(ConfigurationError, match="shard 2"):
            store.rotate_shard(2, parts[2], counts=[1] * (len(parts[2]) - 1))
        # the refused rotation left the serving shard untouched
        assert store.shards[2].bits.to_bytes() == before

    def test_rotate_with_aligned_counts_still_works(self):
        store = ShardedFilterStore(
            lambda s: ShiftingMultiplicityFilter(m=16384, k=4, c_max=16),
            n_shards=4)
        counts = [(i % 16) + 1 for i in range(len(MEMBERS))]
        store.add_batch(MEMBERS, counts)
        parts = partition_by_shard(MEMBERS, store.router)
        by_element = dict(zip(MEMBERS, counts))
        store.rotate_shard(
            2, parts[2], counts=[by_element[e] for e in parts[2]])
        got = store.query_batch(MEMBERS)
        assert all(g >= c for g, c in zip(got.tolist(), counts))


class TestMerge:
    def test_union_merge_serves_both_catalogs(self):
        left, right = make_store(), make_store()
        left.add_batch(MEMBERS)
        right.add_batch(ABSENT)
        merged = left.merge(right)
        assert merged.query_batch(MEMBERS + ABSENT).all()
        assert merged.n_items == len(MEMBERS) + len(ABSENT)

    def test_merge_equals_direct_build(self):
        """Shard-wise union == a store built from the combined catalog."""
        left, right, direct = make_store(), make_store(), make_store()
        left.add_batch(MEMBERS)
        right.add_batch(ABSENT)
        direct.add_batch(MEMBERS + ABSENT)
        merged = left.merge(right)
        for ours, theirs in zip(merged.shards, direct.shards):
            assert ours.bits.to_bytes() == theirs.bits.to_bytes()

    def test_incompatible_router_rejected(self):
        left = make_store()
        right = ShardedFilterStore(
            shbf_factory, n_shards=4, router=ShardRouter(4, seed=99))
        with pytest.raises(ConfigurationError, match="route"):
            left.merge(right)

    def test_unsupported_shard_union_rejected(self):
        left = make_store(factory=lambda s: OneMemoryBloomFilter(
            m=16384, k=8))
        right = make_store(factory=lambda s: OneMemoryBloomFilter(
            m=16384, k=8))
        with pytest.raises(UnsupportedOperationError):
            left.merge(right)


class TestTypedShards:
    def test_multiplicity_store_routes_counts(self):
        store = ShardedFilterStore(
            lambda s: ShiftingMultiplicityFilter(m=16384, k=4, c_max=16),
            n_shards=3)
        counts = [(i % 16) + 1 for i in range(len(MEMBERS))]
        store.add_batch(MEMBERS, counts)
        scalar = ShardedFilterStore(
            lambda s: ShiftingMultiplicityFilter(m=16384, k=4, c_max=16),
            n_shards=3)
        for element, count in zip(MEMBERS, counts):
            scalar.add(element, count)
        for ours, theirs in zip(store.shards, scalar.shards):
            assert ours.bits.to_bytes() == theirs.bits.to_bytes()
        got = store.query_batch(MEMBERS)
        assert got.dtype == np.int64
        # reported counts are never below the truth (§5.2 guarantee)
        assert all(g >= c for g, c in zip(got.tolist(), counts))

    def test_add_batch_counts_length_mismatch(self):
        store = ShardedFilterStore(
            lambda s: ShiftingMultiplicityFilter(m=4096, k=4, c_max=8),
            n_shards=2)
        with pytest.raises(ConfigurationError):
            store.add_batch(MEMBERS[:3], [1, 2])

    def test_association_store_build_and_query(self):
        from repro.core import Association

        store = ShardedFilterStore(
            lambda s: ShiftingAssociationFilter(m=16384, k=8), n_shards=3)
        s1, s2 = MEMBERS[:800], MEMBERS[400:1200]
        store.build_batch(s1, s2)
        answers = store.query_batch(MEMBERS[:1200])
        assert isinstance(answers, list)
        # the true region always survives, sharded or not (§4.2)
        for i, answer in enumerate(answers):
            if i < 400:
                assert Association.S1_ONLY in answer.candidates
            elif i < 800:
                assert Association.BOTH in answer.candidates
            else:
                assert Association.S2_ONLY in answer.candidates


class TestWorkloadHelpers:
    def test_partition_by_shard_matches_router(self):
        router = ShardRouter(4)
        parts = partition_by_shard(MEMBERS, router)
        assert sum(len(p) for p in parts) == len(MEMBERS)
        for shard_id, part in enumerate(parts):
            assert all(router.route(e) == shard_id for e in part[:20])

    def test_shard_load_factors(self):
        router = ShardRouter(4)
        loads = shard_load_factors(MEMBERS, router, capacity_per_shard=500)
        assert loads.shape == (4,)
        assert loads.sum() == pytest.approx(len(MEMBERS) / 500)


class TestShardPrimitives:
    """replace_shard / merge_shard: the replication layer's apply verbs."""

    def test_replace_shard_swaps_and_returns_retired(self):
        store = make_store()
        store.add_batch(MEMBERS)
        fresh = ShiftingBloomFilter(m=16384, k=8)
        retired = store.replace_shard(1, fresh)
        assert store.shards[1] is fresh
        assert retired.n_items > 0
        with pytest.raises(ConfigurationError, match="out of range"):
            store.replace_shard(9, fresh)

    def test_merge_shard_unions_in_place(self):
        store, donor = make_store(), make_store()
        store.add_batch(MEMBERS)
        donor.add_batch(ABSENT)
        for shard_id in range(store.n_shards):
            store.merge_shard(shard_id, donor.shards[shard_id])
        assert store.query_batch(MEMBERS + ABSENT).all()
        direct = make_store()
        direct.add_batch(MEMBERS)
        direct.add_batch(ABSENT)
        for ours, theirs in zip(store.shards, direct.shards):
            assert ours.bits.to_bytes() == theirs.bits.to_bytes()

    def test_merge_shard_geometry_mismatch_surfaces(self):
        store = make_store()
        bigger = ShiftingBloomFilter(m=32768, k=8)
        with pytest.raises(ConfigurationError, match="incompatible"):
            store.merge_shard(0, bigger)

    def test_merge_shard_without_union_rejected(self):
        store = make_store(factory=lambda s: ShiftingMultiplicityFilter(
            m=16384, k=8, c_max=8))
        with pytest.raises(UnsupportedOperationError, match="union"):
            store.merge_shard(0, ShiftingMultiplicityFilter(
                m=16384, k=8, c_max=8))
        with pytest.raises(ConfigurationError, match="out of range"):
            store.merge_shard(-1, None)
