"""Export → shared segment → attach: the zero-copy snapshot contract.

These tests pin the three guarantees the multi-process serving mode
stands on:

* **bit identity** — an attached generation answers ``query_batch``
  exactly like the exporter did at publish time, false positives
  included, across every snapshot-capable filter type and the sharded
  store;
* **immutability** — every write path into an attached target fails
  (including the numpy ``ufunc.at`` kernels, which ignore the
  ``writeable`` flag and need an explicit guard); and
* **materialize** — a writable deep copy round-trips out of a
  generation, which is what a warm-restarting writer does.
"""

from __future__ import annotations

import pytest

from repro.baselines.bloom import BloomFilter
from repro.baselines.one_mem_bloom import OneMemoryBloomFilter
from repro.core.membership import ShiftingBloomFilter
from repro.errors import ConfigurationError, UnsupportedSnapshotError
from repro.hashing.family import make_family
from repro.store import ShardedFilterStore
from repro.store import shm as store_shm

from tests.conftest import make_elements

MEMBERS = make_elements(400, "member")
ABSENT = make_elements(4000, "absent")


def snapshot_roundtrip(target):
    """Export *target* into a bytearray and attach it back."""
    payload = bytearray(store_shm.snapshot_nbytes(target))
    meta = store_shm.export_into(target, payload)
    return store_shm.attach_target(meta, payload)


def build_targets():
    family = make_family("vector64", seed=7)
    single = ShiftingBloomFilter(m=8192, k=4, family=family)
    store = ShardedFilterStore(
        lambda shard: ShiftingBloomFilter(m=4096, k=4, family=family),
        n_shards=3)
    one_mem = OneMemoryBloomFilter(m=8192, k=4, family=family)
    plain = BloomFilter(m=8192, k=4, family=family)
    return [single, store, one_mem, plain]


class TestBitIdentity:
    @pytest.mark.parametrize("target", build_targets(),
                             ids=lambda t: type(t).__name__)
    def test_attached_verdicts_are_bit_identical(self, target):
        """Same verdicts on members AND absents — FPs must match too."""
        target.add_batch(MEMBERS)
        attached = snapshot_roundtrip(target)
        probe = MEMBERS + ABSENT
        assert list(attached.query_batch(probe)) == \
            list(target.query_batch(probe))
        assert attached.n_items == target.n_items

    def test_snapshot_is_point_in_time(self):
        """Writes after export do not leak into the attached image."""
        target = ShiftingBloomFilter(m=8192, k=4)
        target.add_batch(MEMBERS[:100])
        attached = snapshot_roundtrip(target)
        late = b"added-after-export"
        target.add(late)
        assert target.query(late)
        assert not attached.query(late)

    def test_store_attach_routes_like_the_original(self):
        """Shard routing survives: per-shard n_items line up exactly."""
        store = ShardedFilterStore(
            lambda shard: ShiftingBloomFilter(m=4096, k=4), n_shards=4)
        store.add_batch(MEMBERS)
        attached = snapshot_roundtrip(store)
        assert [s.n_items for s in attached.shards] == \
            [s.n_items for s in store.shards]


class TestImmutability:
    def _attached_filter(self):
        target = ShiftingBloomFilter(m=8192, k=4)
        target.add_batch(MEMBERS[:50])
        return snapshot_roundtrip(target)

    def test_batch_write_kernels_are_guarded(self):
        """The ufunc.at kernels must refuse read-only buffers.

        numpy's ``ufunc.at`` writes through views that scalar writes
        reject, so the guard is explicit in ``set_bits_batch`` /
        ``set_offsets_batch`` — and the bytes must be untouched after
        the refusal.
        """
        attached = self._attached_filter()
        before = attached.bits.to_bytes()
        with pytest.raises(TypeError, match="read-only"):
            attached.add_batch([b"sneaky-write"])
        assert attached.bits.to_bytes() == before

    def test_attached_store_rejects_writes_on_every_shard(self):
        store = ShardedFilterStore(
            lambda shard: ShiftingBloomFilter(m=4096, k=4), n_shards=3)
        store.add_batch(MEMBERS[:50])
        attached = snapshot_roundtrip(store)
        with pytest.raises(TypeError, match="read-only"):
            attached.add_batch(make_elements(64, "late"))

    def test_export_needs_a_writable_buffer(self):
        target = ShiftingBloomFilter(m=1024, k=4)
        frozen = memoryview(
            bytearray(store_shm.snapshot_nbytes(target))).toreadonly()
        with pytest.raises(ConfigurationError):
            store_shm.export_into(target, frozen)

    def test_export_rejects_short_buffers(self):
        target = ShiftingBloomFilter(m=8192, k=4)
        with pytest.raises(ConfigurationError):
            store_shm.export_into(
                target, bytearray(store_shm.snapshot_nbytes(target) - 1))

    def test_counting_filters_cannot_export(self):
        from repro.baselines.counting_bloom import CountingBloomFilter

        with pytest.raises(UnsupportedSnapshotError):
            store_shm.snapshot_meta(CountingBloomFilter(m=1024, k=4))


class TestMaterialize:
    def test_materialized_copy_is_writable_and_independent(self):
        """The warm-restart path: attach → materialize → keep writing."""
        target = ShiftingBloomFilter(m=8192, k=4)
        target.add_batch(MEMBERS[:100])
        attached = snapshot_roundtrip(target)
        writable = store_shm.materialize(attached)
        assert list(writable.query_batch(MEMBERS[:100])) == [True] * 100
        writable.add(b"post-recovery-write")
        assert writable.query(b"post-recovery-write")
        assert not attached.query(b"post-recovery-write")
        assert writable.n_items == target.n_items + 1

    def test_materialized_store_round_trips(self):
        store = ShardedFilterStore(
            lambda shard: ShiftingBloomFilter(m=4096, k=4), n_shards=3)
        store.add_batch(MEMBERS)
        writable = store_shm.materialize(snapshot_roundtrip(store))
        probe = MEMBERS + ABSENT[:500]
        assert list(writable.query_batch(probe)) == \
            list(store.query_batch(probe))
        writable.add_batch(make_elements(10, "fresh"))
        assert writable.n_items == store.n_items + 10


class TestMetaValidation:
    def test_geometry_mismatch_is_refused(self):
        target = ShiftingBloomFilter(m=8192, k=4)
        payload = bytearray(store_shm.snapshot_nbytes(target))
        meta = store_shm.export_into(target, payload)
        meta["shards"][0]["m"] = 4096  # lies about the geometry
        with pytest.raises(ConfigurationError):
            store_shm.attach_target(meta, payload)

    def test_unknown_family_is_refused(self):
        target = ShiftingBloomFilter(m=1024, k=4)
        payload = bytearray(store_shm.snapshot_nbytes(target))
        meta = store_shm.export_into(target, payload)
        meta["shards"][0]["family"] = "no-such-family"
        with pytest.raises(ConfigurationError):
            store_shm.attach_target(meta, payload)

    def test_unknown_kind_and_type_are_refused(self):
        target = ShiftingBloomFilter(m=1024, k=4)
        payload = bytearray(store_shm.snapshot_nbytes(target))
        meta = store_shm.export_into(target, payload)
        bad_kind = dict(meta, kind="exotic")
        with pytest.raises(ConfigurationError):
            store_shm.attach_target(bad_kind, payload)
        meta["shards"][0]["type"] = "exotic"
        with pytest.raises(ConfigurationError):
            store_shm.attach_target(meta, payload)
