"""Property suite for the seqlock generation header.

The claim under test is absolute: **a reader never observes a torn
announcement**.  Hypothesis drives randomized interleavings of reader
attempts between every atomic writer store (``publish_steps`` exposes
the five-store publish sequence exactly so these tests can pause the
writer mid-payload, where the bytes really are spliced), and asserts
each read returns either nothing or the complete payload of a fully
finished publish.

The negative control keeps the harness honest: a deliberately broken
header that collapses the double stamp into one trailing write *is*
caught returning spliced bytes under the same checker.  If the real
protocol ever regressed to single-stamp semantics, this file would
fail loudly rather than vacuously pass.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.mpserve.genheader import HEADER_BYTES, GenerationHeader


def make_payload(generation: int, width: int = 48) -> bytes:
    """Distinct, self-describing payload bytes for one generation.

    JSON like the real announcement, padded so the two torn halves are
    long enough to actually differ between generations.
    """
    body = json.dumps({
        "segment": "fleet-g%d" % generation,
        "generation": generation,
        "pad": "x" * width,
    }, sort_keys=True)
    return body.encode("utf-8")


def check_read(result, completed: int) -> None:
    """The torn-read-proof invariant for one read attempt.

    After *completed* fully finished publishes (generations 1..n), a
    read may abstain (``None``) but a returned value must be **exactly**
    the latest completed announcement — never a splice of two, never a
    half-written length, never a not-yet-announced generation.
    """
    if result is None:
        return
    generation, payload = result
    assert generation == completed, (
        "reader returned generation %d but %d publishes completed"
        % (generation, completed))
    assert payload == make_payload(completed), (
        "reader returned spliced payload for generation %d" % completed)


class TestInterleavedPublishes:
    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_reader_never_observes_a_torn_generation(self, data):
        """Readers interleaved inside every store of every publish."""
        header = GenerationHeader(bytearray(HEADER_BYTES))
        n_publishes = data.draw(st.integers(1, 4), label="n_publishes")
        completed = 0
        for generation in range(1, n_publishes + 1):
            steps = header.publish_steps(
                generation, make_payload(generation))
            for label, step in steps:
                # Read attempts *before* this store lands...
                for _ in range(data.draw(
                        st.integers(0, 2), label="reads@%s" % label)):
                    check_read(header.try_read(), completed)
                step()
            completed = generation
            # ...and at the quiescent point the latest publish must be
            # visible: abstaining forever would be a livelock, not
            # safety.
            assert header.try_read() == (
                completed, make_payload(completed))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(1, 4), st.integers(0, 4))
    def test_every_mid_publish_prefix_is_rejected(
            self, first_steps, second_steps):
        """Exhaustive prefixes: any partial publish is invisible.

        Run *first_steps* stores of publish 1 (possibly none), then —
        if publish 1 finished — *second_steps* stores of publish 2, and
        assert the read matches only what fully completed.
        """
        header = GenerationHeader(bytearray(HEADER_BYTES))
        steps1 = header.publish_steps(1, make_payload(1))
        for _label, step in steps1[:first_steps]:
            step()
        if first_steps < len(steps1):
            assert header.try_read() is None
            return
        steps2 = header.publish_steps(2, make_payload(2))
        for _label, step in steps2[:second_steps]:
            step()
        completed = 2 if second_steps == len(steps2) else 1
        result = header.try_read()
        if second_steps == 0 or completed == 2:
            # No in-flight stores: the latest publish must be readable.
            assert result == (completed, make_payload(completed))
        else:
            # Mid-publish 2: the back stamp lands first, so every
            # partial prefix disagrees with front — abstain, always.
            assert result is None


class BrokenSingleStampHeader(GenerationHeader):
    """The bug the suite must catch: one stamp instead of two.

    This header writes the payload first and then announces with a
    *single* trailing store that sets both stamps at once.  The stamps
    therefore always agree — the torn window between payload stores is
    invisible to the ``front == back`` check, and a reader paused
    mid-payload of publish g+1 happily returns generation g's number
    glued to half of g+1's bytes.
    """

    def publish_steps(self, generation, payload):
        steps = dict(super().publish_steps(generation, payload))

        def write_both_stamps():
            steps["back"]()
            steps["front"]()

        return [
            ("len", steps["len"]),
            ("payload_lo", steps["payload_lo"]),
            ("payload_hi", steps["payload_hi"]),
            ("both_stamps", write_both_stamps),
        ]


class TestNegativeControl:
    def test_single_stamp_header_is_caught_returning_a_splice(self):
        """The checker rejects the broken protocol — harness is live.

        Deterministic witness interleaving: finish publish 1, run
        publish 2 up to (and including) its first payload store, then
        read.  The double-stamp header abstains; the single-stamp
        header returns generation 1 with generation 2's first half
        spliced in, which ``check_read`` must flag.
        """
        header = BrokenSingleStampHeader(bytearray(HEADER_BYTES))
        for _label, step in header.publish_steps(1, make_payload(1)):
            step()
        steps2 = dict(header.publish_steps(2, make_payload(2)))
        steps2["len"]()
        steps2["payload_lo"]()
        result = header.try_read()
        assert result is not None, (
            "single-stamp header unexpectedly abstained; the negative "
            "control no longer exercises the torn window")
        with pytest.raises(AssertionError):
            check_read(result, completed=1)

    def test_real_header_abstains_on_the_same_interleaving(self):
        """The same witness schedule against the real protocol: safe."""
        header = GenerationHeader(bytearray(HEADER_BYTES))
        for _label, step in header.publish_steps(1, make_payload(1)):
            step()
        steps2 = dict(header.publish_steps(2, make_payload(2)))
        steps2["back"]()
        steps2["len"]()
        steps2["payload_lo"]()
        assert header.try_read() is None


class TestHeaderEdges:
    def test_unpublished_header_reads_none_and_peeks_zero(self):
        header = GenerationHeader(bytearray(HEADER_BYTES))
        assert header.peek_generation() == 0
        assert header.try_read() is None

    def test_torn_length_is_rejected(self):
        """A length beyond capacity can only be a torn store: abstain."""
        buf = bytearray(HEADER_BYTES)
        header = GenerationHeader(buf)
        header.publish(1, b"ok")
        buf[8:12] = (HEADER_BYTES * 2).to_bytes(4, "little")
        assert header.try_read() is None

    def test_read_raises_after_retry_budget_on_wedged_header(self):
        """A writer dead mid-publish is an operational fault, not a spin."""
        header = GenerationHeader(bytearray(HEADER_BYTES))
        steps = dict(header.publish_steps(1, make_payload(1)))
        steps["back"]()  # wedged: back stamped, front never arrives
        retries = []
        with pytest.raises(ProtocolError):
            header.read(retries=3, delay_s=0,
                        on_retry=lambda: retries.append(1))
        assert len(retries) == 4  # budget + the final give-up attempt

    def test_payload_capacity_and_generation_validation(self):
        header = GenerationHeader(bytearray(HEADER_BYTES))
        with pytest.raises(ConfigurationError):
            header.publish(0, b"zero is reserved")
        with pytest.raises(ConfigurationError):
            header.publish(1, b"x" * (header.payload_capacity + 1))
        with pytest.raises(ConfigurationError):
            GenerationHeader(bytearray(HEADER_BYTES - 1))

    def test_readonly_buffer_serves_readers_but_not_writers(self):
        buf = bytearray(HEADER_BYTES)
        GenerationHeader(buf).publish(3, make_payload(3))
        reader = GenerationHeader(memoryview(buf).toreadonly())
        assert reader.read(retries=0) == (3, make_payload(3))
        with pytest.raises(TypeError):
            reader.publish(4, make_payload(4))
