"""Cross-process bit-identity drill: the fleet vs a fault-free reference.

A real supervisor spawns one writer plus four read workers; the test
drives mixed reads and writes through :class:`ServiceClient` against
the shared serve port and replays **every** verdict against an
in-process reference built with identical parameters.  Because the
filters are deterministic, "equivalent" means *bit-identical* — the
fleet must agree with the reference on false positives too, not just
on members.  Writes route worker → writer; the drill barriers on the
writer's ``pending_writes == 0`` (publish is synchronous on the writer
loop, so that statement is exact) before reading them back.

The second scenario SIGKILLs a worker mid-stream and requires the
fleet to keep answering correctly while the supervisor restarts it —
the client rides over the dead connection by reconnecting, and not one
verdict may differ from the reference.
"""

from __future__ import annotations

import asyncio
import os
import signal

import pytest

from repro.mpserve.supervisor import MultiWorkerSupervisor, SupervisorConfig
from repro.mpserve.writer import build_target
from repro.service.client import ServiceClient

from tests.conftest import make_elements

HOST = "127.0.0.1"
STORE = dict(shards=4, m=65536, k=8, family="vector64")


def fleet_config(**overrides) -> SupervisorConfig:
    params = dict(
        workers=4, host=HOST, shards=STORE["shards"], m=STORE["m"],
        k=STORE["k"], family=STORE["family"], publish_interval_ms=5.0,
        restart_backoff_s=0.1)
    params.update(overrides)
    return SupervisorConfig(**params)


def reference_target():
    return build_target(STORE["shards"], STORE["m"], STORE["k"],
                        STORE["family"])


async def wait_published(sup: MultiWorkerSupervisor,
                         timeout_s: float = 10.0) -> None:
    """Barrier: every acknowledged write is in a published generation.

    ``WriterService.publish_now`` clears ``pending_writes`` in the same
    synchronous step that publishes, so "pending_writes == 0" read off
    the writer's own STATS is an exact statement, not a heuristic.
    """
    deadline = asyncio.get_running_loop().time() + timeout_s
    while True:
        try:
            client = await ServiceClient.connect(
                HOST, sup.writer_port, connect_timeout=2.0,
                op_timeout=5.0)
            try:
                stats = await client.stats()
            finally:
                await client.close()
            if stats["mpserve"]["pending_writes"] == 0:
                return
        except (ConnectionError, OSError):
            pass  # writer mid-restart; retry until the deadline
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("writes never drained into a publish")
        await asyncio.sleep(0.02)


async def query_riding_over_crashes(sup, client, batch):
    """Query, reconnecting if the serving worker just died."""
    for _attempt in range(20):
        if client is None:
            try:
                client = await ServiceClient.connect(
                    HOST, sup.serve_port, connect_timeout=2.0,
                    op_timeout=5.0)
            except (ConnectionError, OSError):
                await asyncio.sleep(0.1)
                continue
        try:
            return await client.query(batch), client
        except (ConnectionError, OSError):
            await client.close()
            client = None
    raise AssertionError("no worker answered within 20 reconnects")


class TestFleetEquivalence:
    def test_mixed_stream_is_bit_identical_to_reference(self):
        async def drill():
            sup = MultiWorkerSupervisor(fleet_config())
            reference = reference_target()
            wrong = 0
            try:
                await sup.start()
                clients = [
                    await ServiceClient.connect(HOST, sup.serve_port)
                    for _ in range(4)]
                writes = [make_elements(80, "round%d" % r)
                          for r in range(5)]
                absent = make_elements(600, "never-added")
                written: list[bytes] = []
                for round_no, batch in enumerate(writes):
                    acked = await clients[round_no % 4].add(batch)
                    assert acked == len(batch)
                    reference.add_batch(batch)
                    written.extend(batch)
                    await wait_published(sup)
                    # Mixed read-back: everything written so far, a
                    # slice of never-written probes (FP-sensitive), and
                    # a preview of *future* writes which must not leak.
                    future = [e for w in writes[round_no + 1:]
                              for e in w]
                    probe = written + absent[:200] + future
                    expected = list(reference.query_batch(probe))
                    for client in clients:
                        verdicts = await client.query(probe)
                        wrong += sum(
                            1 for got, want in zip(verdicts, expected)
                            if got != want)
                assert wrong == 0, (
                    "%d verdicts differ from the fault-free reference"
                    % wrong)
                # Exact accounting: every forwarded ADD reached the
                # writer exactly once.
                writer = await ServiceClient.connect(
                    HOST, sup.writer_port)
                stats = await writer.stats()
                await writer.close()
                assert stats["n_items"] == reference.n_items
                for client in clients:
                    await client.close()
            finally:
                await sup.stop()

        asyncio.run(drill())

    def test_worker_kill9_mid_stream_recovers_without_wrong_answers(self):
        async def drill():
            sup = MultiWorkerSupervisor(fleet_config())
            reference = reference_target()
            try:
                await sup.start()
                members = make_elements(150, "survivor")
                absent = make_elements(300, "ghost")
                client = await ServiceClient.connect(
                    HOST, sup.serve_port)
                assert await client.add(members) == len(members)
                reference.add_batch(members)
                await wait_published(sup)
                probe = members + absent
                expected = list(reference.query_batch(probe))

                victim = sup.stats()["workers"][0]
                os.kill(victim["pid"], signal.SIGKILL)

                # Mid-crash stream: every answered query must still be
                # bit-identical; connection failures are ridden over.
                for _ in range(20):
                    verdicts, client = await query_riding_over_crashes(
                        sup, client, probe)
                    assert list(verdicts) == expected
                    await asyncio.sleep(0.05)

                deadline = asyncio.get_running_loop().time() + 30.0
                while sup.stats()["workers_alive"] < 4:
                    assert (asyncio.get_running_loop().time()
                            < deadline), "killed worker never restarted"
                    await asyncio.sleep(0.1)
                stats = sup.stats()
                assert stats["workers"][0]["restarts"] >= 1
                assert stats["workers"][0]["pid"] != victim["pid"]
                # The replacement answers identically too.
                verdicts, client = await query_riding_over_crashes(
                    sup, client, probe)
                assert list(verdicts) == expected
                if client is not None:
                    await client.close()
            finally:
                await sup.stop()

        asyncio.run(drill())
