"""ChaosProxy behaviour against a live FilterService.

Each test runs one ``asyncio.run`` (no pytest-asyncio in the
toolchain): service on an ephemeral port, proxy in front of it,
client pointed at the proxy.
"""

import asyncio
import time

import pytest

from repro.chaos.faults import FaultSchedule, FaultSpec
from repro.chaos.proxy import ChaosProxy
from repro.core.membership import ShiftingBloomFilter
from repro.errors import DeadlineExceededError, ReproError
from repro.service.client import ServiceClient
from repro.service.server import FilterService


def proxy_run(scenario, specs=(), seed=0, op_timeout=0.4):
    """Run ``scenario(client, proxy, service)`` through a fault proxy."""

    async def main():
        service = FilterService(ShiftingBloomFilter(m=4096, k=4))
        server = await service.start(port=0)
        port = server.sockets[0].getsockname()[1]
        proxy = ChaosProxy("127.0.0.1", port,
                           FaultSchedule(specs, seed=seed))
        await proxy.start()
        client = await ServiceClient.connect(
            "127.0.0.1", proxy.port, op_timeout=op_timeout)
        try:
            return await scenario(client, proxy, service)
        finally:
            await client.close()
            await proxy.close()
            server.close()
            await server.wait_closed()

    return asyncio.run(main())


class TestTransparentRelay:
    def test_roundtrip_without_faults(self):
        async def scenario(client, proxy, service):
            assert await client.add([b"a", b"b"]) == 2
            verdicts = await client.query([b"a", b"b", b"zz-absent"])
            assert list(verdicts[:2]) == [True, True]
            assert (await client.stats())["n_items"] == 2
            return proxy.report()

        report = proxy_run(scenario)
        assert report["connections_opened"] == 1
        # 3 requests + 3 responses relayed, nothing dropped.
        assert report["frames_forwarded"] == 6
        assert report["frames_dropped"] == 0


class TestLatency:
    def test_latency_fault_delays_matching_op_only(self):
        specs = [FaultSpec(kind="latency", direction="s2c", op="QUERY",
                           delay_ms=120, count=1)]

        async def scenario(client, proxy, service):
            await client.add([b"a"])  # ADD unaffected
            start = time.monotonic()
            await client.query([b"a"])
            slow = time.monotonic() - start
            start = time.monotonic()
            await client.query([b"a"])  # count=1 exhausted
            fast = time.monotonic() - start
            return slow, fast

        slow, fast = proxy_run(scenario, specs)
        assert slow >= 0.110
        assert fast < 0.110


class TestStall:
    def test_stall_trips_client_deadline(self):
        specs = [FaultSpec(kind="stall", direction="s2c", op="QUERY")]

        async def scenario(client, proxy, service):
            await client.add([b"a"])
            with pytest.raises(DeadlineExceededError):
                await client.query([b"a"])
            return proxy.report()

        report = proxy_run(scenario, specs)
        assert report["frames_dropped"] >= 1

    def test_stall_silences_direction_for_good(self):
        specs = [FaultSpec(kind="stall", direction="s2c", op="QUERY")]

        async def scenario(client, proxy, service):
            await client.add([b"a"])
            with pytest.raises(DeadlineExceededError):
                await client.query([b"a"])
            # Same connection: later responses stay swallowed too.
            with pytest.raises(DeadlineExceededError):
                await client.ping(timeout=0.2)

        proxy_run(scenario, specs)


class TestReset:
    def test_reset_aborts_the_connection(self):
        specs = [FaultSpec(kind="reset", direction="c2s", op="QUERY")]

        async def scenario(client, proxy, service):
            await client.add([b"a"])
            with pytest.raises((ConnectionError, OSError, ReproError)):
                await client.query([b"a"])
            return proxy.report()

        report = proxy_run(scenario, specs)
        assert report["connections_aborted"] == 1

    def test_fresh_connection_is_unaffected(self):
        specs = [FaultSpec(kind="reset", direction="c2s", op="QUERY")]

        async def scenario(client, proxy, service):
            await client.add([b"a"])
            with pytest.raises((ConnectionError, OSError, ReproError)):
                await client.query([b"a"])
            retry = await ServiceClient.connect(
                "127.0.0.1", proxy.port, op_timeout=0.4)
            try:
                verdicts = await retry.query([b"a"])
                assert bool(verdicts[0])
            finally:
                await retry.close()

        proxy_run(scenario, specs)


class TestCorrupt:
    def test_corrupted_request_rejected_not_misapplied(self):
        # Flipping payload bytes of an ADD must never add the wrong
        # element silently *and* succeed: the server either rejects the
        # mangled frame or applies a decodable (mutated) batch; the
        # original element must not appear.
        specs = [FaultSpec(kind="corrupt", direction="c2s", op="ADD",
                           flip_bytes=4)]

        async def scenario(client, proxy, service):
            try:
                await client.add([b"precious-element"])
            except (ConnectionError, OSError, ReproError):
                pass
            return bool(service.target.query(b"precious-element"))

        assert proxy_run(scenario, specs) is False


class TestTruncate:
    def test_truncated_frame_kills_connection_server_survives(self):
        specs = [FaultSpec(kind="truncate", direction="c2s", op="ADD")]

        async def scenario(client, proxy, service):
            with pytest.raises((ConnectionError, OSError, ReproError,
                                DeadlineExceededError)):
                await client.add([b"a"])
            # Server-side: the torn connection was dropped with a
            # protocol error, and fresh clients are served normally.
            fresh = await ServiceClient.connect(
                "127.0.0.1", proxy.port, op_timeout=0.4)
            try:
                assert await fresh.add([b"b"]) == 1
            finally:
                await fresh.close()
            return service.counters.protocol_errors

        assert proxy_run(scenario, specs) >= 1


class TestBlackhole:
    def test_blackhole_swallows_both_directions(self):
        specs = [FaultSpec(kind="blackhole", direction="c2s", op="PING")]

        async def scenario(client, proxy, service):
            with pytest.raises(DeadlineExceededError):
                await client.ping()
            with pytest.raises(DeadlineExceededError):
                await client.ping(timeout=0.2)

        proxy_run(scenario, specs)


class TestThrottle:
    def test_throttle_paces_forwarding(self):
        # 4 KiB/s on the response direction: even a tiny response takes
        # at least one full chunk interval.
        specs = [FaultSpec(kind="throttle", direction="s2c", op="PING",
                           rate_kbps=4, count=1)]

        async def scenario(client, proxy, service):
            start = time.monotonic()
            await client.ping(timeout=5.0)
            return time.monotonic() - start

        assert proxy_run(scenario, specs, op_timeout=5.0) >= 0.2
