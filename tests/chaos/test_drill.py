"""The chaos drill invariant — the acceptance test of the chaos layer.

A seeded schedule of latency spikes, one response stall and one
primary-connection reset is injected into a replicated pair while a
FailoverClient runs a seeded write/read workload.  The drill must
complete with zero wrong verdicts, zero duplicate-applied writes
(store item counts match a fault-free reference replay) and no op
exceeding its deadline by more than the failover budget.
"""

import asyncio

from repro.chaos.drill import DrillConfig, run_drill
from repro.chaos.faults import FaultSchedule, FaultSpec


def run(config):
    return asyncio.run(run_drill(config))


class TestDefaultDrill:
    def test_invariants_hold_under_the_default_storm(self):
        report = run(DrillConfig(n=200, per_batch=40, seed=7))
        assert report["ok"], report
        assert report["invariants"] == {
            "zero_wrong_verdicts": True,
            "zero_duplicate_writes": True,
            "no_op_over_budget": True,
        }
        assert report["totals"]["wrong_verdicts"] == 0
        assert report["totals"]["duplicate_writes"] == 0
        assert (report["totals"]["slowest_op_s"]
                <= report["totals"]["op_budget_s"])

    def test_faults_actually_fired(self):
        report = run(DrillConfig(n=200, per_batch=40, seed=7))
        fired = {entry["kind"]: entry["fired"]
                 for entry in report["proxy"]["injected"]}
        assert fired["latency"] >= 1
        assert fired["stall"] == 1
        assert fired["reset"] == 1
        # The stall forced a missed deadline and a failover; the reset
        # forced a retry — the hardening actually did the surviving.
        assert report["client"]["deadline_timeouts"] >= 1
        assert report["client"]["failovers"] >= 1
        assert report["client"]["retries"] >= 1

    def test_drill_is_seed_deterministic(self):
        a = run(DrillConfig(n=120, per_batch=40, seed=3))
        b = run(DrillConfig(n=120, per_batch=40, seed=3))
        assert a["ok"] and b["ok"]
        assert a["proxy"]["injected"] == b["proxy"]["injected"]
        assert (a["totals"]["elements_written"]
                == b["totals"]["elements_written"])


class TestCustomSchedule:
    def test_faultless_schedule_is_a_clean_run(self):
        report = run(DrillConfig(
            n=120, per_batch=40, seed=1, faults=FaultSchedule()))
        assert report["ok"]
        assert report["client"]["failovers"] == 0
        assert report["client"]["deadline_timeouts"] == 0
        assert report["proxy"]["frames_dropped"] == 0

    def test_write_reset_storm_never_double_applies(self):
        # Two loss modes for idempotent writes: the *request* lost
        # before the server saw it (c2s reset), and — the ambiguous
        # case dedup exists for — the *ack* lost after the server
        # applied the write (s2c reset).  Both retries must reuse the
        # original key and the write must apply exactly once.
        faults = FaultSchedule([
            FaultSpec(kind="reset", direction="s2c", op="ADD_IDEM",
                      count=1),
            FaultSpec(kind="reset", direction="c2s", op="ADD_IDEM",
                      after=2, count=1),
        ], seed=0)
        report = run(DrillConfig(
            n=160, per_batch=40, seed=5, faults=faults))
        assert report["ok"], report
        assert report["totals"]["duplicate_writes"] == 0
        assert report["client"]["retries"] >= 1
        # The lost-ack retry was answered from the dedup window.
        assert report["server"]["primary"]["dedup_hits"] >= 1
