"""Fault spec parsing, schedule matching, and replay determinism."""

import pytest

from repro.chaos.faults import (
    FaultSchedule,
    FaultSpec,
    default_drill_schedule,
)
from repro.errors import ConfigurationError
from repro.service import protocol


class TestFaultSpec:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse(
            "latency:delay_ms=30,jitter_ms=20,op=QUERY,count=5,after=2")
        assert spec.kind == "latency"
        assert spec.delay_ms == 30.0
        assert spec.jitter_ms == 20.0
        assert spec.op == "QUERY"
        assert spec.op_code == protocol.OP_QUERY
        assert spec.count == 5
        assert spec.after == 2

    def test_parse_defaults(self):
        spec = FaultSpec.parse("reset")
        assert spec.kind == "reset"
        assert spec.direction == "both"
        assert spec.op is None and spec.op_code is None
        assert spec.after == 0 and spec.count == 1

    def test_parse_unlimited_count(self):
        spec = FaultSpec.parse("latency:delay_ms=1,count=none")
        assert spec.count is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultSpec.parse("explode:delay_ms=1")

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError, match="wire op"):
            FaultSpec(kind="reset", op="NOPE")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="option"):
            FaultSpec.parse("reset:frobnicate=1")

    def test_non_numeric_option_rejected(self):
        with pytest.raises(ConfigurationError, match="not a number"):
            FaultSpec.parse("latency:delay_ms=fast")

    def test_bad_direction_rejected(self):
        with pytest.raises(ConfigurationError, match="direction"):
            FaultSpec(kind="reset", direction="up")

    def test_latency_needs_a_delay(self):
        with pytest.raises(ConfigurationError, match="latency"):
            FaultSpec(kind="latency")

    def test_throttle_needs_a_rate(self):
        with pytest.raises(ConfigurationError, match="rate_kbps"):
            FaultSpec(kind="throttle")


class TestFaultSchedule:
    def test_first_eligible_spec_fires(self):
        sched = FaultSchedule([
            FaultSpec(kind="latency", op="QUERY", delay_ms=5, count=2),
            FaultSpec(kind="reset", op="QUERY", after=2, count=1),
        ])
        kinds = []
        for _ in range(4):
            fired = sched.fire("s2c", protocol.OP_QUERY)
            kinds.append(fired[0].kind if fired else None)
        assert kinds == ["latency", "latency", "reset", None]

    def test_direction_and_op_filtering(self):
        sched = FaultSchedule([
            FaultSpec(kind="reset", direction="c2s", op="ADD")])
        assert sched.fire("s2c", protocol.OP_ADD) is None
        assert sched.fire("c2s", protocol.OP_QUERY) is None
        fired = sched.fire("c2s", protocol.OP_ADD)
        assert fired is not None and fired[0].kind == "reset"

    def test_after_skips_matching_frames(self):
        sched = FaultSchedule([FaultSpec(kind="reset", after=3)])
        hits = [sched.fire("c2s", None) is not None for _ in range(5)]
        assert hits == [False, False, False, True, False]

    def test_jitter_is_seed_deterministic(self):
        def delays(seed):
            sched = FaultSchedule([FaultSpec(
                kind="latency", jitter_ms=50, count=None)], seed=seed)
            return [sched.fire("c2s", None)[1] for _ in range(10)]

        assert delays(11) == delays(11)
        assert delays(11) != delays(12)

    def test_reset_replays_identically(self):
        sched = FaultSchedule([FaultSpec(
            kind="latency", jitter_ms=50, count=None)], seed=5)
        first = [sched.fire("c2s", None)[1] for _ in range(5)]
        sched.reset()
        assert [sched.fire("c2s", None)[1] for _ in range(5)] == first

    def test_injected_summary_counts(self):
        sched = FaultSchedule([FaultSpec(kind="reset", after=1, count=1)])
        for _ in range(4):
            sched.fire("c2s", None)
        (entry,) = sched.injected()
        assert entry["matched"] == 4
        assert entry["fired"] == 1
        assert entry["kind"] == "reset"

    def test_parse_list(self):
        sched = FaultSchedule.parse(
            ["latency:delay_ms=1", "reset:op=ADD"], seed=9)
        assert [s.kind for s in sched.specs] == ["latency", "reset"]
        assert sched.seed == 9

    def test_default_drill_schedule_covers_three_classes(self):
        sched = default_drill_schedule(seed=0)
        assert [s.kind for s in sched.specs] == [
            "latency", "stall", "reset"]
