"""The docs stay honest: tools/check_docs.py gates them in tier-1 too.

Runs the checker the same way CI does (a subprocess, no repro import)
and also pins its detection logic: a doc referencing a flag or op the
code does not define must fail.
"""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepoDocsAreConsistent:
    def test_checker_exits_zero(self):
        result = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True, text=True)
        assert result.returncode == 0, result.stderr

    def test_docs_exist(self):
        assert (REPO / "docs" / "ARCHITECTURE.md").is_file()
        assert (REPO / "docs" / "OPERATIONS.md").is_file()


class TestCheckerDetectsDrift:
    def test_unknown_flag_and_op_are_caught(self, tmp_path,
                                            monkeypatch):
        checker = _load_checker()
        bad = tmp_path / "BAD.md"
        bad.write_text(
            "Run with `--no-such-flag-anywhere` and send an\n"
            "OP_TELEPORT frame.\n"
            "| TELEPORT | 99 | nope | nope |\n")
        monkeypatch.setattr(checker, "doc_files", lambda: [bad])
        monkeypatch.setattr(
            checker.pathlib.Path, "relative_to",
            lambda self, other: self, raising=False)
        problems = checker.check()
        assert any("--no-such-flag-anywhere" in p for p in problems)
        assert any("OP_TELEPORT" in p for p in problems)
        assert any("TELEPORT" in p and "wire table" in p
                   for p in problems)

    def test_known_references_pass(self, tmp_path, monkeypatch):
        checker = _load_checker()
        good = tmp_path / "GOOD.md"
        good.write_text(
            "Use `--interval-ms` and `--max-batch`; the ops are\n"
            "OP_SUBSCRIBE and OP_DELTA.\n"
            "| PROMOTE | 10 | empty | banner |\n")
        monkeypatch.setattr(checker, "doc_files", lambda: [good])
        monkeypatch.setattr(
            checker.pathlib.Path, "relative_to",
            lambda self, other: self, raising=False)
        assert checker.check() == []
