"""End-to-end integration tests across the full library pipeline.

Trace generation → workload building → structure construction → query
scoring, plus differential tests pinning different implementations of
the same semantics to each other.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BloomFilter, CountingBloomFilter
from repro.core import (
    CountingShiftingBloomFilter,
    CountingShiftingMultiplicityFilter,
    ShiftingBloomFilter,
    ShiftingMultiplicityFilter,
)
from repro.harness.metrics import measure_fpr
from repro.hashing import Blake2Family
from repro.traces import FlowTraceGenerator
from repro.workloads import (
    build_association_workload,
    build_membership_workload,
    build_multiplicity_workload,
)


class TestTraceToFilterPipeline:
    def test_dedup_pipeline_counts_duplicates_exactly_when_fpr_tiny(self):
        """On a generously-sized filter, flagged duplicates == truth."""
        generator = FlowTraceGenerator(seed=11)
        trace = generator.trace(total=3000, distinct=1000, skew=1.0)
        filt = ShiftingBloomFilter(m=64_000, k=8)
        flagged = 0
        for packet in trace:
            if filt.query(packet):
                flagged += 1
            else:
                filt.add(packet)
        assert flagged == 3000 - 1000  # FPR ~ 1e-7 here: exact w.h.p.

    def test_membership_workload_through_all_filters(self):
        workload = build_membership_workload(800, 8000, seed=5)
        for filt in (
            BloomFilter(m=16384, k=6),
            ShiftingBloomFilter(m=16384, k=6),
            CountingBloomFilter(m=16384, k=6),
            CountingShiftingBloomFilter(m=16384, k=6),
        ):
            filt.update(workload.members)
            assert all(e in filt for e in workload.members)
            assert measure_fpr(filt.query, workload.negatives) < 0.02

    def test_association_workload_scoring(self):
        from repro.core import ShiftingAssociationFilter

        workload = build_association_workload(
            n1=800, n2=800, n_intersection=200, n_queries=900, seed=6)
        filt = ShiftingAssociationFilter.for_sets(
            workload.s1, workload.s2, k=10)
        for element, truth in workload.queries:
            assert filt.query(element).consistent_with(truth)
            assert filt.region_of(element) is truth

    def test_multiplicity_workload_scoring(self):
        workload = build_multiplicity_workload(
            n_distinct=600, c_max=20, n_absent=600, seed=7)
        filt = ShiftingMultiplicityFilter(
            m=20_000, k=6, c_max=20, report="smallest")
        filt.build(workload.count_map)
        exact = sum(
            1 for element, count in workload.counts
            if filt.estimate(element) == count
        )
        assert exact / workload.n_distinct > 0.97
        false_presence = sum(
            1 for element in workload.absent_queries
            if filt.query(element).present
        )
        assert false_presence / len(workload.absent_queries) < 0.05


class TestDifferentialConsistency:
    """Different implementations of the same semantics must agree."""

    def test_shbf_m_vs_counting_variant(self):
        """Insert-only: plain and counting ShBF_M answer identically
        when configured with the same w_bar and family."""
        family = Blake2Family(seed=21)
        plain = ShiftingBloomFilter(m=4096, k=6, w_bar=14, family=family)
        counting = CountingShiftingBloomFilter(
            m=4096, k=6, w_bar=14, family=family)
        workload = build_membership_workload(300, 3000, seed=8)
        for element in workload.members:
            plain.add(element)
            counting.add(element)
        for element in workload.members + workload.negatives:
            assert plain.query(element) == counting.query(element)

    def test_static_vs_dynamic_multiplicity(self):
        """Building CShBF_x by repeated add == static build from counts."""
        family = Blake2Family(seed=22)
        workload = build_multiplicity_workload(
            n_distinct=300, c_max=12, seed=9)
        static = ShiftingMultiplicityFilter(
            m=8192, k=4, c_max=12, family=family)
        static.build(workload.count_map)
        dynamic = CountingShiftingMultiplicityFilter(
            m=8192, k=4, c_max=12, family=family)
        for element, count in workload.counts:
            for _ in range(count):
                dynamic.add(element)
        assert dynamic.bits.to_bytes() == static.bits.to_bytes()

    def test_lazy_and_batch_hashing_agree(self):
        family = Blake2Family(seed=23)
        for element in (b"a", b"flow-xyz", b"x" * 64):
            assert list(family.iter_values(element, 20)) == family.values(
                element, 20)
            assert list(
                family.iter_values(element, 7, start=5)
            ) == family.values(element, 7, start=5)

    def test_per_index_mode_lazy_and_batch_agree(self):
        family = Blake2Family(seed=24, batch_lanes=False)
        assert list(family.iter_values(b"e", 9)) == family.values(b"e", 9)

    @settings(max_examples=15, deadline=None)
    @given(members=st.sets(st.binary(min_size=1, max_size=10),
                           max_size=30))
    def test_property_counting_deletion_returns_to_plain(self, members):
        """Insert extras into CShBF_M, delete them: answers match the
        filter that never saw them."""
        family = Blake2Family(seed=25)
        reference = CountingShiftingBloomFilter(
            m=2048, k=4, family=family)
        churned = CountingShiftingBloomFilter(m=2048, k=4, family=family)
        extras = [b"extra-%d" % i for i in range(10)]
        for element in members:
            reference.add(element)
            churned.add(element)
        for element in extras:
            churned.add(element)
        for element in extras:
            churned.remove(element)
        assert churned.bits.to_bytes() == reference.bits.to_bytes()
        assert churned.check_synchronised()


class TestAccessAccountingEndToEnd:
    def test_total_traffic_decomposes(self):
        """Traffic recorded during a query session equals the sum of
        per-query deltas — the accounting is leak-free."""
        workload = build_membership_workload(200, 200, seed=10)
        filt = ShiftingBloomFilter(m=8192, k=8)
        filt.update(workload.members)
        filt.memory.reset()
        deltas = []
        for element in workload.mixed_queries():
            before = filt.memory.snapshot()
            filt.query(element)
            deltas.append(filt.memory.stats.diff(before).read_words)
        assert sum(deltas) == filt.memory.stats.read_words
        assert max(deltas) <= 4  # k/2
        assert min(deltas) >= 1
