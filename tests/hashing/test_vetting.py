"""The full §6.1 vetting harness, as seeded tier-1 tests.

The paper's authors only used hash functions that passed a randomness
test over their 8M flow IDs.  The library's equivalent gate runs here:
every family allowed to carry the hot path — the BLAKE2b default, the
vectorised mixer family that replaces it on the batch path, and the
Kirsch–Mitzenmacher construction — must clear per-bit balance,
chi-square position uniformity, pairwise independence and avalanche on
seeded flow-ID samples.

The seed matrix is fixed (deterministic numbers, no flaky statistics);
CI's ``hash-vetting`` job re-runs the module with additional seeds via
``REPRO_VET_SEEDS``.
"""

from __future__ import annotations

import os

import pytest

from repro.hashing import (
    Blake2Family,
    DoubleHashingFamily,
    HashFamily,
    VectorizedFamily,
    avalanche_report,
    independence_report,
    position_uniformity_report,
    vet_family,
)
from repro.hashing.randomness import _chi_square_critical
from repro.traces import FlowTraceGenerator

#: Family seeds the harness vets; ``REPRO_VET_SEEDS=3,11,42`` extends
#: the matrix from CI without editing the test.
VET_SEEDS = [
    int(s) for s in os.environ.get("REPRO_VET_SEEDS", "0,7").split(",")
]

FAMILY_BUILDERS = [
    pytest.param(lambda seed: VectorizedFamily(seed=seed), id="vector64"),
    pytest.param(lambda seed: Blake2Family(seed=seed), id="blake2b"),
    pytest.param(lambda seed: DoubleHashingFamily(seed=seed),
                 id="km-double"),
]


@pytest.fixture(scope="module")
def flow_sample():
    """Distinct 13-byte flow IDs, the paper's element format."""
    return FlowTraceGenerator(seed=61).distinct_flows(4000)


@pytest.mark.parametrize("make", FAMILY_BUILDERS)
@pytest.mark.parametrize("seed", VET_SEEDS)
def test_full_harness_passes(make, seed, flow_sample):
    """Balance + uniformity + independence + avalanche, all indices."""
    report = vet_family(make(seed), flow_sample, indices=range(4))
    assert report.passed, "\n".join(report.failures)
    assert len(report.balance) == 4
    assert len(report.uniformity) == 4
    assert len(report.independence) == 6  # C(4, 2) index pairs
    assert len(report.avalanche) == 4


@pytest.mark.parametrize("seed", VET_SEEDS)
def test_vectorized_long_key_path_passes(seed):
    """Keys beyond the 32-byte fold boundary (BLAKE2b fallback) are as
    uniform as short keys — the two ingest paths share the gate."""
    long_keys = [b"prefix-%032d-suffix-padding" % i for i in range(3000)]
    assert len(long_keys[0]) > 32
    report = vet_family(
        VectorizedFamily(seed=seed), long_keys, indices=range(3))
    assert report.passed, "\n".join(report.failures)


def test_harness_is_deterministic(flow_sample):
    a = vet_family(VectorizedFamily(seed=1), flow_sample, indices=range(2))
    b = vet_family(VectorizedFamily(seed=1), flow_sample, indices=range(2))
    assert a == b


def test_report_iterates_balance(flow_sample):
    """The aggregate report keeps the historical list-of-balance shape."""
    report = vet_family(
        Blake2Family(), flow_sample[:500], indices=range(3),
        checks=("balance",))
    assert len(report) == 3
    assert [r.index for r in report] == [0, 1, 2]
    assert report[0].samples == 500
    assert report.uniformity == ()


def test_unknown_check_rejected(flow_sample):
    with pytest.raises(ValueError, match="unknown vetting checks"):
        vet_family(Blake2Family(), flow_sample[:10], checks=("balance",
                                                             "entropy"))


# ----------------------------------------------------------------------
# Negative controls: deliberately broken families must fail the checks
# that target their defect.
# ----------------------------------------------------------------------
class _EvenOnlyFamily(HashFamily):
    """Clears bit 0 — positions land only in even buckets."""

    output_bits = 64

    name = "even-only"

    def hash_bytes(self, index, data):
        return VectorizedFamily(seed=0).hash_bytes(index, data) & ~1


class _IndexBlindFamily(HashFamily):
    """Ignores its index — every family member is the same function."""

    output_bits = 64

    name = "index-blind"

    def hash_bytes(self, index, data):
        return VectorizedFamily(seed=0).hash_bytes(0, data)


class _NoDiffusionFamily(HashFamily):
    """First 8 key bytes verbatim — an input bit flips one output bit."""

    output_bits = 64

    name = "no-diffusion"

    def hash_bytes(self, index, data):
        return int.from_bytes(data[:8].ljust(8, b"\0"), "little") ^ index


def test_even_only_family_fails_uniformity(flow_sample):
    report = position_uniformity_report(
        _EvenOnlyFamily(), flow_sample, index=0, n_buckets=256)
    assert not report.passed
    assert report.statistic > report.critical


def test_index_blind_family_fails_independence(flow_sample):
    report = independence_report(
        _IndexBlindFamily(), flow_sample, index_a=0, index_b=1,
        n_buckets=256)
    assert not report.passed
    # every element collides: the defining symptom of a fake family
    assert report.collisions == report.samples


def test_no_diffusion_family_fails_avalanche(flow_sample):
    report = avalanche_report(_NoDiffusionFamily(), flow_sample, index=0)
    assert not report.passed
    # one input bit flips exactly one output bit: mean rate ~= 1/64
    assert report.mean_flip_rate < 0.05


def test_vet_family_surfaces_failures(flow_sample):
    report = vet_family(
        _IndexBlindFamily(), flow_sample, indices=range(2),
        checks=("independence",))
    assert not report.passed
    assert any("independence" in failure for failure in report.failures)


# ----------------------------------------------------------------------
# Harness internals
# ----------------------------------------------------------------------
def test_chi_square_critical_tracks_known_quantiles():
    """Wilson–Hilferty at z=2.326 is the 99th percentile; reference
    values: chi2(0.99, 100) = 135.81, chi2(0.99, 255) = 310.46."""
    assert _chi_square_critical(100, 2.326) == pytest.approx(135.81, rel=0.01)
    assert _chi_square_critical(255, 2.326) == pytest.approx(310.46, rel=0.01)


def test_uniformity_statistic_scale(flow_sample):
    """For a true uniform family, chi2 ~ dof; the statistic should sit
    near its degrees of freedom, far from the 4.5-sigma critical."""
    report = position_uniformity_report(
        Blake2Family(seed=2), flow_sample, index=1, n_buckets=256)
    assert report.passed
    assert 0.5 * report.dof < report.statistic < 1.7 * report.dof
