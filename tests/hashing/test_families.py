"""Tests for the hash families, the family registry and basic vetting."""

import pytest

from repro.errors import ConfigurationError
from repro.hashing import (
    FAMILY_KINDS,
    Blake2Family,
    DoubleHashingFamily,
    VectorizedFamily,
    bit_balance_report,
    default_family,
    family_spec,
    make_family,
    vet_family,
)


class TestBlake2Family:
    def test_deterministic(self):
        a, b = Blake2Family(seed=1), Blake2Family(seed=1)
        assert a.hash(5, "flow") == b.hash(5, "flow")

    def test_indices_decorrelated(self):
        fam = Blake2Family()
        values = [fam.hash(i, b"x") for i in range(32)]
        assert len(set(values)) == 32

    def test_seeds_decorrelated(self):
        assert Blake2Family(seed=0).hash(0, b"x") != Blake2Family(
            seed=1).hash(0, b"x")

    def test_values_batch_matches_single(self):
        fam = Blake2Family(seed=9)
        # spans two digest groups (lanes 5..12)
        batch = fam.values(b"element", 8, start=5)
        singles = [fam.hash_bytes(i, b"element") for i in range(5, 13)]
        assert batch == singles

    def test_values_empty(self):
        assert Blake2Family().values(b"e", 0) == []

    def test_int_elements_supported(self):
        fam = Blake2Family()
        assert fam.hash(0, 12345) == fam.hash(0, 12345)
        assert fam.hash(0, 12345) != fam.hash(0, 12346)

    def test_bool_distinct_from_int(self):
        fam = Blake2Family()
        assert fam.hash(0, True) != fam.hash(0, 1)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            Blake2Family().hash(0, 1.5)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            Blake2Family().hash(-1, b"x")

    def test_default_family_is_blake2(self):
        assert isinstance(default_family(), Blake2Family)

    def test_positions_in_range(self):
        fam = Blake2Family()
        for m in (7, 97, 22008):
            for pos in fam.positions(b"abc", 8, m):
                assert 0 <= pos < m


class TestDoubleHashingFamily:
    def test_arithmetic_progression(self):
        fam = DoubleHashingFamily()
        h0 = fam.hash(0, b"x")
        h1 = fam.hash(1, b"x")
        h2 = fam.hash(2, b"x")
        mask = (1 << 64) - 1
        step = (h1 - h0) & mask
        assert (h1 + step) & mask == h2

    def test_step_is_odd(self):
        fam = DoubleHashingFamily()
        h0, h1 = fam.values(b"y", 2)
        assert ((h1 - h0) & ((1 << 64) - 1)) % 2 == 1

    def test_values_matches_hash(self):
        fam = DoubleHashingFamily(seed=4)
        assert fam.values(b"z", 6, start=1) == [
            fam.hash(i, b"z") for i in range(1, 7)
        ]

    def test_custom_base(self):
        base = Blake2Family(seed=11)
        fam = DoubleHashingFamily(base=base)
        assert fam.base is base
        assert "blake2b" in fam.name


class TestVectorizedFamily:
    def test_deterministic(self):
        a, b = VectorizedFamily(seed=1), VectorizedFamily(seed=1)
        assert a.hash(5, "flow") == b.hash(5, "flow")

    def test_indices_decorrelated(self):
        fam = VectorizedFamily()
        values = [fam.hash(i, b"x") for i in range(32)]
        assert len(set(values)) == 32

    def test_seeds_decorrelated(self):
        assert VectorizedFamily(seed=0).hash(0, b"x") != VectorizedFamily(
            seed=1).hash(0, b"x")

    def test_short_long_boundary(self):
        """32 bytes folds inline, 33 takes the digest fallback — both
        must be stable and distinct from each other."""
        fam = VectorizedFamily(seed=2)
        at = fam.hash(0, b"q" * 32)
        over = fam.hash(0, b"q" * 33)
        assert at == fam.hash(0, b"q" * 32)
        assert over == fam.hash(0, b"q" * 33)
        assert at != over

    def test_trailing_zero_bytes_distinct(self):
        """Zero padding must not alias ``b"a"`` with ``b"a\\x00"``."""
        fam = VectorizedFamily()
        assert fam.hash(0, b"a") != fam.hash(0, b"a\x00")
        assert fam.hash(0, b"") != fam.hash(0, b"\x00")

    def test_mixed_element_types(self):
        fam = VectorizedFamily()
        assert fam.hash(0, "abc") == fam.hash(0, b"abc")
        assert fam.hash(0, 12345) != fam.hash(0, 12346)
        assert fam.hash(0, True) != fam.hash(0, 1)

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            VectorizedFamily().hash(0, 1.5)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorizedFamily(seed=-1)


class TestFamilyRegistry:
    @pytest.mark.parametrize("kind", FAMILY_KINDS)
    def test_make_then_spec_round_trips(self, kind):
        family = make_family(kind, seed=9)
        assert family_spec(family) == (kind, 9)
        rebuilt = make_family(*family_spec(family))
        assert rebuilt.hash(3, b"probe") == family.hash(3, b"probe")

    def test_kinds_tuple_matches_builder_table(self):
        """FAMILY_KINDS, the builder table and family_spec must stay in
        lockstep; the round-trip test above catches a missing spec
        branch, this catches a missing/extra builder entry."""
        from repro.hashing.family import _builders

        assert set(FAMILY_KINDS) == set(_builders())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown hash family"):
            make_family("sha0", seed=0)

    def test_unregistered_instance_rejected(self):
        class Anonymous(Blake2Family):
            pass

        with pytest.raises(ConfigurationError):
            family_spec(Anonymous())

    def test_composite_over_custom_base_rejected(self):
        family = DoubleHashingFamily(
            base=Blake2Family(seed=1, batch_lanes=False))
        with pytest.raises(ConfigurationError, match="not seed-"):
            family_spec(family)

    def test_blake_modes_are_distinct_kinds(self):
        """Lane and per-index modes hash differently, so the registry
        must keep them apart or a snapshot restore would mis-hash."""
        assert family_spec(Blake2Family(seed=4)) == ("blake2b", 4)
        assert family_spec(Blake2Family(seed=4, batch_lanes=False)) \
            == ("blake2b-per-index", 4)

    def test_default_family_kind_argument(self):
        assert isinstance(default_family(kind="vector64"),
                          VectorizedFamily)

    def test_default_family_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_HASH_FAMILY", "vector64")
        assert isinstance(default_family(), VectorizedFamily)
        monkeypatch.delenv("REPRO_HASH_FAMILY")
        assert isinstance(default_family(), Blake2Family)


class TestRandomnessVetting:
    @pytest.fixture(scope="class")
    def sample(self):
        return [b"flow-%06d" % i for i in range(4000)]

    def test_blake2_passes(self, sample):
        report = bit_balance_report(Blake2Family(), sample, index=0)
        assert report.passed
        assert report.samples == 4000
        assert len(report.frequencies) == 64

    def test_frequencies_near_half(self, sample):
        report = bit_balance_report(Blake2Family(), sample, index=3)
        assert all(0.4 < f < 0.6 for f in report.frequencies)

    def test_biased_family_fails(self, sample):
        class BiasedFamily(Blake2Family):
            """Forces the low output bit to 1 — must fail the vetting."""

            @property
            def name(self):
                return "biased"

            def hash_bytes(self, index, data):
                return super().hash_bytes(index, data) | 1

        report = bit_balance_report(BiasedFamily(), sample, index=0)
        assert not report.passed
        assert report.worst_bit == 0
        assert report.max_deviation == pytest.approx(0.5)

    def test_vet_family_reports_all_indices(self, sample):
        reports = vet_family(Blake2Family(), sample, indices=range(4))
        assert len(reports) == 4
        assert all(r.passed for r in reports)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            bit_balance_report(Blake2Family(), [])
