"""Tests for the pure-Python hash ports, including reference vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import (
    FNV1aFamily,
    Murmur3Family,
    XXHash64Family,
    fnv1a_64,
    murmur3_32,
    splitmix64,
    xxh64,
)


class TestMurmur3ReferenceVectors:
    """Vectors checked against the canonical MurmurHash3 C implementation."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0),
            (b"", 1, 0x514E28B7),
            (b"", 0xFFFFFFFF, 0x81F16F39),
            (b"\xff\xff\xff\xff", 0, 0x76293B50),
            (b"!Ce\x87", 0, 0xF55B516B),
            (b"!Ce", 0, 0x7E4A8634),
            (b"!C", 0, 0xA0F7B07A),
            (b"!", 0, 0x72661CF4),
            (b"\x00\x00\x00\x00", 0, 0x2362F9DE),
            (b"aaaa", 0x9747B28C, 0x5A97808A),
            (b"Hello, world!", 0x9747B28C, 0x24884CBA),
        ],
    )
    def test_vector(self, data, seed, expected):
        assert murmur3_32(data, seed) == expected

    def test_output_is_32_bits(self):
        for i in range(64):
            value = murmur3_32(b"probe%d" % i, seed=i)
            assert 0 <= value < 1 << 32


class TestFNV1aReferenceVectors:
    """Vectors from the FNV reference distribution (64-bit FNV-1a)."""

    @pytest.mark.parametrize(
        "data,expected",
        [
            (b"", 0xCBF29CE484222325),
            (b"a", 0xAF63DC4C8601EC8C),
            (b"b", 0xAF63DF4C8601F1A5),
            (b"foobar", 0x85944171F73967E8),
        ],
    )
    def test_vector(self, data, expected):
        assert fnv1a_64(data, seed=0) == expected

    def test_seed_changes_output(self):
        assert fnv1a_64(b"x", seed=1) != fnv1a_64(b"x", seed=2)


class TestXXH64ReferenceVectors:
    """Vectors checked against the xxHash reference implementation."""

    @pytest.mark.parametrize(
        "data,seed,expected",
        [
            (b"", 0, 0xEF46DB3751D8E999),
            (b"", 1, 0xD5AFBA1336A3BE4B),
            (b"a", 0, 0xD24EC4F1A98C6E5B),
            (b"abc", 0, 0x44BC2CF5AD770999),
            (b"abcd", 0, 0xDE0327B0D25D92CC),
            (b"Hello, world!", 0, 0xF58336A78B6F9476),
            # 32+ bytes exercises the 4-accumulator main loop
            (b"abcdefghijklmnopqrstuvwxyz012345", 0, 0xBF2CD639B4143B80),
            (b"abcdefghijklmnopqrstuvwxyz0123456789", 0, 0x64F23ECF1609B766),
        ],
    )
    def test_vector(self, data, seed, expected):
        assert xxh64(data, seed) == expected

    def test_output_is_64_bits(self):
        for i in range(32):
            assert 0 <= xxh64(b"x" * i, seed=i) < 1 << 64


class TestSplitmix64:
    def test_known_sequence(self):
        """First outputs of splitmix64 seeded with 0 (reference values)."""
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    def test_is_injective_on_sample(self):
        values = {splitmix64(i) for i in range(10_000)}
        assert len(values) == 10_000


@pytest.mark.parametrize(
    "family_cls", [Murmur3Family, FNV1aFamily, XXHash64Family]
)
class TestFamilyWrappers:
    def test_deterministic(self, family_cls):
        fam1, fam2 = family_cls(seed=7), family_cls(seed=7)
        assert fam1.hash(3, b"element") == fam2.hash(3, b"element")

    def test_indices_differ(self, family_cls):
        fam = family_cls()
        values = {fam.hash(i, b"element") for i in range(16)}
        assert len(values) == 16

    def test_seeds_differ(self, family_cls):
        assert family_cls(seed=1).hash(0, b"e") != family_cls(seed=2).hash(
            0, b"e")

    def test_str_and_bytes_agree(self, family_cls):
        fam = family_cls()
        assert fam.hash(0, "abc") == fam.hash(0, b"abc")

    def test_values_matches_hash(self, family_cls):
        fam = family_cls(seed=3)
        assert fam.values(b"x", 5, start=2) == [
            fam.hash(i, b"x") for i in range(2, 7)
        ]

    def test_output_within_range(self, family_cls):
        fam = family_cls()
        for i in range(8):
            assert 0 <= fam.hash(i, b"probe") < fam.output_range

    @given(data=st.binary(max_size=64))
    def test_positions_in_range(self, family_cls, data):
        fam = family_cls()
        for pos in fam.positions(data, 4, 97):
            assert 0 <= pos < 97
