"""Batch hashing must reproduce scalar hash values bit for bit.

The whole batch fast path rests on ``values_batch`` being a pure
vectorisation: same family, same element, same index => same 64-bit
value as the scalar ``values``/``hash`` entry points.  These tests pin
that contract for the overridden families (BLAKE2 lanes in both modes,
Kirsch–Mitzenmacher) and for the base-class fallback used by the pure
mixer families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import (
    Blake2Family,
    DoubleHashingFamily,
    FNV1aFamily,
    Murmur3Family,
    VectorizedFamily,
    XXHash64Family,
)

FAMILIES = [
    Blake2Family(seed=0),
    Blake2Family(seed=7),
    Blake2Family(seed=0, batch_lanes=False),
    DoubleHashingFamily(seed=3),
    Murmur3Family(seed=1),
    FNV1aFamily(seed=2),
    XXHash64Family(seed=4),
    VectorizedFamily(seed=0),
    VectorizedFamily(seed=7),
]

# Crosses the VectorizedFamily short/long ingest boundary (32 bytes)
# in both directions, plus mixed-type canonicalisation.
ELEMENTS = [b"", b"a", "string-element", 1234567890123, b"x" * 200,
            b"y" * 32, b"z" * 33]


@pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.name)
@pytest.mark.parametrize("count,start", [(1, 0), (5, 0), (8, 0), (9, 0),
                                         (4, 6), (16, 3)])
def test_values_batch_matches_scalar(family, count, start):
    batch = family.values_batch(ELEMENTS, count, start=start)
    assert batch.shape == (len(ELEMENTS), count)
    assert batch.dtype == np.uint64
    for row, element in enumerate(ELEMENTS):
        assert [int(v) for v in batch[row]] == family.values(
            element, count, start=start)


@pytest.mark.parametrize("family", FAMILIES, ids=lambda f: f.name)
def test_positions_batch_matches_scalar(family):
    m = 4093
    batch = family.positions_batch(ELEMENTS, 6, m)
    assert batch.dtype == np.int64
    for row, element in enumerate(ELEMENTS):
        assert batch[row].tolist() == family.positions(element, 6, m)


def test_values_batch_empty_batch_and_zero_count():
    family = Blake2Family(seed=0)
    assert family.values_batch([], 5).shape == (0, 5)
    assert family.values_batch(ELEMENTS, 0).shape == (len(ELEMENTS), 0)
    assert family.positions_batch([], 5, 97).shape == (0, 5)


def test_values_batch_single_element():
    family = Blake2Family(seed=1)
    batch = family.values_batch([b"solo"], 10)
    assert batch.shape == (1, 10)
    assert [int(v) for v in batch[0]] == family.values(b"solo", 10)


def test_batch_lanes_modes_disagree_like_scalar():
    """Per-index mode is a different hash family than lane mode, and the
    batch paths must preserve that distinction rather than silently
    sharing digests."""
    lanes = Blake2Family(seed=0)
    per_index = Blake2Family(seed=0, batch_lanes=False)
    a = lanes.values_batch(ELEMENTS, 4)
    b = per_index.values_batch(ELEMENTS, 4)
    assert (a != b).any()
