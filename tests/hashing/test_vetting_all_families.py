"""The §6.1 vetting, applied to every family the library ships.

The paper tested candidate hash functions on its flow IDs and kept the
18 whose output bits were unbiased.  Here every built-in family faces
the extended gate (balance, chi-square uniformity, pairwise
independence, avalanche) on synthetic flow IDs — the check that
justifies using them interchangeably in the experiments.

One candidate is *eliminated* exactly as the paper eliminated weak
functions: FNV-1a's byte-serial fold has no final avalanche pass, so a
bit flipped in a late input byte cannot diffuse downward and the
avalanche check rejects it.  It remains available as a baseline (its
balance/uniformity/independence are fine, and the ablation bench
measures its FPR penalty), but it is not fit to carry the hot path.
"""

import pytest

from repro.hashing import (
    Blake2Family,
    DoubleHashingFamily,
    FNV1aFamily,
    Murmur3Family,
    VectorizedFamily,
    XXHash64Family,
    avalanche_report,
    bit_balance_report,
    vet_family,
)
from repro.traces import FlowTraceGenerator


@pytest.fixture(scope="module")
def flow_sample():
    """Distinct 13-byte flow IDs, the paper's element format."""
    return FlowTraceGenerator(seed=61).distinct_flows(4000)


@pytest.mark.parametrize("family", [
    Blake2Family(seed=0),
    Blake2Family(seed=0, batch_lanes=False),
    VectorizedFamily(seed=0),
    Murmur3Family(seed=0),
    XXHash64Family(seed=0),
    DoubleHashingFamily(seed=0),
], ids=lambda f: f.name)
def test_family_passes_full_harness(family, flow_sample):
    report = vet_family(family, flow_sample, indices=range(4))
    assert report.passed, "%s failed: %s" % (
        family.name, "; ".join(report.failures))


def test_fnv1a_passes_everything_but_avalanche(flow_sample):
    family = FNV1aFamily(seed=0)
    report = vet_family(
        family, flow_sample, indices=range(4),
        checks=("balance", "uniformity", "independence"))
    assert report.passed, "; ".join(report.failures)
    # ... and the avalanche check is what catches the byte-serial fold.
    assert not avalanche_report(family, flow_sample, index=0).passed


def test_murmur_only_reports_32_bits(flow_sample):
    report = bit_balance_report(Murmur3Family(), flow_sample[:500])
    assert len(report.frequencies) == 32


def test_vetting_matches_paper_protocol(flow_sample):
    """Frequency of 1 at every bit position ~ 0.5 — §6.1 verbatim."""
    report = bit_balance_report(
        Blake2Family(seed=9), flow_sample, index=2)
    assert all(abs(f - 0.5) < 0.05 for f in report.frequencies)
