"""The §6.1 vetting, applied to every family the library ships.

The paper tested candidate hash functions on its flow IDs and kept the
18 whose output bits were unbiased.  Here every built-in family faces
the same gate on synthetic flow IDs — the check that justifies using
them interchangeably in the experiments.
"""

import pytest

from repro.hashing import (
    Blake2Family,
    DoubleHashingFamily,
    FNV1aFamily,
    Murmur3Family,
    XXHash64Family,
    bit_balance_report,
    vet_family,
)
from repro.traces import FlowTraceGenerator


@pytest.fixture(scope="module")
def flow_sample():
    """Distinct 13-byte flow IDs, the paper's element format."""
    return FlowTraceGenerator(seed=61).distinct_flows(4000)


@pytest.mark.parametrize("family", [
    Blake2Family(seed=0),
    Blake2Family(seed=0, batch_lanes=False),
    Murmur3Family(seed=0),
    FNV1aFamily(seed=0),
    XXHash64Family(seed=0),
    DoubleHashingFamily(seed=0),
], ids=lambda f: f.name)
def test_family_passes_bit_balance(family, flow_sample):
    reports = vet_family(family, flow_sample, indices=range(4))
    for report in reports:
        assert report.passed, (
            "%s index %d: worst bit %d deviates %.4f (threshold %.4f)"
            % (family.name, report.index, report.worst_bit,
               report.max_deviation, report.threshold)
        )


def test_murmur_only_reports_32_bits(flow_sample):
    report = bit_balance_report(Murmur3Family(), flow_sample[:500])
    assert len(report.frequencies) == 32


def test_vetting_matches_paper_protocol(flow_sample):
    """Frequency of 1 at every bit position ~ 0.5 — §6.1 verbatim."""
    report = bit_balance_report(
        Blake2Family(seed=9), flow_sample, index=2)
    assert all(abs(f - 0.5) < 0.05 for f in report.frequencies)
