"""Integration tests: experiment drivers reproduce the paper's shapes.

These run each simulated driver at a small scale and assert the
qualitative claims (who wins, by roughly what factor, where crossovers
fall) rather than absolute numbers — the reproduction contract from
DESIGN.md §4.  The full-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.harness.experiments import EXPERIMENTS

SCALE = 0.08
SEED = 0


@pytest.fixture(scope="module")
def tables():
    """Run the scaled drivers once and share the tables across tests."""
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = EXPERIMENTS[name](scale=SCALE, seed=SEED)
        return cache[name]

    return get


class TestFig7Shapes:
    def test_fig7a_theory_matches_simulation(self, tables):
        table = tables("fig7a")
        theory = table.column("shbf_theory")
        sim = table.column("shbf_sim")
        for t, s in zip(theory, sim):
            assert s == pytest.approx(t, rel=0.8, abs=3e-4)

    def test_fig7a_one_mem_worse(self, tables):
        table = tables("fig7a")
        shbf = table.column("shbf_sim")
        one_mem = table.column("one_mem_bf")
        # 1MemBF's FPR is 5-10x ShBF's; sampling noise allows > 2x
        assert sum(one_mem) > 2 * sum(shbf)

    def test_fig7a_one_mem_1_5x_still_not_better(self, tables):
        table = tables("fig7a")
        shbf = sum(table.column("shbf_sim"))
        big = sum(table.column("one_mem_bf_1.5x"))
        assert big > 0.7 * shbf  # "still a little more than ShBF"

    def test_fig7b_fpr_u_shape_in_k(self, tables):
        """FPR vs k at fixed m/n has a single interior minimum region."""
        theory = tables("fig7b").column("shbf_theory")
        minimum = theory.index(min(theory))
        assert 0 < minimum < len(theory) - 1


class TestFig8Shapes:
    def test_fig8b_half_the_accesses(self, tables):
        table = tables("fig8b")
        for ratio in table.column("ratio"):
            assert 0.4 < ratio < 0.65

    def test_fig8b_bf_accesses_grow_with_k(self, tables):
        bf = tables("fig8b").column("bf_accesses")
        assert bf == sorted(bf)


class TestFig9Shapes:
    def test_fig9b_shbf_not_slower(self, tables):
        """The winner must be ShBF (ratios >= ~1) and improve with k."""
        ratios = tables("fig9b").column("shbf/bf")
        assert ratios[-1] > 1.0
        assert ratios[-1] > ratios[0] * 0.95


class TestFig10Shapes:
    def test_fig10a_clear_answer_probabilities(self, tables):
        table = tables("fig10a")
        for theory, sim in zip(table.column("ibf_theory"),
                               table.column("ibf_sim")):
            assert sim == pytest.approx(theory, abs=0.08)
        for theory, sim in zip(table.column("shbf_theory"),
                               table.column("shbf_sim")):
            assert sim == pytest.approx(theory, abs=0.05)

    def test_fig10a_shbf_beats_ibf(self, tables):
        table = tables("fig10a")
        for ibf, shbf in zip(table.column("ibf_sim"),
                             table.column("shbf_sim")):
            assert shbf > ibf

    def test_fig10a_ibf_saturates_at_two_thirds(self, tables):
        ibf = tables("fig10a").column("ibf_sim")
        assert ibf[-1] == pytest.approx(2 / 3, abs=0.08)

    def test_fig10b_access_ratio_two_thirds(self, tables):
        """Paper: ShBF_A does ~0.66x the accesses of iBF."""
        ratios = tables("fig10b").column("ratio")
        for ratio in ratios:
            assert 0.45 < ratio < 0.85


class TestFig11Shapes:
    def test_fig11a_theory_matches_simulation(self, tables):
        table = tables("fig11a")
        for theory, sim in zip(table.column("theory_absent"),
                               table.column("shbf_absent")):
            assert sim == pytest.approx(theory, abs=0.03)
        for theory, sim in zip(table.column("theory_members"),
                               table.column("shbf_members")):
            assert sim == pytest.approx(theory, abs=0.03)

    def test_fig11a_shbf_beats_rivals(self, tables):
        """Paper: CR of ShBF_x is ~1.45-1.62x Spectral BF's."""
        table = tables("fig11a")
        shbf = table.column("shbf_mix")
        spectral = table.column("spectral_mix")
        cm = table.column("cm_mix")
        for s, sp, c in zip(shbf, spectral, cm):
            assert s > 1.2 * sp
            assert s > 1.2 * c

    def test_fig11b_crossover_at_large_k(self, tables):
        """Paper: ShBF_x needs fewer accesses for k > 7."""
        table = tables("fig11b")
        ks = table.column("k")
        shbf = table.column("shbf_accesses")
        spectral = table.column("spectral_accesses")
        large_k = [
            (s, sp) for k, s, sp in zip(ks, shbf, spectral) if k >= 10
        ]
        assert all(s < sp for s, sp in large_k)

    def test_fig11b_small_k_comparable(self, tables):
        table = tables("fig11b")
        ks = table.column("k")
        shbf = table.column("shbf_accesses")
        spectral = table.column("spectral_accesses")
        small_k = [
            (s, sp) for k, s, sp in zip(ks, shbf, spectral) if k <= 5
        ]
        for s, sp in small_k:
            assert s == pytest.approx(sp, rel=0.45)


class TestAblationShapes:
    def test_generalized_tradeoff(self, tables):
        table = tables("ablation_generalized")
        fprs = table.column("fpr_sim")
        accesses = table.column("accesses_per_member_query")
        hash_ops = table.column("hash_ops")
        # more shifts -> fewer accesses and hashes, more FPR (weakly)
        assert accesses == sorted(accesses, reverse=True)
        assert hash_ops == sorted(hash_ops, reverse=True)
        assert fprs[-1] >= fprs[0] * 0.5

    def test_scm_halves_costs(self, tables):
        table = tables("ablation_scm")
        rows = {
            (row[0], row[1]): row for row in table.rows
        }
        for d in (4, 8):
            cm_row = rows[(d, "cm")]
            scm_row = rows[(d, "scm")]
            assert scm_row[2] == d // 2 + 1  # hash ops
            assert scm_row[3] <= cm_row[3] * 0.6  # accesses

    def test_w_bar_rule(self, tables):
        table = tables("ablation_w_bar_sim")
        w_bars = table.column("w_bar")
        vs_bf = table.column("vs_bf_theory")
        for w_bar, ratio in zip(w_bars, vs_bf):
            if w_bar >= 20:
                assert ratio < 1.2
        assert vs_bf[0] > 1.5  # tiny w_bar clearly hurts

    def test_hash_families_agree_on_fpr(self, tables):
        table = tables("ablation_hash_families")
        theory = table.column("fpr_theory")[0]
        fprs = dict(zip(table.column("family"), table.column("fpr_sim")))
        # Strong mixers track the model tightly; FNV-1a's byte-serial
        # mixing and KM double hashing are known to run measurably above
        # it (the paper makes the same point about KM in §2.1).
        for family in ("blake2b", "xxh64"):
            assert fprs[family] == pytest.approx(theory, rel=0.9,
                                                 abs=2e-3)
        for family in ("murmur3-32", "fnv1a-64", "km-double"):
            assert fprs[family] < 4 * theory + 4e-3

    def test_update_sources(self, tables):
        table = tables("ablation_updates")
        rows = {row[0]: row for row in table.rows}
        # hash-table updates never false-negate
        assert rows["hash_table@1.5x"][2] == 0
        assert rows["hash_table@1.0x"][2] == 0
        # tight-memory self-query updates do
        assert rows["self_query@1.0x"][2] > 0

    def test_membership_zoo_runs(self, tables):
        table = tables("ablation_membership_zoo")
        schemes = table.column("scheme")
        assert {"bf", "km-bf", "1mem-bf", "shbf_m", "cuckoo"} <= set(
            schemes)
        fprs = dict(zip(schemes, table.column("fpr_sim")))
        assert fprs["cuckoo"] < 0.02
        assert fprs["1mem-bf"] >= fprs["shbf_m"]
