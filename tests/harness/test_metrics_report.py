"""Tests for the measurement primitives and table rendering."""

import pytest

from repro.baselines import BloomFilter
from repro.errors import ConfigurationError
from repro.harness import (
    Table,
    measure_accesses_per_query,
    measure_fpr,
    measure_throughput,
)
from tests.conftest import make_elements


class TestMeasureFpr:
    def test_zero_on_empty_filter(self, negatives):
        bf = BloomFilter(m=4096, k=4)
        assert measure_fpr(bf.query, negatives) == 0.0

    def test_one_on_degenerate_filter(self, negatives):
        bf = BloomFilter(m=8, k=1)
        bf.update(make_elements(100))
        assert measure_fpr(bf.query, negatives) == 1.0

    def test_requires_probes(self):
        bf = BloomFilter(m=64, k=2)
        with pytest.raises(ConfigurationError):
            measure_fpr(bf.query, [])


class TestMeasureAccesses:
    def test_member_queries_cost_k(self, elements):
        bf = BloomFilter(m=8192, k=5)
        bf.update(elements)
        mean = measure_accesses_per_query(bf, elements)
        assert mean == pytest.approx(5.0, abs=0.2)

    def test_resets_before_measuring(self, elements):
        bf = BloomFilter(m=8192, k=5)
        bf.update(elements)
        bf.query(elements[0])  # pre-existing traffic must not leak in
        mean = measure_accesses_per_query(bf, elements[:10])
        assert mean <= 5.0

    def test_batch_driving_measures_identical_accesses(
            self, elements, negatives):
        bf = BloomFilter(m=8192, k=5)
        bf.update(elements)
        queries = list(elements) + list(negatives[:200])
        scalar = measure_accesses_per_query(bf, queries)
        for batch_size in (1, 64, 10_000):
            assert measure_accesses_per_query(
                bf, queries, batch_size=batch_size) == scalar


class TestMeasureThroughput:
    def test_positive_and_sane(self, elements):
        bf = BloomFilter(m=8192, k=4)
        bf.update(elements)
        qps = measure_throughput(bf.query, elements[:100], repeats=2)
        assert qps > 1000  # even CPython manages thousands of queries/s

    def test_requires_queries(self):
        with pytest.raises(ConfigurationError):
            measure_throughput(lambda e: True, [], repeats=1)


class TestTable:
    def test_add_row_validates_arity(self):
        table = Table(title="t", columns=("a", "b"))
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table(title="t", columns=("k", "fpr"))
        table.add_row(4, 0.01)
        table.add_row(8, 0.001)
        assert table.column("k") == [4, 8]
        assert table.column("fpr") == [0.01, 0.001]

    def test_column_unknown_name(self):
        table = Table(title="t", columns=("k",))
        with pytest.raises(ConfigurationError):
            table.column("missing")

    def test_render_contains_everything(self):
        table = Table(title="Figure X", columns=("k", "fpr"),
                      notes=["hello"])
        table.add_row(4, 0.25)
        text = table.render()
        assert "Figure X" in text
        assert "fpr" in text
        assert "0.25" in text
        assert "note: hello" in text

    def test_render_alignment(self):
        table = Table(title="t", columns=("param", "v"))
        table.add_row(1, 2)
        table.add_row(100000, 3)
        lines = table.render().splitlines()
        rows = [line for line in lines if line.strip().endswith(("2", "3"))]
        assert len(rows[0]) == len(rows[1])

    def test_to_csv(self):
        table = Table(title="t", columns=("a", "b"))
        table.add_row(1, None)
        csv = table.to_csv()
        assert csv.splitlines() == ["a,b", "1,-"]

    def test_str_is_render(self):
        table = Table(title="t", columns=("a",))
        assert str(table) == table.render()


class TestExperimentRegistry:
    def test_registry_covers_every_figure_and_table(self):
        from repro.harness import EXPERIMENTS

        expected = {
            "fig3a", "fig3b", "fig4", "eq7", "table2",
            "fig7a", "fig7b", "fig7c",
            "fig8a", "fig8b", "fig8c",
            "fig9a", "fig9b", "fig9c",
            "fig10a", "fig10b", "fig10c",
            "fig11a", "fig11b", "fig11c",
        }
        assert expected <= set(EXPERIMENTS)

    def test_analytic_drivers_run_instantly(self):
        from repro.harness import EXPERIMENTS

        for name in ("fig3a", "fig3b", "fig4", "eq7"):
            table = EXPERIMENTS[name]()
            assert table.rows

    def test_cli_list(self, capsys):
        from repro.harness.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out

    def test_cli_unknown_experiment(self, capsys):
        from repro.harness.__main__ import main

        assert main(["not-an-experiment"]) == 2

    def test_cli_runs_and_writes_csv(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        assert main(["eq7", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "eq7.csv").exists()
        assert "kopt_coefficient" in capsys.readouterr().out
